"""Legacy setup shim.

The sandbox has setuptools but not ``wheel``, so PEP 517 editable installs
fail; ``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``pip install -e .`` on environments with wheel) uses this file.
"""

from setuptools import setup

setup()
