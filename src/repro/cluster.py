"""Multi-card deployments: a switch plus N shells with drivers.

Convenience wiring for the multi-node experiments (RDMA, collectives,
service swaps): every node gets a deterministic MAC/IP, its shell is
attached to one shared switch, and a driver is bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .core.dynamic_layer import ServiceConfig
from .core.shell import Shell, ShellConfig
from .core.vfpga import VFpgaConfig
from .driver.driver import Driver
from .net.headers import MacAddress
from .net.switch import Switch
from .sim.engine import Environment

__all__ = ["FpgaNode", "FpgaCluster"]

_MAC_BASE = 0x02_C0_70_7E_00_00  # locally administered
_IP_BASE = 0x0A_00_01_00


@dataclass
class FpgaNode:
    """One card in the cluster."""

    index: int
    mac: MacAddress
    ip: int
    shell: Shell
    driver: Driver


class FpgaCluster:
    """N Coyote v2 cards on one switched network."""

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        services: Optional[ServiceConfig] = None,
        num_vfpgas: int = 1,
        vfpga: VFpgaConfig = VFpgaConfig(),
        device: str = "u55c",
    ):
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.env = env
        self.switch = Switch(env)
        if services is None:
            services = ServiceConfig(en_memory=True, en_rdma=True)
        self.services = services
        self.nodes: List[FpgaNode] = []
        for index in range(num_nodes):
            mac = MacAddress(_MAC_BASE + index)
            ip = _IP_BASE + index
            shell = Shell(
                env,
                ShellConfig(
                    device=device,
                    num_vfpgas=num_vfpgas,
                    vfpga=vfpga,
                    services=services,
                ),
                switch=self.switch,
                mac=mac,
                ip=ip,
            )
            self.nodes.append(
                FpgaNode(index=index, mac=mac, ip=ip, shell=shell, driver=Driver(env, shell))
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> FpgaNode:
        return self.nodes[index]

    def connect_qps(self, a: int, b: int, pid_a: int, pid_b: int,
                    qpn_a: int, qpn_b: int, vfpga: int = 0):
        """Create and cross-connect a QP pair between two nodes' cThreads."""
        from .api.cthread import CThread

        thread_a = CThread(self.nodes[a].driver, vfpga, pid=pid_a)
        thread_b = CThread(self.nodes[b].driver, vfpga, pid=pid_b)
        qp_a = thread_a.create_qp(qpn_a, psn=qpn_a)
        qp_b = thread_b.create_qp(qpn_b, psn=qpn_b)
        qp_a.connect(qp_b.local)
        qp_b.connect(qp_a.local)
        return thread_a, thread_b
