"""Multi-card deployments: a switch plus N shells with drivers.

Convenience wiring for the multi-node experiments (RDMA, collectives,
service swaps): every node gets a deterministic MAC/IP, its shell is
attached to one shared switch, and a driver is bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from .core.dynamic_layer import ServiceConfig
from .core.shell import Shell, ShellConfig
from .core.vfpga import VFpgaConfig
from .driver.driver import Driver
from .health.errors import NodeDownError
from .net.headers import MacAddress
from .net.switch import Switch
from .sim.engine import Environment

__all__ = ["FpgaNode", "FpgaCluster"]

_MAC_BASE = 0x02_C0_70_7E_00_00  # locally administered
_IP_BASE = 0x0A_00_01_00


@dataclass
class FpgaNode:
    """One card in the cluster."""

    index: int
    mac: MacAddress
    ip: int
    shell: Shell
    driver: Driver
    #: False while crashed (see :meth:`FpgaCluster.crash_node`).
    alive: bool = True
    #: Bumped by :meth:`FpgaCluster.rolling_upgrade` each time the node's
    #: regions are re-programmed during a maintenance pass.
    shell_version: int = 0


class FpgaCluster:
    """N Coyote v2 cards on one switched network."""

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        services: Optional[ServiceConfig] = None,
        num_vfpgas: int = 1,
        vfpga: VFpgaConfig = VFpgaConfig(),
        device: str = "u55c",
        fabric=None,
    ):
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.env = env
        #: The fabric: a single :class:`Switch` by default, or any object
        #: with the same surface — e.g. a pre-built
        #: :class:`repro.net.topology.LeafSpineTopology`.
        self.switch = fabric if fabric is not None else Switch(env)
        if services is None:
            services = ServiceConfig(en_memory=True, en_rdma=True)
        self.services = services
        self.nodes: List[FpgaNode] = []
        for index in range(num_nodes):
            mac = MacAddress(_MAC_BASE + index)
            ip = _IP_BASE + index
            shell = Shell(
                env,
                ShellConfig(
                    device=device,
                    num_vfpgas=num_vfpgas,
                    vfpga=vfpga,
                    services=services,
                ),
                switch=self.switch,
                mac=mac,
                ip=ip,
            )
            driver = Driver(env, shell)
            driver.node_index = index
            self.nodes.append(
                FpgaNode(index=index, mac=mac, ip=ip, shell=shell, driver=driver)
            )
        self._by_mac: Dict[MacAddress, FpgaNode] = {
            node.mac: node for node in self.nodes
        }
        # A seeded ``node.crash`` in the fabric takes the whole node down,
        # not just its port.
        self.switch.on_node_crash = self._on_node_crash
        # PFC storms surface in the maintenance audit trail: operators see
        # the typed error, not a mysteriously slow fabric.
        self.switch.on_pfc_storm = self._on_pfc_storm
        self.pfc_storms = 0
        #: Attached :class:`repro.health.ClusterMonitor`, or ``None``.
        self.monitor = None
        #: Live :class:`repro.net.collectives.CollectiveGroup`\ s built via
        #: :meth:`collective_group` (telemetry roll-up walks these).
        self.collective_groups: List = []
        self.crashes = 0
        self.restores = 0
        #: Attached :class:`repro.migrate.LiveMigrator`, or ``None``
        #: (built on demand by :meth:`drain_node` / :meth:`rolling_upgrade`).
        self.migrator = None
        #: pid -> node index, flipped atomically by the migrator at the
        #: RESUME edge of each migration.
        self.placements: Dict[int, int] = {}
        self.migrations = 0
        self.drains = 0
        self.upgrades = 0
        #: ``(time_ns, kind, node, reason)`` maintenance audit trail;
        #: mirrored into the ClusterMonitor event log when one is attached.
        self.admin_log: List[Tuple[float, str, int, str]] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> FpgaNode:
        return self.nodes[index]

    # ------------------------------------------------------- fault tolerance

    def _on_pfc_storm(self, err: Exception) -> None:
        self.pfc_storms += 1
        self.admin_log.append((self.env.now, "pfc_storm", -1, str(err)))
        if self.monitor is not None:
            self.monitor.record_admin_event("pfc_storm", -1, str(err))

    def _on_node_crash(self, mac: MacAddress) -> None:
        node = self._by_mac.get(mac)
        if node is not None:
            self.crash_node(node.index)

    def crash_node(self, index: int, reason: str = "crash") -> None:
        """Take a whole card down, as a power loss would: its switch port
        black-holes, every QP on its RDMA stack is flushed (peers see
        retry exhaustion), pending driver completions fail with
        :class:`NodeDownError`, and its schedulers quiesce so the
        idempotent-replay-or-reject policy can run at restore time.
        Idempotent while down."""
        node = self.nodes[index]
        if not node.alive:
            return
        node.alive = False
        self.crashes += 1
        self.switch.kill_port(node.mac)
        exc = NodeDownError(index, reason)
        rdma = node.shell.dynamic.rdma
        if rdma is not None:
            rdma.halt(reason=f"node {index} {reason}")
        node.driver.node_down = True
        for vfpga in node.shell.vfpgas:
            node.driver.fail_pending(vfpga.vfpga_id, exc)
        for scheduler in node.driver.schedulers:
            scheduler.quiesce(exc)
        self.note_admin_event("node_crashed", index, reason)

    def restore_node(self, index: int, reason: str = "restore") -> None:
        """Bring a crashed card back: port revived, its QPs recycled to
        RESET (re-connect is the caller's job — e.g. ``rebuild()`` on a
        collective group), schedulers resumed under the replay-or-reject
        policy.  Idempotent while up."""
        node = self.nodes[index]
        if node.alive:
            return
        node.alive = True
        self.restores += 1
        self.switch.revive_port(node.mac)
        rdma = node.shell.dynamic.rdma
        if rdma is not None:
            rdma.halted = False
            for qpn in sorted(rdma.qps):
                rdma.reset_qp(qpn)
        node.driver.node_down = False
        for scheduler in node.driver.schedulers:
            scheduler.resume_after_recovery(quarantined=False)
        if self.monitor is not None:
            self.monitor.on_node_restored(index)
        self.note_admin_event("node_restored", index, reason)

    def note_admin_event(self, kind: str, node: int, reason: str) -> None:
        """Record a maintenance event (crash/restore/drain/upgrade/...)
        with its reason string, both locally and — when a ClusterMonitor
        is attached — in the ``card_report()["health"]["cluster"]`` log."""
        self.admin_log.append((self.env.now, kind, node, reason))
        if self.monitor is not None:
            self.monitor.record_admin_event(kind, node, reason)

    def alive_indices(self) -> List[int]:
        return [node.index for node in self.nodes if node.alive]

    # ---------------------------------------------------- live migration

    def _ensure_migrator(self):
        """Build (once) and return the attached LiveMigrator."""
        if self.migrator is None:
            from .migrate.migrator import LiveMigrator

            LiveMigrator(self)  # attaches itself as ``self.migrator``
        return self.migrator

    def drain_node(self, index: int, reason: str = "drain") -> Generator:
        """Migrate every tenant off a node (a sim process).

        Each registered pid moves to the least-loaded live peer; a
        transfer abort falls back to the source and the pid retries
        toward a different destination (up to three attempts).  Any
        scheduler queue left on the node (requests not tied to a pid)
        is transplanted afterwards under the replay-or-reject policy.
        Returns the list of MigrationRecords.
        """
        from .migrate.errors import TransferAbortedError

        node = self.nodes[index]
        if not node.alive:
            raise ValueError(f"cannot drain node {index}: it is down")
        targets = [i for i in self.alive_indices() if i != index]
        if not targets:
            raise ValueError("drain needs at least one other live node")
        migrator = self._ensure_migrator()
        self.drains += 1
        self.note_admin_event("node_drain", index, reason)
        records = []
        for pid in sorted(node.driver.processes):
            tried: List[int] = []
            while True:
                remaining = [i for i in targets if i not in tried]
                if not remaining:
                    raise TransferAbortedError(
                        index, tried[-1], f"drain-{pid}",
                        f"pid {pid}: every destination aborted the transfer",
                    )
                dst = min(
                    remaining,
                    key=lambda i: (len(self.nodes[i].driver.processes), i),
                )
                try:
                    record = yield from migrator.migrate(pid, index, dst)
                    records.append(record)
                    break
                except TransferAbortedError:
                    # The tenant fell back to the source; try another peer.
                    tried.append(dst)
        for scheduler in sorted(
            node.driver.schedulers, key=lambda s: s.vfpga_id
        ):
            if not scheduler.has_work:
                continue
            for dst in sorted(
                targets, key=lambda i: (len(self.nodes[i].driver.processes), i)
            ):
                if migrator._scheduler(self.nodes[dst], scheduler.vfpga_id) is not None:
                    yield from migrator.migrate_queue(
                        index, dst, scheduler.vfpga_id
                    )
                    break
        return records

    def rolling_upgrade(
        self,
        bitstreams: Optional[Dict[str, object]] = None,
        reason: str = "upgrade",
    ) -> Generator:
        """Upgrade every live node in sequence, under live traffic.

        Per node: drain its tenants to peers, fence it like a crash
        (ports black-holed, heartbeats see it down), re-program each
        loaded region through the ICAP bitstream cache (``bitstreams``
        maps kernel name -> replacement bitstream; defaults to the
        registered one), bump ``shell_version``, rejoin the fabric
        (heartbeat pairs re-arm), and rebalance tenants back.  Returns a
        per-node summary list.
        """
        if len(self.alive_indices()) < 2:
            raise ValueError("rolling upgrade needs at least two live nodes")
        summary = []
        for index in [node.index for node in self.nodes]:
            node = self.nodes[index]
            if not node.alive:
                continue
            records = yield from self.drain_node(index, reason=reason)
            self.crash_node(index, reason=reason)
            regions = 0
            for scheduler in sorted(
                node.driver.schedulers, key=lambda s: s.vfpga_id
            ):
                if scheduler.loaded is None:
                    continue
                registration = scheduler._kernels[scheduler.loaded]
                bitstream = (bitstreams or {}).get(
                    scheduler.loaded, registration.bitstream
                )
                yield from node.driver.reconfigure_app(
                    bitstream,
                    scheduler.vfpga_id,
                    registration.factory(),
                    cached=True,
                )
                scheduler.loaded_app = node.shell.vfpgas[scheduler.vfpga_id].app
                regions += 1
            node.shell_version += 1
            self.restore_node(index, reason=reason)
            self.upgrades += 1
            self.note_admin_event(
                "node_upgraded", index, f"{reason}: {regions} region(s) re-programmed"
            )
            yield from self._rebalance()
            summary.append(
                {"node": index, "migrated": len(records), "regions": regions}
            )
        return summary

    def _rebalance(self) -> Generator:
        """Move pids from the most- to the least-loaded live node until
        the spread is at most one tenant; stops early if a transfer
        aborts (the tenant stays safe on its source)."""
        from .migrate.errors import TransferAbortedError

        migrator = self._ensure_migrator()
        moved = []
        while True:
            alive = self.alive_indices()
            if len(alive) < 2:
                return moved
            by_load = sorted(
                alive, key=lambda i: (len(self.nodes[i].driver.processes), i)
            )
            lightest, heaviest = by_load[0], by_load[-1]
            spread = len(self.nodes[heaviest].driver.processes) - len(
                self.nodes[lightest].driver.processes
            )
            if spread <= 1:
                return moved
            pid = sorted(self.nodes[heaviest].driver.processes)[0]
            try:
                record = yield from migrator.migrate(pid, heaviest, lightest)
            except TransferAbortedError:
                return moved
            moved.append(record)

    def collective_group(self, qpn_base: int = 0x100, **kwargs):
        """Build a :class:`repro.net.collectives.CollectiveGroup` over all
        nodes' RDMA stacks and register it for telemetry roll-up."""
        from .net.collectives import CollectiveGroup

        stacks = []
        for node in self.nodes:
            rdma = node.shell.dynamic.rdma
            if rdma is None:
                raise ValueError(f"node {node.index} has no RDMA service")
            stacks.append(rdma)
        group = CollectiveGroup(self.env, stacks, qpn_base=qpn_base, **kwargs)
        self.collective_groups.append(group)
        return group

    def connect_qps(self, a: int, b: int, pid_a: int, pid_b: int,
                    qpn_a: int, qpn_b: int, vfpga: int = 0):
        """Create and cross-connect a QP pair between two nodes' cThreads."""
        from .api.cthread import CThread

        thread_a = CThread(self.nodes[a].driver, vfpga, pid=pid_a)
        thread_b = CThread(self.nodes[b].driver, vfpga, pid=pid_b)
        qp_a = thread_a.create_qp(qpn_a, psn=qpn_a)
        qp_b = thread_b.create_qp(qpn_b, psn=qpn_b)
        qp_a.connect(qp_b.local)
        qp_b.connect(qp_a.local)
        return thread_a, thread_b
