"""Multi-card deployments: a switch plus N shells with drivers.

Convenience wiring for the multi-node experiments (RDMA, collectives,
service swaps): every node gets a deterministic MAC/IP, its shell is
attached to one shared switch, and a driver is bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .core.dynamic_layer import ServiceConfig
from .core.shell import Shell, ShellConfig
from .core.vfpga import VFpgaConfig
from .driver.driver import Driver
from .health.errors import NodeDownError
from .net.headers import MacAddress
from .net.switch import Switch
from .sim.engine import Environment

__all__ = ["FpgaNode", "FpgaCluster"]

_MAC_BASE = 0x02_C0_70_7E_00_00  # locally administered
_IP_BASE = 0x0A_00_01_00


@dataclass
class FpgaNode:
    """One card in the cluster."""

    index: int
    mac: MacAddress
    ip: int
    shell: Shell
    driver: Driver
    #: False while crashed (see :meth:`FpgaCluster.crash_node`).
    alive: bool = True


class FpgaCluster:
    """N Coyote v2 cards on one switched network."""

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        services: Optional[ServiceConfig] = None,
        num_vfpgas: int = 1,
        vfpga: VFpgaConfig = VFpgaConfig(),
        device: str = "u55c",
    ):
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.env = env
        self.switch = Switch(env)
        if services is None:
            services = ServiceConfig(en_memory=True, en_rdma=True)
        self.services = services
        self.nodes: List[FpgaNode] = []
        for index in range(num_nodes):
            mac = MacAddress(_MAC_BASE + index)
            ip = _IP_BASE + index
            shell = Shell(
                env,
                ShellConfig(
                    device=device,
                    num_vfpgas=num_vfpgas,
                    vfpga=vfpga,
                    services=services,
                ),
                switch=self.switch,
                mac=mac,
                ip=ip,
            )
            driver = Driver(env, shell)
            driver.node_index = index
            self.nodes.append(
                FpgaNode(index=index, mac=mac, ip=ip, shell=shell, driver=driver)
            )
        self._by_mac: Dict[MacAddress, FpgaNode] = {
            node.mac: node for node in self.nodes
        }
        # A seeded ``node.crash`` in the fabric takes the whole node down,
        # not just its port.
        self.switch.on_node_crash = self._on_node_crash
        #: Attached :class:`repro.health.ClusterMonitor`, or ``None``.
        self.monitor = None
        #: Live :class:`repro.net.collectives.CollectiveGroup`\ s built via
        #: :meth:`collective_group` (telemetry roll-up walks these).
        self.collective_groups: List = []
        self.crashes = 0
        self.restores = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> FpgaNode:
        return self.nodes[index]

    # ------------------------------------------------------- fault tolerance

    def _on_node_crash(self, mac: MacAddress) -> None:
        node = self._by_mac.get(mac)
        if node is not None:
            self.crash_node(node.index)

    def crash_node(self, index: int, reason: str = "crash") -> None:
        """Take a whole card down, as a power loss would: its switch port
        black-holes, every QP on its RDMA stack is flushed (peers see
        retry exhaustion), pending driver completions fail with
        :class:`NodeDownError`, and its schedulers quiesce so the
        idempotent-replay-or-reject policy can run at restore time.
        Idempotent while down."""
        node = self.nodes[index]
        if not node.alive:
            return
        node.alive = False
        self.crashes += 1
        self.switch.kill_port(node.mac)
        exc = NodeDownError(index, reason)
        rdma = node.shell.dynamic.rdma
        if rdma is not None:
            rdma.halt(reason=f"node {index} {reason}")
        node.driver.node_down = True
        for vfpga in node.shell.vfpgas:
            node.driver.fail_pending(vfpga.vfpga_id, exc)
        for scheduler in node.driver.schedulers:
            scheduler.quiesce(exc)

    def restore_node(self, index: int) -> None:
        """Bring a crashed card back: port revived, its QPs recycled to
        RESET (re-connect is the caller's job — e.g. ``rebuild()`` on a
        collective group), schedulers resumed under the replay-or-reject
        policy.  Idempotent while up."""
        node = self.nodes[index]
        if node.alive:
            return
        node.alive = True
        self.restores += 1
        self.switch.revive_port(node.mac)
        rdma = node.shell.dynamic.rdma
        if rdma is not None:
            rdma.halted = False
            for qpn in sorted(rdma.qps):
                rdma.reset_qp(qpn)
        node.driver.node_down = False
        for scheduler in node.driver.schedulers:
            scheduler.resume_after_recovery(quarantined=False)
        if self.monitor is not None:
            self.monitor.on_node_restored(index)

    def alive_indices(self) -> List[int]:
        return [node.index for node in self.nodes if node.alive]

    def collective_group(self, qpn_base: int = 0x100, **kwargs):
        """Build a :class:`repro.net.collectives.CollectiveGroup` over all
        nodes' RDMA stacks and register it for telemetry roll-up."""
        from .net.collectives import CollectiveGroup

        stacks = []
        for node in self.nodes:
            rdma = node.shell.dynamic.rdma
            if rdma is None:
                raise ValueError(f"node {node.index} has no RDMA service")
            stacks.append(rdma)
        group = CollectiveGroup(self.env, stacks, qpn_base=qpn_base, **kwargs)
        self.collective_groups.append(group)
        return group

    def connect_qps(self, a: int, b: int, pid_a: int, pid_b: int,
                    qpn_a: int, qpn_b: int, vfpga: int = 0):
        """Create and cross-connect a QP pair between two nodes' cThreads."""
        from .api.cthread import CThread

        thread_a = CThread(self.nodes[a].driver, vfpga, pid=pid_a)
        thread_b = CThread(self.nodes[b].driver, vfpga, pid=pid_b)
        qp_a = thread_a.create_qp(qpn_a, psn=qpn_a)
        qp_b = thread_b.create_qp(qpn_b, psn=qpn_b)
        qp_a.connect(qp_b.local)
        qp_b.connect(qp_a.local)
        return thread_a, thread_b
