"""Sparse byte-addressable memory.

Backs both host DRAM and card HBM/DDR functionally.  Pages are allocated
lazily so multi-gigabyte address spaces cost nothing until touched.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SparseMemory"]

_BACKING_PAGE = 4096


class SparseMemory:
    """A dictionary-of-pages byte store with zero-fill semantics."""

    def __init__(self, size: int, name: str = "mem"):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.name = name
        self._pages: Dict[int, bytearray] = {}

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise ValueError(
                f"{self.name}: access [{addr:#x}, {addr + length:#x}) outside "
                f"size {self.size:#x}"
            )

    def read(self, addr: int, length: int) -> bytes:
        self._check_range(addr, length)
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_no, page_off = divmod(addr + offset, _BACKING_PAGE)
            take = min(length - offset, _BACKING_PAGE - page_off)
            page = self._pages.get(page_no)
            if page is not None:
                out[offset : offset + take] = page[page_off : page_off + take]
            offset += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        self._check_range(addr, len(data))
        offset = 0
        while offset < len(data):
            page_no, page_off = divmod(addr + offset, _BACKING_PAGE)
            take = min(len(data) - offset, _BACKING_PAGE - page_off)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(_BACKING_PAGE)
                self._pages[page_no] = page
            page[page_off : page_off + take] = data[offset : offset + take]
            offset += take

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self.write(addr, bytes([value]) * length)

    @property
    def resident_bytes(self) -> int:
        """Bytes of backing store actually allocated."""
        return len(self._pages) * _BACKING_PAGE
