"""The hybrid MMU: on-chip TLBs, host-side page-table walks, page faults.

Paper §6.1: "TLBs are implemented in on-chip SRAM, enabling fast look-ups,
while the rest of the MMU is implemented in the host-side driver; that is,
when a TLB miss is detected, the system falls back to the driver to obtain
the physical address."  A fault (page absent from the requested memory)
triggers a GPU-style migration.

This module provides the hardware half (:class:`Mmu`, one per vFPGA) and
the shared page table the driver half operates on.  Latencies:

* TLB hit: one fabric cycle (folded into the datapath, not charged here).
* TLB miss, page resident: driver walk over MSI-X + ioctl, ~1.2 us.
* Page fault: driver allocates/migrates the page; milliseconds-scale
  depending on page size and PCIe bandwidth (charged by the migration
  engine the driver injects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from ..sim.engine import Environment
from ..sim.resources import Resource
from .tlb import MemLocation, Tlb, TlbConfig, TlbEntry

__all__ = ["PageTable", "PageTableEntry", "Mmu", "MmuConfig", "SegmentationFault"]

#: TLB-miss service time when the page is resident (driver walk, paper §6.1).
TLB_MISS_WALK_NS = 1_200.0


class SegmentationFault(Exception):
    """Access to a virtual address with no mapping in the page table."""


@dataclass
class PageTableEntry:
    """Driver-owned mapping of one virtual page of a process."""

    vpn: int
    host_paddr: Optional[int] = None
    card_paddr: Optional[int] = None
    gpu_paddr: Optional[int] = None
    location: MemLocation = MemLocation.HOST
    writable: bool = True
    dirty: bool = False

    def paddr_in(self, location: MemLocation) -> Optional[int]:
        return {
            MemLocation.HOST: self.host_paddr,
            MemLocation.CARD: self.card_paddr,
            MemLocation.GPU: self.gpu_paddr,
        }[location]


class PageTable:
    """Per-process page table, keyed by virtual page number."""

    def __init__(self, pid: int, page_size: int):
        self.pid = pid
        self.page_size = page_size
        self.entries: Dict[int, PageTableEntry] = {}

    @property
    def page_shift(self) -> int:
        return self.page_size.bit_length() - 1

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self.page_shift

    def map(self, entry: PageTableEntry) -> None:
        self.entries[entry.vpn] = entry

    def unmap(self, vpn: int) -> Optional[PageTableEntry]:
        return self.entries.pop(vpn, None)

    def walk(self, vaddr: int) -> PageTableEntry:
        entry = self.entries.get(self.vpn_of(vaddr))
        if entry is None:
            raise SegmentationFault(
                f"pid {self.pid}: no mapping for vaddr {vaddr:#x}"
            )
        return entry


@dataclass(frozen=True)
class MmuConfig:
    """Hardware MMU parameters.

    ``xlat_stations`` and ``xlat_service_ns`` model the shared datapath
    translation pipeline whose saturation causes the bandwidth taper in
    Figure 7(a): aggregate translated bandwidth is bounded by
    ``stations * packet_bytes / service_ns``.
    """

    tlb: TlbConfig = TlbConfig()
    xlat_stations: int = 4
    xlat_service_ns: float = 100.0


class Mmu:
    """Per-vFPGA memory management unit (hardware side).

    The driver injects ``walk_fn(pid, vaddr, location, writable)`` which
    performs the host-side walk and any required migration, returning the
    physical address in the requested memory.  ``walk_fn`` is a generator
    (it runs in simulated time).
    """

    def __init__(
        self,
        env: Environment,
        config: MmuConfig = MmuConfig(),
        name: str = "mmu",
    ):
        self.env = env
        self.config = config
        self.name = name
        self.tlb = Tlb(config.tlb)
        self._xlat = Resource(env, capacity=config.xlat_stations)
        self.walk_fn: Optional[Callable] = None
        self.walk_any_fn: Optional[Callable] = None
        self.page_faults = 0
        self.walks = 0

    def bind_driver(self, walk_fn: Callable, walk_any_fn: Optional[Callable] = None) -> None:
        self.walk_fn = walk_fn
        self.walk_any_fn = walk_any_fn

    def translate(
        self,
        pid: int,
        vaddr: int,
        location: MemLocation,
        writable: bool = False,
    ) -> Generator:
        """Translate one packet's address; returns the physical address.

        Charges the shared translation-pipeline occupancy (taper source)
        plus, on a miss, the driver walk.
        """
        grant = self._xlat.request()
        yield grant
        try:
            yield self.env.timeout(self.config.xlat_service_ns)
            entry = self.tlb.lookup(vaddr)
            if entry is not None and entry.location is location:
                paddr = (entry.ppn << self.tlb.config.page_shift) | self.tlb.offset_of(vaddr)
                return paddr
        finally:
            self._xlat.release(grant)
        # Miss path: fall back to the host-side driver (outside the
        # translation pipeline so hits are not blocked behind walks).
        if self.walk_fn is None:
            raise SegmentationFault(f"{self.name}: no driver bound")
        self.walks += 1
        yield self.env.timeout(TLB_MISS_WALK_NS)
        paddr = yield self.env.process(self.walk_fn(pid, vaddr, location, writable))
        ppn = paddr >> self.tlb.config.page_shift
        self.tlb.insert(
            TlbEntry(
                vpn=self.tlb.vpn_of(vaddr), ppn=ppn, location=location, writable=writable
            )
        )
        return paddr

    def translate_any(self, pid: int, vaddr: int, writable: bool = False) -> Generator:
        """Translate to wherever the page currently lives.

        Returns ``(location, paddr)`` without triggering a migration —
        this is the path that lets the datapath issue direct PCIe
        peer-to-peer transfers to GPU-resident pages.
        """
        grant = self._xlat.request()
        yield grant
        try:
            yield self.env.timeout(self.config.xlat_service_ns)
            entry = self.tlb.lookup(vaddr)
            if entry is not None:
                paddr = (entry.ppn << self.tlb.config.page_shift) | self.tlb.offset_of(vaddr)
                return entry.location, paddr
        finally:
            self._xlat.release(grant)
        if self.walk_any_fn is None:
            raise SegmentationFault(f"{self.name}: no driver bound")
        self.walks += 1
        yield self.env.timeout(TLB_MISS_WALK_NS)
        location, paddr = yield self.env.process(self.walk_any_fn(pid, vaddr, writable))
        self.tlb.insert(
            TlbEntry(
                vpn=self.tlb.vpn_of(vaddr),
                ppn=paddr >> self.tlb.config.page_shift,
                location=location,
                writable=writable,
            )
        )
        return location, paddr

    def prefill(self, vaddr: int, paddr: int, location: MemLocation, writable: bool = True) -> None:
        """Install a translation without a walk (driver-initiated, e.g. getMem)."""
        self.tlb.insert(
            TlbEntry(
                vpn=self.tlb.vpn_of(vaddr),
                ppn=paddr >> self.tlb.config.page_shift,
                location=location,
                writable=writable,
            )
        )

    def pin(self, vaddr: int) -> bool:
        """Pin ``vaddr``'s cached translation against capacity eviction.

        Memory-region registration (:meth:`repro.driver.Driver.register_mr`)
        prefills and then pins every page of the region, so ring-posted
        work hits the TLB without host walks for the MR's lifetime.
        """
        return self.tlb.pin(vaddr)

    def unpin(self, vaddr: int) -> bool:
        return self.tlb.unpin(vaddr)

    def shootdown(self, vaddr: int) -> bool:
        """TLB invalidation (driver-triggered on unmap/migration)."""
        return self.tlb.invalidate(vaddr)

    def flush(self) -> int:
        """Invalidate every cached translation of this vFPGA's tenants.

        Each vFPGA has its own MMU, so a full flush drops exactly the
        recovering region's entries — other tenants' TLBs are untouched.
        Returns the number of entries invalidated.
        """
        return self.tlb.invalidate_all()
