"""Set-associative TLB with parameterisable page size, size and ways.

Paper §6.1: "We build upon Coyote's shared virtual memory model, enhancing
it to support arbitrary page sizes, TLB sizes and associativities."  The TLB
lives in on-chip SRAM (fast hit path); misses fall back to the host-side
driver (see :mod:`repro.mem.mmu`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional

__all__ = ["MemLocation", "TlbEntry", "Tlb", "TlbConfig", "PAGE_4K", "PAGE_2M", "PAGE_1G"]

PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024
PAGE_1G = 1024 * 1024 * 1024


class MemLocation(Enum):
    """Which physical memory a page currently resides in.

    ``GPU`` is the shared-virtual-memory extension of paper §6.1: an
    external contribution extended the MMU to GPU memory, enabling direct
    FPGA<->GPU data movement (PCIe peer-to-peer) with no host involvement.
    """

    HOST = "host"
    CARD = "card"
    GPU = "gpu"


@dataclass(frozen=True)
class TlbEntry:
    """A cached translation: virtual page -> (physical page, location).

    ``pinned`` entries back registered memory regions (see
    :mod:`repro.driver.ringbuf`): capacity eviction passes over them, so
    ring-posted work never takes a TLB-miss walk on MR pages.  Explicit
    invalidation (shootdown on unmap/migration) still removes them —
    pinning protects against *eviction*, not against the driver changing
    the mapping.
    """

    vpn: int
    ppn: int
    location: MemLocation
    writable: bool = True
    pinned: bool = False


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry.  Defaults mirror the paper's 2 MB-page configuration."""

    page_size: int = PAGE_2M
    num_entries: int = 512
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.num_entries % self.associativity:
            raise ValueError("num_entries must be divisible by associativity")

    @property
    def num_sets(self) -> int:
        return self.num_entries // self.associativity

    @property
    def page_shift(self) -> int:
        return self.page_size.bit_length() - 1


class Tlb:
    """LRU set-associative translation cache.

    Pure data structure: timing (hit latency, miss penalty) is charged by
    the MMU, keeping this reusable in untimed contexts (driver unit tests).
    """

    def __init__(self, config: TlbConfig = TlbConfig()):
        self.config = config
        # One ordered dict per set: vpn -> TlbEntry, LRU first.
        self._sets = [OrderedDict() for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pinned_evictions = 0

    def _set_for(self, vpn: int) -> "OrderedDict[int, TlbEntry]":
        return self._sets[vpn % self.config.num_sets]

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self.config.page_shift

    def offset_of(self, vaddr: int) -> int:
        return vaddr & (self.config.page_size - 1)

    def lookup(self, vaddr: int) -> Optional[TlbEntry]:
        vpn = self.vpn_of(vaddr)
        entries = self._set_for(vpn)
        entry = entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        entries.move_to_end(vpn)  # refresh LRU position
        self.hits += 1
        return entry

    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Insert a translation; returns the evicted entry, if any.

        The victim is the LRU *unpinned* entry of the set; only when the
        whole set is pinned does the LRU pinned entry go (counted in
        ``pinned_evictions`` — an over-registered set, worth surfacing).
        Re-inserting a pinned vpn (e.g. a walk refreshing the
        translation) keeps the pin.
        """
        entries = self._set_for(entry.vpn)
        existing = entries.get(entry.vpn)
        if existing is not None and existing.pinned and not entry.pinned:
            entry = replace(entry, pinned=True)
        evicted = None
        if existing is None and len(entries) >= self.config.associativity:
            victim_vpn = next(
                (vpn for vpn, e in entries.items() if not e.pinned), None
            )
            if victim_vpn is None:
                victim_vpn = next(iter(entries))  # all pinned: LRU pinned goes
                self.pinned_evictions += 1
            evicted = entries.pop(victim_vpn)
            self.evictions += 1
        entries[entry.vpn] = entry
        entries.move_to_end(entry.vpn)
        return evicted

    def pin(self, vaddr: int) -> bool:
        """Pin the entry caching ``vaddr``; False if none is resident."""
        vpn = self.vpn_of(vaddr)
        entries = self._set_for(vpn)
        entry = entries.get(vpn)
        if entry is None:
            return False
        if not entry.pinned:
            entries[vpn] = replace(entry, pinned=True)
        return True

    def unpin(self, vaddr: int) -> bool:
        vpn = self.vpn_of(vaddr)
        entries = self._set_for(vpn)
        entry = entries.get(vpn)
        if entry is None:
            return False
        if entry.pinned:
            entries[vpn] = replace(entry, pinned=False)
        return True

    def invalidate(self, vaddr: int) -> bool:
        vpn = self.vpn_of(vaddr)
        return self._set_for(vpn).pop(vpn, None) is not None

    def invalidate_all(self) -> int:
        """Full flush (tenant recovery / context wipe); returns entries dropped."""
        dropped = self.occupancy
        for entries in self._sets:
            entries.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def pinned_occupancy(self) -> int:
        return sum(1 for s in self._sets for e in s.values() if e.pinned)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
