"""Memory substrate: sparse memories, HBM controller, TLB/MMU, allocators."""

from .allocator import (
    Allocation,
    AllocType,
    FrameAllocator,
    OutOfMemoryError,
    VirtualAllocator,
)
from .gpu import GpuConfig, GpuDevice
from .hbm import HbmConfig, HbmController
from .mmu import Mmu, MmuConfig, PageTable, PageTableEntry, SegmentationFault
from .sparse import SparseMemory
from .tlb import (
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    MemLocation,
    Tlb,
    TlbConfig,
    TlbEntry,
)

__all__ = [
    "SparseMemory",
    "HbmConfig",
    "HbmController",
    "GpuConfig",
    "GpuDevice",
    "Tlb",
    "TlbConfig",
    "TlbEntry",
    "MemLocation",
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
    "Mmu",
    "MmuConfig",
    "PageTable",
    "PageTableEntry",
    "SegmentationFault",
    "AllocType",
    "Allocation",
    "VirtualAllocator",
    "FrameAllocator",
    "OutOfMemoryError",
]
