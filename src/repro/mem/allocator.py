"""Virtual- and physical-memory allocators used by the driver.

``getMem({Alloc::HPF, 4096})`` in the paper's Code 1 lands here: the driver
hands out process-virtual buffers backed by host page frames (regular 4 KB
pages, 2 MB transparent huge pages, or explicit 2 MB / 1 GB huge pages) and
registers the mappings with the MMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Set

from .tlb import PAGE_1G, PAGE_2M, PAGE_4K

__all__ = ["AllocType", "Allocation", "VirtualAllocator", "FrameAllocator", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """No free frames left in the requested physical memory."""


class AllocType(Enum):
    """Page backing requested for an allocation (paper's ``CoyoteAlloc``)."""

    REG = PAGE_4K  # regular pages
    THP = PAGE_2M  # transparent huge pages
    HPF = PAGE_2M  # explicit huge pages
    HPF1G = PAGE_1G  # 1 GB huge pages (paper §6.1 highlights these)

    @property
    def page_size(self) -> int:
        return self.value


@dataclass(frozen=True)
class Allocation:
    """A virtual buffer: base address, length and its backing page size."""

    vaddr: int
    length: int
    alloc_type: AllocType

    @property
    def page_size(self) -> int:
        return self.alloc_type.page_size

    @property
    def num_pages(self) -> int:
        return -(-self.length // self.page_size)

    @property
    def end(self) -> int:
        return self.vaddr + self.length


class VirtualAllocator:
    """Bump allocator over a process virtual address space.

    Buffers are aligned to their page size, so a buffer never shares a page
    with another buffer — matching the driver's behaviour where ``getMem``
    maps whole pages.
    """

    #: Start user mappings well above zero so address 0 stays invalid.
    BASE = 0x10_0000_0000

    def __init__(self, base: int = BASE):
        self._next = base
        self.allocations: List[Allocation] = []

    def allocate(self, length: int, alloc_type: AllocType = AllocType.HPF) -> Allocation:
        if length <= 0:
            raise ValueError("allocation length must be positive")
        page = alloc_type.page_size
        vaddr = -(-self._next // page) * page
        alloc = Allocation(vaddr=vaddr, length=length, alloc_type=alloc_type)
        self._next = vaddr + alloc.num_pages * page
        self.allocations.append(alloc)
        return alloc

    def allocate_at(self, vaddr: int, length: int, alloc_type: AllocType = AllocType.HPF) -> Allocation:
        """Reserve a buffer at a *fixed* virtual address (checkpoint
        restore: the destination must reproduce the source's layout so
        registered MRs and undrained ring slots stay valid verbatim).

        The address must be page-aligned and must not overlap any live
        allocation; the bump pointer advances past it so later
        :meth:`allocate` calls never collide with restored buffers.
        """
        if length <= 0:
            raise ValueError("allocation length must be positive")
        page = alloc_type.page_size
        if vaddr % page:
            raise ValueError(f"restore address {vaddr:#x} not {page}-byte aligned")
        alloc = Allocation(vaddr=vaddr, length=length, alloc_type=alloc_type)
        end = vaddr + alloc.num_pages * page
        for live in self.allocations:
            live_end = live.vaddr + live.num_pages * live.page_size
            if vaddr < live_end and live.vaddr < end:
                raise ValueError(
                    f"restore range [{vaddr:#x}, {end:#x}) overlaps live "
                    f"allocation at {live.vaddr:#x}"
                )
        self._next = max(self._next, end)
        self.allocations.append(alloc)
        return alloc

    def free(self, alloc: Allocation) -> None:
        try:
            self.allocations.remove(alloc)
        except ValueError:
            raise KeyError(f"allocation at {alloc.vaddr:#x} not found")

    def find(self, vaddr: int) -> Allocation:
        for alloc in self.allocations:
            if alloc.vaddr <= vaddr < alloc.end:
                return alloc
        raise KeyError(f"no allocation covers {vaddr:#x}")


class FrameAllocator:
    """Free-list allocator of physical page frames for one memory."""

    def __init__(self, total_bytes: int, frame_size: int, name: str = "frames"):
        if frame_size <= 0 or total_bytes < frame_size:
            raise ValueError("invalid frame allocator geometry")
        self.name = name
        self.frame_size = frame_size
        self.num_frames = total_bytes // frame_size
        self._free: List[int] = list(range(self.num_frames - 1, -1, -1))
        self._used: Set[int] = set()

    def allocate(self) -> int:
        """Return the physical base address of a free frame."""
        if not self._free:
            raise OutOfMemoryError(f"{self.name}: out of {self.frame_size}-byte frames")
        frame = self._free.pop()
        self._used.add(frame)
        return frame * self.frame_size

    def free(self, paddr: int) -> None:
        frame, rem = divmod(paddr, self.frame_size)
        if rem:
            raise ValueError(f"{paddr:#x} is not frame-aligned")
        if frame not in self._used:
            raise ValueError(f"frame at {paddr:#x} is not allocated")
        self._used.discard(frame)
        self._free.append(frame)

    @property
    def frames_free(self) -> int:
        return len(self._free)

    @property
    def frames_used(self) -> int:
        return len(self._used)
