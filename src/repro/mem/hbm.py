"""Card-memory (HBM/DDR) controller model with striping.

Models the Alveo U55C's HBM2: 16 GB behind 32 pseudo-channels clocked at
450 MHz with 256-bit AXI ports (14.4 GB/s nominal per channel).  The
dynamic layer stripes buffers across channels (paper §6.1) so a single
vFPGA can aggregate bandwidth; all card accesses are translated by the MMU
whose shared translation pipeline is what tapers the scaling curve in
Figure 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..faults.plan import HBM_ECC_DOUBLE, HBM_ECC_SINGLE
from ..sim.clock import HBM_CLOCK, Clock
from ..sim.engine import AllOf, Environment
from ..sim.resources import Resource
from .sparse import SparseMemory

__all__ = ["HbmConfig", "HbmController"]


@dataclass(frozen=True)
class HbmConfig:
    """Geometry and speeds of the card memory."""

    num_channels: int = 32
    channel_bytes: int = 512 * 1024 * 1024  # 16 GB / 32 channels
    port_width_bytes: int = 32  # 256-bit AXI port per channel
    clock: Clock = HBM_CLOCK
    access_latency_ns: float = 120.0  # closed-page HBM access
    stripe_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.stripe_bytes <= 0 or self.stripe_bytes & (self.stripe_bytes - 1):
            raise ValueError("stripe_bytes must be a positive power of two")

    @property
    def total_bytes(self) -> int:
        return self.num_channels * self.channel_bytes

    @property
    def channel_bandwidth(self) -> float:
        """Nominal per-channel bandwidth in bytes/ns (== GB/s)."""
        return self.clock.bytes_per_ns(self.port_width_bytes)


class HbmController:
    """Timed, functional multi-channel card memory.

    Physical addresses are striped: consecutive ``stripe_bytes`` blocks map
    to consecutive channels.  ``read``/``write`` split a request into its
    stripes and issue them to their channels concurrently, which is exactly
    what gives the striping speed-up.
    """

    def __init__(self, env: Environment, config: HbmConfig = HbmConfig()):
        self.env = env
        self.config = config
        self._mem = SparseMemory(config.total_bytes, name="hbm")
        self._channels = [Resource(env, capacity=1) for _ in range(config.num_channels)]
        self.bytes_read = 0
        self.bytes_written = 0
        #: Per-pseudo-channel access counts: striping skew shows up here
        #: long before it shows up as a throughput regression.
        self.channel_accesses = [0] * config.num_channels
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        self.ecc_corrected = 0
        self.ecc_uncorrected = 0

    # -- address mapping ---------------------------------------------------

    def channel_of(self, addr: int) -> int:
        return (addr // self.config.stripe_bytes) % self.config.num_channels

    def _stripes(self, addr: int, length: int):
        """Split [addr, addr+length) into (channel, addr, length) stripes."""
        stripe = self.config.stripe_bytes
        offset = 0
        while offset < length:
            cur = addr + offset
            take = min(length - offset, stripe - cur % stripe)
            yield self.channel_of(cur), cur, take
            offset += take

    # -- timed access --------------------------------------------------------

    def _channel_access(self, channel: int, nbytes: int) -> Generator:
        self.channel_accesses[channel] += 1
        grant = self._channels[channel].request()
        yield grant
        try:
            cycles = -(-nbytes // self.config.port_width_bytes)
            delay = self.config.access_latency_ns + self.config.clock.cycles_to_ns(cycles)
            if self.faults is not None:
                if self.faults.fires(HBM_ECC_SINGLE, channel):
                    # SECDED corrects single-bit flips inline: data intact,
                    # only the event is counted (scrubber telemetry).
                    self.ecc_corrected += 1
                if self.faults.fires(HBM_ECC_DOUBLE, channel):
                    # Double-bit error: the controller re-reads the burst
                    # (doubling the access time) and succeeds — modeled as
                    # a transient; the event is surfaced via card_report().
                    self.ecc_uncorrected += 1
                    delay *= 2.0
            yield self.env.timeout(delay)
        finally:
            self._channels[channel].release(grant)

    def read(self, addr: int, length: int) -> Generator:
        """Timed read returning the stored bytes."""
        events = [
            self.env.process(self._channel_access(ch, n))
            for ch, _a, n in self._stripes(addr, length)
        ]
        yield AllOf(self.env, events)
        self.bytes_read += length
        return self._mem.read(addr, length)

    def write(self, addr: int, data: bytes) -> Generator:
        """Timed write of a byte payload."""
        events = [
            self.env.process(self._channel_access(ch, n))
            for ch, _a, n in self._stripes(addr, len(data))
        ]
        yield AllOf(self.env, events)
        self._mem.write(addr, data)
        self.bytes_written += len(data)

    # -- untimed (functional) access ----------------------------------------

    def read_now(self, addr: int, length: int) -> bytes:
        return self._mem.read(addr, length)

    def write_now(self, addr: int, data: bytes) -> None:
        self._mem.write(addr, data)

    def channel_utilization(self) -> list:
        return [len(c.users) for c in self._channels]
