"""GPU device memory reachable over PCIe peer-to-peer.

Paper §6.1: "Proof of Coyote v2's flexible and extensible MMU is an
external contribution to the open-source codebase, which extended the MMU
to include GPU memory and supports direct data movement between the FPGA
and a GPU as proposed in [FpgaNIC]."

The model: a GPU with HBM-class device memory sitting on the same PCIe
switch as the FPGA.  P2P TLPs bypass host memory entirely; the achievable
P2P bandwidth is below the host-DMA rate (typical of real root complexes /
switches), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..sim.engine import Environment
from ..sim.resources import Resource
from .allocator import FrameAllocator
from .sparse import SparseMemory
from .tlb import PAGE_2M

__all__ = ["GpuConfig", "GpuDevice"]


@dataclass(frozen=True)
class GpuConfig:
    """Device-memory geometry and P2P link speed."""

    memory_bytes: int = 16 * 1024 * 1024 * 1024  # 16 GB device memory
    page_size: int = PAGE_2M
    #: PCIe peer-to-peer bandwidth, bytes/ns (== GB/s).  Lower than the
    #: 12 GB/s host path: P2P traverses the switch without write combining.
    p2p_bandwidth: float = 9.0
    p2p_latency_ns: float = 600.0


class GpuDevice:
    """A GPU as a P2P DMA target for the shell."""

    def __init__(self, env: Environment, config: GpuConfig = GpuConfig(), name: str = "gpu0"):
        self.env = env
        self.config = config
        self.name = name
        self.mem = SparseMemory(config.memory_bytes, name=f"{name}-mem")
        self.frames = FrameAllocator(config.memory_bytes, config.page_size, f"{name}-frames")
        self._p2p = Resource(env, capacity=1)
        self.bytes_read = 0
        self.bytes_written = 0

    def allocate_page(self) -> int:
        """Reserve one device page; returns its device physical address."""
        return self.frames.allocate()

    def free_page(self, paddr: int) -> None:
        self.frames.free(paddr)

    # -- P2P DMA (FPGA-initiated, host never touched) ------------------------

    def _transfer(self, nbytes: int) -> Generator:
        grant = self._p2p.request()
        yield grant
        try:
            yield self.env.timeout(
                self.config.p2p_latency_ns + nbytes / self.config.p2p_bandwidth
            )
        finally:
            self._p2p.release(grant)

    def read(self, paddr: int, length: int) -> Generator:
        """P2P read from device memory; returns the bytes."""
        yield from self._transfer(length)
        self.bytes_read += length
        return self.mem.read(paddr, length)

    def write(self, paddr: int, data: bytes) -> Generator:
        """P2P write into device memory."""
        yield from self._transfer(len(data))
        self.mem.write(paddr, data)
        self.bytes_written += len(data)

    # -- host-side (CUDA-style) access, untimed ------------------------------

    def upload(self, paddr: int, data: bytes) -> None:
        """cudaMemcpy(HostToDevice) equivalent for test/benchmark setup."""
        self.mem.write(paddr, data)

    def download(self, paddr: int, length: int) -> bytes:
        return self.mem.read(paddr, length)
