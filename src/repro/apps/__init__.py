"""User applications: the workloads the paper deploys on the shell."""

from .aes import (
    AesCbcApp,
    AesEcbApp,
    PIPELINE_STAGES,
    aes_cbc_decrypt,
    aes_cbc_encrypt,
    aes_decrypt_block,
    aes_ecb_encrypt,
    aes_encrypt_block,
    aes_expand_key,
)
from .hll import HllApp, HyperLogLog, murmur64
from .passthrough import PassThroughApp
from .vadd import VectorOpApp, vector_add, vector_mul

__all__ = [
    "PassThroughApp",
    "AesEcbApp",
    "AesCbcApp",
    "PIPELINE_STAGES",
    "aes_expand_key",
    "aes_encrypt_block",
    "aes_decrypt_block",
    "aes_ecb_encrypt",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "HllApp",
    "HyperLogLog",
    "murmur64",
    "VectorOpApp",
    "vector_add",
    "vector_mul",
]
