"""Neural-network inference kernel: an hls4ml IP inside a vFPGA (§9.7).

The kernel consumes a stream of 16-bit fixed-point feature vectors from
host memory, pushes them through the pipelined MLP IP (initiation
interval = reuse factor cycles per sample) and streams the logits back.
Unlike the PYNQ baseline, inputs come *directly* from host memory —
no staging copy through FPGA HBM.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..axi.types import Flit
from ..core.interfaces import StreamType
from ..core.vfpga import UserApp, VFpga
from ..sim.clock import FABRIC_CLOCK

__all__ = ["NnApp"]


class NnApp(UserApp):
    """Streaming inference over an :class:`~repro.ml.compiler.NnIpCore`."""

    name = "nn_inference"
    required_services = frozenset({"host"})

    def __init__(self, ip, num_streams: int = 1):
        self.ip = ip
        self.num_streams = num_streams
        self.samples_inferred = 0

    def run(self, vfpga: VFpga) -> Generator:
        for dest in range(self.num_streams):
            vfpga.spawn(self._lane(vfpga, dest), name=f"v{vfpga.vfpga_id}-nn{dest}")
        yield vfpga.env.event()

    def _lane(self, vfpga: VFpga, dest: int) -> Generator:
        env = vfpga.env
        ip = self.ip
        in_bytes = ip.sample_in_bytes
        out_bytes = ip.sample_out_bytes
        ii_ns = FABRIC_CLOCK.cycles_to_ns(ip.initiation_interval_cycles)
        pending = b""  # partial sample spanning a flit boundary (data mode)
        carry = 0  # partial sample bytes (timing-only mode)
        while True:
            flit = yield from vfpga.recv(StreamType.HOST, dest)
            data_out = None
            if flit.data is None:
                nsamples, carry = divmod(carry + flit.length, in_bytes)
            else:
                pending += flit.data
                nsamples = len(pending) // in_bytes
                if nsamples:
                    raw = pending[: nsamples * in_bytes]
                    pending = pending[nsamples * in_bytes :]
                    codes = np.frombuffer(raw, dtype="<i2")
                    x_codes = codes.reshape(nsamples, ip.input_width).astype(np.int64)
                    y = ip.forward_quantized(ip.precision.dequantize(x_codes))
                    data_out = ip.precision.quantize(y).astype("<i2").tobytes()
            if nsamples == 0:
                continue
            # Pipeline occupancy: one new sample per II cycles.
            yield env.timeout(nsamples * ii_ns + FABRIC_CLOCK.cycles_to_ns(ip.latency_cycles))
            self.samples_inferred += nsamples
            out = Flit(
                length=nsamples * out_bytes,
                data=data_out,
                tid=flit.tid,
                last=flit.last,
            )
            yield from vfpga.send(out, StreamType.HOST, dest)
