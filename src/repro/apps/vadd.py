"""Vector addition / product kernels.

These are the paper's running example for why the unified interface needs
*multiple* data streams (§2.2, Figure 2): the kernel consumes two input
vectors on two parallel streams and produces the result on a third — no
software-side packing/unpacking of operands into one stream.

Vectors are little-endian int32; arithmetic wraps modulo 2^32 like the
hardware adders would.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..axi.types import Flit
from ..core.interfaces import StreamType
from ..core.vfpga import UserApp, VFpga
from ..sim.clock import FABRIC_CLOCK

__all__ = ["VectorOpApp", "vector_add", "vector_mul"]


def _as_i32(data: bytes) -> np.ndarray:
    if len(data) % 4:
        raise ValueError("vector byte length must be a multiple of 4")
    return np.frombuffer(data, dtype="<u4")


def vector_add(a: bytes, b: bytes) -> bytes:
    """Reference elementwise int32 addition (wrapping)."""
    return (_as_i32(a) + _as_i32(b)).astype("<u4").tobytes()


def vector_mul(a: bytes, b: bytes) -> bytes:
    """Reference elementwise int32 product (wrapping)."""
    return (_as_i32(a) * _as_i32(b)).astype("<u4").tobytes()


class VectorOpApp(UserApp):
    """Streaming binary vector op: in0 (op) in1 -> out on stream 2.

    Uses three parallel streams of the same kind: operands on 0 and 1,
    result on 2.  The datapath processes one 512-bit word per cycle.
    """

    OPS = {"add": vector_add, "mul": vector_mul}

    def __init__(self, op: str = "add", stream: StreamType = StreamType.CARD):
        if op not in self.OPS:
            raise ValueError(f"unknown vector op {op!r}")
        self.op = op
        self.stream = stream
        self.name = f"v{op}"
        self.required_services = (
            frozenset({"host"})
            if stream is StreamType.HOST
            else frozenset({"host", "memory"})
        )
        self.elements_processed = 0

    def run(self, vfpga: VFpga) -> Generator:
        fn = self.OPS[self.op]
        while True:
            flit_a = yield from vfpga.recv(self.stream, 0)
            flit_b = yield from vfpga.recv(self.stream, 1)
            if flit_a.length != flit_b.length:
                vfpga.interrupt(value=0xBAD)  # malformed operands
                continue
            # One 64-byte word per fabric cycle through the adder array.
            cycles = -(-flit_a.length // 64)
            yield vfpga.env.timeout(FABRIC_CLOCK.cycles_to_ns(cycles))
            data: Optional[bytes] = None
            if flit_a.data is not None and flit_b.data is not None:
                data = fn(flit_a.data, flit_b.data)
                self.elements_processed += len(data) // 4
            out = Flit(
                length=flit_a.length,
                data=data,
                tid=flit_a.tid,
                last=flit_a.last and flit_b.last,
            )
            yield from vfpga.send(out, self.stream, 2)
