"""HyperLogLog cardinality estimation (paper §9.6).

A complete HLL sketch (Flajolet et al. with the standard bias corrections,
as in the FPGA implementation of Kulkarni et al. [35]) plus the HLS-style
streaming kernel the benchmark deploys: 32-bit items stream in from host
memory, the estimate streams back / is exposed via CSR.

The hash is a 64-bit Murmur3 finaliser — cheap in LUTs, well-distributed,
and exactly what hardware sketches typically use.
"""

from __future__ import annotations

import math
import struct
from typing import Generator, Iterable, Optional

import numpy as np

from ..axi.types import Flit
from ..core.interfaces import StreamType
from ..core.vfpga import UserApp, VFpga
from ..sim.clock import FABRIC_CLOCK

__all__ = ["HyperLogLog", "HllApp", "murmur64"]


def murmur64(value: int) -> int:
    """64-bit Murmur3 finaliser (a.k.a. fmix64)."""
    h = value & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 33
    return h


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """The sketch: 2^p registers of max leading-zero ranks."""

    def __init__(self, precision: int = 14):
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.m = 1 << precision
        self.registers = np.zeros(self.m, dtype=np.uint8)

    def add(self, value: int) -> None:
        h = murmur64(value)
        index = h >> (64 - self.precision)
        rest = h & ((1 << (64 - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_batch(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "HyperLogLog") -> None:
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)

    def estimate(self) -> float:
        m = self.m
        inv_sum = float(np.sum(np.exp2(-self.registers.astype(np.float64))))
        raw = _alpha(m) * m * m / inv_sum
        if raw <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                return m * math.log(m / zeros)  # linear counting
        if raw > (1 << 32) / 30.0:
            return -(1 << 32) * math.log(1.0 - raw / (1 << 32))
        return raw

    @property
    def standard_error(self) -> float:
        return 1.04 / math.sqrt(self.m)


#: CSR layout of the HLL kernel.
CSR_CTRL = 0  # write 1: reset sketch
CSR_COUNT_LO = 4  # RO: estimate as integer
CSR_ITEMS = 5  # RO: items consumed


class HllApp(UserApp):
    """Streaming HLL kernel: consumes 32-bit items from a host stream.

    Throughput model: the HLS kernel from [35] sustains one 512-bit word
    (16 items) per fabric cycle — 16 GB/s nominal, so end-to-end the
    benchmark is bound by the ~12 GB/s host link, matching the paper's
    observation that Coyote v2 performs on par with Coyote v1 here.
    """

    name = "hll"
    required_services = frozenset({"host"})

    def __init__(self, precision: int = 14, num_streams: int = 1):
        self.sketch = HyperLogLog(precision)
        self.num_streams = num_streams
        self.items = 0

    def on_csr_write(self, index: int, value: int) -> None:
        if index == CSR_CTRL and value == 1:
            self.sketch = HyperLogLog(self.sketch.precision)
            self.items = 0

    def run(self, vfpga: VFpga) -> Generator:
        vfpga.ctrl.on_read(CSR_COUNT_LO, lambda: int(self.sketch.estimate()))
        vfpga.ctrl.on_read(CSR_ITEMS, lambda: self.items)
        for dest in range(self.num_streams):
            vfpga.spawn(self._lane(vfpga, dest), name=f"v{vfpga.vfpga_id}-hll{dest}")
        yield vfpga.env.event()

    def _lane(self, vfpga: VFpga, dest: int) -> Generator:
        while True:
            flit = yield from vfpga.recv(StreamType.HOST, dest)
            cycles = -(-flit.length // 64)  # 16 items per cycle
            yield vfpga.env.timeout(FABRIC_CLOCK.cycles_to_ns(cycles))
            if flit.data is not None:
                count = len(flit.data) // 4
                values = struct.unpack(f"<{count}I", flit.data[: 4 * count])
                self.sketch.add_batch(values)
                self.items += count
            else:
                self.items += flit.length // 4
            if flit.last:
                # Estimate ready: notify the host (paper: user interrupts).
                vfpga.interrupt(value=int(self.sketch.estimate()))
