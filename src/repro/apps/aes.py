"""AES-128 user applications: ECB (multi-tenant) and CBC (multi-threaded).

The cipher itself is a complete FIPS-197 AES-128 implementation, verified
against the standard test vectors, so the shell moves *real* ciphertext.
The hardware timing model mirrors the paper's core (§9.5): a 10-stage
pipeline at the 250 MHz fabric clock.

* **ECB** is fully pipelined and wide (512-bit datapath, 4 lanes): ~32 GB/s
  per core — far above the ~12 GB/s host link, so the benchmark is
  memory-bound and exercises the fair-sharing machinery (Figure 8).
* **CBC** chains each 128-bit block on the previous ciphertext, so a single
  stream keeps only 1 of the 10 pipeline stages busy; multiple cThreads
  (one per parallel host stream) interleave through the same pipeline via
  a round-robin arbiter and recover the idle slots (Figures 9/10).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..axi.types import Flit
from ..core.interfaces import StreamType
from ..core.vfpga import UserApp, VFpga
from ..sim.clock import FABRIC_CLOCK
from ..sim.rate import RateServer

__all__ = [
    "aes_expand_key",
    "aes_encrypt_block",
    "aes_decrypt_block",
    "aes_ecb_encrypt",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "AesEcbApp",
    "AesCbcApp",
    "PIPELINE_STAGES",
]

#: Depth of the hardware encryption pipeline (paper Figure 9).
PIPELINE_STAGES = 10

# ----------------------------------------------------------- the cipher

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def aes_expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte key into 11 round keys (FIPS-197 key schedule)."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [_SBOX[b] for b in temp]  # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        bytes(sum((words[4 * r + c] for c in range(4)), []))
        for r in range(11)
    ]


def _add_round_key(state: List[int], round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: List[int], box: List[int]) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: List[int]) -> List[int]:
    # State is column-major: state[4*col + row].
    out = state[:]
    for row in range(1, 4):
        for col in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return out


def _inv_shift_rows(state: List[int]) -> List[int]:
    out = state[:]
    for row in range(1, 4):
        for col in range(4):
            out[4 * ((col + row) % 4) + row] = state[4 * col + row]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
        out[4 * col + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)
    return out


def _inv_mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _mul(a[0], 14) ^ _mul(a[1], 11) ^ _mul(a[2], 13) ^ _mul(a[3], 9)
        out[4 * col + 1] = _mul(a[0], 9) ^ _mul(a[1], 14) ^ _mul(a[2], 11) ^ _mul(a[3], 13)
        out[4 * col + 2] = _mul(a[0], 13) ^ _mul(a[1], 9) ^ _mul(a[2], 14) ^ _mul(a[3], 11)
        out[4 * col + 3] = _mul(a[0], 11) ^ _mul(a[1], 13) ^ _mul(a[2], 9) ^ _mul(a[3], 14)
    return out


def aes_encrypt_block(block: bytes, round_keys: List[bytes]) -> bytes:
    if len(block) != 16:
        raise ValueError("AES block must be 16 bytes")
    state = list(block)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, 10):
        _sub_bytes(state, _SBOX)
        state = _shift_rows(state)
        state = _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state, _SBOX)
    state = _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


def aes_decrypt_block(block: bytes, round_keys: List[bytes]) -> bytes:
    if len(block) != 16:
        raise ValueError("AES block must be 16 bytes")
    state = list(block)
    _add_round_key(state, round_keys[10])
    for rnd in range(9, 0, -1):
        state = _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[rnd])
        state = _inv_mix_columns(state)
    state = _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


def _check_padded(data: bytes) -> None:
    if len(data) % 16:
        raise ValueError("data must be a multiple of the 16-byte block size")


def aes_ecb_encrypt(
    data: bytes, key: bytes, round_keys: Optional[List[bytes]] = None
) -> bytes:
    """ECB-encrypt ``data``; pass a pre-expanded ``round_keys`` schedule
    to skip the per-call key expansion (the hardware expands once per
    setCSR, not once per message)."""
    _check_padded(data)
    if round_keys is None:
        round_keys = aes_expand_key(key)
    return b"".join(
        aes_encrypt_block(data[i : i + 16], round_keys) for i in range(0, len(data), 16)
    )


def aes_cbc_encrypt(
    data: bytes, key: bytes, iv: bytes, round_keys: Optional[List[bytes]] = None
) -> bytes:
    _check_padded(data)
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    if round_keys is None:
        round_keys = aes_expand_key(key)
    out = []
    chain = iv
    for i in range(0, len(data), 16):
        block = bytes(a ^ b for a, b in zip(data[i : i + 16], chain))
        chain = aes_encrypt_block(block, round_keys)
        out.append(chain)
    return b"".join(out)


def aes_cbc_decrypt(
    data: bytes, key: bytes, iv: bytes, round_keys: Optional[List[bytes]] = None
) -> bytes:
    _check_padded(data)
    if round_keys is None:
        round_keys = aes_expand_key(key)
    out = []
    chain = iv
    for i in range(0, len(data), 16):
        block = data[i : i + 16]
        plain = aes_decrypt_block(block, round_keys)
        out.append(bytes(a ^ b for a, b in zip(plain, chain)))
        chain = block
    return b"".join(out)


# ------------------------------------------------------ hardware kernels

#: CSR layout shared by both AES apps: key halves at 0/1, IV halves at 2/3.
CSR_KEY_LO = 0
CSR_KEY_HI = 1
CSR_IV_LO = 2
CSR_IV_HI = 3


class _AesAppBase(UserApp):
    """Key/IV management via the control bus (paper Code 1: setCSR)."""

    required_services = frozenset({"host"})

    def __init__(self, num_streams: int = 4, stream: StreamType = StreamType.HOST):
        self.num_streams = num_streams
        self.stream = stream
        self._round_keys: Optional[List[bytes]] = None
        self._key = bytes(16)
        self._iv = bytes(16)

    def on_csr_write(self, index: int, value: int) -> None:
        if index in (CSR_KEY_LO, CSR_KEY_HI):
            lo = self._key[:8] if index == CSR_KEY_HI else value.to_bytes(8, "little")
            hi = value.to_bytes(8, "little") if index == CSR_KEY_HI else self._key[8:]
            self._key = lo + hi
            self._round_keys = aes_expand_key(self._key)
        elif index in (CSR_IV_LO, CSR_IV_HI):
            lo = self._iv[:8] if index == CSR_IV_HI else value.to_bytes(8, "little")
            hi = value.to_bytes(8, "little") if index == CSR_IV_HI else self._iv[8:]
            self._iv = lo + hi

    def _keys(self) -> List[bytes]:
        if self._round_keys is None:
            self._round_keys = aes_expand_key(self._key)
        return self._round_keys


class AesEcbApp(_AesAppBase):
    """Fully-pipelined, 4-lane AES ECB core: one core per vFPGA (tenant)."""

    name = "aes_ecb"

    #: 512-bit datapath at 250 MHz -> 64 B/cycle -> 16 GB/s... the paper's
    #: core is comfortably faster than the 12 GB/s host link; we model
    #: 128 B/cycle (two 512-bit words in flight) = 32 GB/s.
    BYTES_PER_CYCLE = 128

    def run(self, vfpga: VFpga) -> Generator:
        from ..sim.resources import Store

        core = RateServer(
            vfpga.env,
            FABRIC_CLOCK.bytes_per_ns(self.BYTES_PER_CYCLE),
            name=f"v{vfpga.vfpga_id}-aes-ecb",
        )
        for dest in range(self.num_streams):
            # Egress runs as its own pipeline stage so wire-out overlaps
            # the next block's encryption; the bounded queue preserves
            # back-pressure and per-stream ordering.
            egress: Store = Store(vfpga.env, capacity=2)
            vfpga.spawn(
                self._lane(vfpga, core, dest, egress),
                name=f"v{vfpga.vfpga_id}-ecb{dest}",
            )
            vfpga.spawn(
                self._egress(vfpga, dest, egress),
                name=f"v{vfpga.vfpga_id}-ecb-out{dest}",
            )
        yield vfpga.env.event()  # the app itself persists until reconfigured

    def _lane(self, vfpga: VFpga, core: RateServer, dest: int, egress) -> Generator:
        while True:
            flit = yield from vfpga.recv(self.stream, dest)
            yield from core.reserve(flit.length)
            data = flit.data
            if data is not None:
                pad = (-len(data)) % 16
                ciphertext = aes_ecb_encrypt(
                    data + bytes(pad), self._key, round_keys=self._keys()
                )
                data = ciphertext[: len(data) + pad]
            out = Flit(
                length=len(data) if data is not None else flit.length,
                data=data,
                tid=flit.tid,
                last=flit.last,
            )
            yield egress.put(out)

    def _egress(self, vfpga: VFpga, dest: int, egress) -> Generator:
        while True:
            out = yield egress.get()
            yield from vfpga.send(out, self.stream, dest)


class AesCbcApp(_AesAppBase):
    """10-stage CBC pipeline shared by up to N cThreads (paper §9.5).

    Each parallel host stream carries one cThread's messages; a
    round-robin arbiter (implicit in the shared :class:`RateServer`)
    interleaves their 128-bit blocks into the pipeline.  A single thread
    is chain-limited to one block per 10 cycles; ``k`` threads fill ``k``
    of the 10 stages, scaling throughput linearly until the pipeline is
    full.
    """

    name = "aes_cbc"

    BLOCK_BYTES = 16

    def run(self, vfpga: VFpga) -> Generator:
        # The shared issue port accepts one block per fabric cycle.
        issue = RateServer(
            vfpga.env,
            FABRIC_CLOCK.bytes_per_ns(self.BLOCK_BYTES),
            name=f"v{vfpga.vfpga_id}-cbc-issue",
        )
        for dest in range(self.num_streams):
            vfpga.spawn(
                self._thread_lane(vfpga, issue, dest),
                name=f"v{vfpga.vfpga_id}-cbc{dest}",
            )
        yield vfpga.env.event()

    def _thread_lane(self, vfpga: VFpga, issue: RateServer, dest: int) -> Generator:
        env = vfpga.env
        stage_ns = FABRIC_CLOCK.cycles_to_ns(PIPELINE_STAGES)
        chain = self._iv
        while True:
            flit = yield from vfpga.recv(self.stream, dest)
            nblocks = -(-flit.length // self.BLOCK_BYTES)
            # Chain dependency: this stream completes one block per
            # PIPELINE_STAGES cycles, regardless of pipeline width...
            chain_done = env.now + nblocks * stage_ns
            # ...while the shared issue port bounds *aggregate* throughput
            # to one block per cycle across all threads.
            yield from issue.reserve(nblocks * self.BLOCK_BYTES)
            if env.now < chain_done:
                yield env.timeout(chain_done - env.now)
            data = flit.data
            if data is not None:
                pad = (-len(data)) % 16
                ciphertext = aes_cbc_encrypt(
                    data + bytes(pad), self._key, chain, round_keys=self._keys()
                )
                chain = ciphertext[-16:]
                data = ciphertext[: len(data) + pad]
            out = Flit(
                length=len(data) if data is not None else flit.length,
                data=data,
                tid=flit.tid,
                last=flit.last,
            )
            yield from vfpga.send(out, self.stream, dest)
