"""Pass-through kernels: the micro-benchmark workhorses.

``PassThroughApp`` copies every inbound flit straight back out on the same
stream index — the "simple data pass-through application, moving data from
one host buffer to another" of Figure 7(b)'s first config, and (with
``stream=CARD``) the HBM-scaling kernel of Figure 7(a).
"""

from __future__ import annotations

from typing import Generator

from ..axi.types import Flit
from ..core.interfaces import StreamType
from ..core.vfpga import UserApp, VFpga

__all__ = ["PassThroughApp"]


class PassThroughApp(UserApp):
    """Echo flits from ``stream`` input ``i`` to ``stream`` output ``i``."""

    name = "passthrough"

    def __init__(self, num_streams: int = 1, stream: StreamType = StreamType.HOST):
        self.num_streams = num_streams
        self.stream = stream
        self.required_services = (
            frozenset({"host"})
            if stream is StreamType.HOST
            else frozenset({"host", "memory"})
        )
        self.flits_moved = 0
        self.bytes_moved = 0

    def run(self, vfpga: VFpga) -> Generator:
        for dest in range(self.num_streams):
            vfpga.spawn(self._lane(vfpga, dest), name=f"v{vfpga.vfpga_id}-pt{dest}")
        yield vfpga.env.event()  # persist until reconfigured

    def _lane(self, vfpga: VFpga, dest: int) -> Generator:
        while True:
            flit = yield from vfpga.recv(self.stream, dest)
            self.flits_moved += 1
            self.bytes_moved += flit.length
            out = Flit(length=flit.length, data=flit.data, tid=flit.tid, last=flit.last)
            yield from vfpga.send(out, self.stream, dest)
