"""cRcnfg: the reconfiguration API (paper §7.3, Code 2).

.. code-block:: c++

    cRcnfg rcnfg(0);
    rcnfg.reconfigureShell("/path/to/shell.bin");
    rcnfg.reconfigureApp("/path/to/app.bin", 2);

Here bitstreams are :class:`~repro.core.bitstream.Bitstream` objects
produced by the synthesis flow instead of paths, and the target
application logic is passed alongside (the registry that maps bitstream
contents to simulation kernels lives in :mod:`repro.apps.registry`).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..core.bitstream import Bitstream
from ..core.dynamic_layer import ServiceConfig
from ..core.vfpga import UserApp
from ..driver.driver import Driver

__all__ = ["CRcnfg"]


class CRcnfg:
    """Reconfiguration handle for one card."""

    def __init__(self, driver: Driver):
        self.driver = driver
        self.env = driver.env

    def reconfigure_shell(
        self,
        bitstream: Bitstream,
        services: ServiceConfig,
        apps: Optional[List[Optional[UserApp]]] = None,
    ) -> Generator:
        """Swap services + applications at run time, device stays online."""
        yield self.env.process(
            self.driver.reconfigure_shell(bitstream, services, apps)
        )

    def reconfigure_app(
        self, bitstream: Bitstream, vfpga_id: int, app: UserApp
    ) -> Generator:
        """Swap a single vFPGA's user logic."""
        yield self.env.process(
            self.driver.reconfigure_app(bitstream, vfpga_id, app)
        )
