"""On-demand application scheduling over partial reconfiguration.

Paper §4/§9.6: prior shells and Coyote v2 "trigger reconfiguration of
specific applications as user requests arrive, based on some scheduling
policy", and §9.6 runs HLL "as a background daemon loaded on demand".
This module provides that run-time as a reusable component: clients
submit requests naming a registered kernel; the scheduler batches
same-kernel requests (affinity) to avoid reconfiguration thrashing,
swaps vFPGA logic through the driver's PR ioctl when needed, and runs
each request against the loaded kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..core.bitstream import Bitstream
from ..core.vfpga import UserApp
from ..driver.driver import Driver
from ..health.errors import (
    AdmissionError,
    NodeDownError,
    QuarantinedError,
    RecoveredError,
)
from ..sim.engine import Environment, Event, Interrupt
from ..sim.resources import Container
from ..telemetry.metrics import Histogram, MetricsRegistry

__all__ = ["AppScheduler", "SchedulerError", "KernelRegistration"]


class SchedulerError(Exception):
    """Scheduling misuse: unknown kernels, duplicate registrations."""


@dataclass(frozen=True)
class KernelRegistration:
    """A deployable kernel: its bitstream and a factory for the logic.

    ``idempotent`` declares that a request body may safely run twice; a
    recovery that aborts an in-flight request replays it only then,
    otherwise the submitter gets a :class:`RecoveredError`.
    """

    name: str
    bitstream: Bitstream
    factory: Callable[[], UserApp]
    idempotent: bool = False


@dataclass
class _Request:
    kernel: str
    body: Callable  # generator fn(cthread-ish context) -> result
    done: Event
    submitted_at: float
    #: Whether this request currently holds an admission slot (replayed
    #: requests re-enter the queue without re-acquiring one).
    holds_slot: bool = True


class AppScheduler:
    """FCFS-with-affinity scheduler for one vFPGA region.

    Policy: requests are served in arrival order, except that requests
    for the *currently loaded* kernel may be served ahead of a pending
    reconfiguration ("affinity window"), amortising PR latency exactly
    like batching amortises context switches in an OS scheduler.
    """

    def __init__(
        self,
        driver: Driver,
        vfpga_id: int = 0,
        affinity_window: int = 8,
        cached_bitstreams: bool = True,
        max_queue_depth: Optional[int] = 64,
        admission: str = "block",
    ):
        if admission not in ("block", "reject"):
            raise SchedulerError("admission must be 'block' or 'reject'")
        self.driver = driver
        self.env: Environment = driver.env
        self.vfpga_id = vfpga_id
        self.affinity_window = affinity_window
        self.cached_bitstreams = cached_bitstreams
        self.admission = admission
        self.max_queue_depth = max_queue_depth
        self._kernels: Dict[str, KernelRegistration] = {}
        self._queue: List[_Request] = []
        #: Edge-triggered wakeup: armed (a pending Event) only while the
        #: loop is idle with an empty queue.  Submitters fire the edge at
        #: most once per idle period; while the loop is draining, a queue
        #: append alone is enough — no per-request wakeup tokens.
        self._wakeup: Optional[Event] = None
        #: Admission slots: the submit queue is bounded; a full queue
        #: back-pressures (``block``) or sheds (``reject``) new work so a
        #: slow or wedged region cannot absorb unbounded client state.
        self._slots: Optional[Container] = (
            Container(self.env, capacity=max_queue_depth, init=max_queue_depth)
            if max_queue_depth is not None
            else None
        )
        self.loaded: Optional[str] = None
        self.loaded_app: Optional[UserApp] = None
        self.reconfigurations = 0
        self.requests_served = 0
        #: Requests whose reconfiguration exhausted its retries; each one
        #: failed cleanly back to its submitter while the loop lived on.
        self.reconfig_failures = 0
        #: Requests served on the already-resident kernel (no PR needed).
        self.affinity_hits = 0
        #: Edge-triggered loop telemetry: idle→work wakeup edges taken vs
        #: requests dispatched off the queue.  A burst of N submits costs
        #: one wakeup, so dispatches/wakeups is the coalescing factor.
        self.wakeups = 0
        self.dispatches = 0
        self.queue_depth_high_water = 0
        #: Admission-control telemetry.
        self.rejected_submits = 0
        self.queue_full_stalls = 0
        #: Recovery telemetry: in-flight requests replayed vs. rejected.
        self.replayed = 0
        self.replay_rejected = 0
        #: Requests handed to another region's scheduler (live migration).
        self.transplanted_out = 0
        self.transplanted_in = 0
        #: Region circuit breaker tripped: every submit fails fast.
        self.quarantined = False
        #: Time from submit() to being picked, in ns (telemetry).
        self.queue_wait = Histogram.exponential("scheduler.queue_wait_ns")
        #: Consecutive times the current queue head has been bypassed by a
        #: resident-kernel request; capped at ``affinity_window``.
        self._head_bypasses = 0
        #: Recovery handshake state (see quiesce / resume_after_recovery).
        self._running: Optional[_Request] = None
        self._running_proc = None
        self._aborted: Optional[_Request] = None
        self._paused = False
        self._gate: Optional[Event] = None
        driver.attach_scheduler(self)
        self.env.process(self._scheduler_loop(), name=f"sched-v{vfpga_id}")

    # --------------------------------------------------------------- admin

    def register(
        self,
        name: str,
        bitstream: Bitstream,
        factory: Callable[[], UserApp],
        idempotent: bool = False,
    ) -> None:
        if name in self._kernels:
            raise SchedulerError(f"kernel {name!r} already registered")
        self._kernels[name] = KernelRegistration(name, bitstream, factory, idempotent)

    @property
    def has_work(self) -> bool:
        """Queued, running, or recovery-parked work (watchdog busy signal)."""
        return bool(self._queue) or self._running is not None or self._aborted is not None

    # --------------------------------------------------------------- client

    def submit(self, kernel: str, body: Callable) -> Generator:
        """Queue a request; returns the body's result when it ran.

        ``body(app)`` must be a generator function receiving the loaded
        :class:`UserApp`; it runs once the kernel is resident.
        """
        if kernel not in self._kernels:
            raise SchedulerError(f"unknown kernel {kernel!r}")
        if self.quarantined:
            raise QuarantinedError(self.vfpga_id)
        if self.driver.node_down:
            # The whole card is down (cluster scope): reject at the door
            # rather than queueing work that can only park.
            raise NodeDownError(
                self.driver.node_index if self.driver.node_index is not None else -1
            )
        if self._slots is not None:
            if self._slots.level < 1:
                if self.admission == "reject":
                    self.rejected_submits += 1
                    raise AdmissionError(self.vfpga_id, self.max_queue_depth)
                self.queue_full_stalls += 1
            yield self._slots.get(1)
            if self.quarantined:  # quarantined while blocked on admission
                self._slots.put(1)
                raise QuarantinedError(self.vfpga_id)
        request = _Request(
            kernel=kernel, body=body, done=Event(self.env), submitted_at=self.env.now
        )
        self._queue.append(request)
        if len(self._queue) > self.queue_depth_high_water:
            self.queue_depth_high_water = len(self._queue)
        if self.driver.health is not None:
            self.driver.health.notify_activity()
        self._notify()
        result = yield request.done
        return result

    def submit_many(self, kernel: str, bodies: List[Callable]) -> Generator:
        """Batched submit: enqueue every body, fire **one** wakeup edge.

        The scheduling-layer analogue of the ring doorbell: N requests
        enter the queue together and cost a single idle->work wakeup
        (``submit`` pays one per idle period anyway, but a batch also
        skips the per-request bookkeeping interleaving).  Admission
        slots are still acquired per request, so back-pressure semantics
        match ``submit``; a rejected batch refunds the slots it already
        held.  Returns the bodies' results in submission order once all
        of them ran.
        """
        if kernel not in self._kernels:
            raise SchedulerError(f"unknown kernel {kernel!r}")
        bodies = list(bodies)
        if not bodies:
            return []
        if self.quarantined:
            raise QuarantinedError(self.vfpga_id)
        if self.driver.node_down:
            raise NodeDownError(
                self.driver.node_index if self.driver.node_index is not None else -1
            )
        held = 0
        try:
            if self._slots is not None:
                for _ in bodies:
                    if self._slots.level < 1:
                        if self.admission == "reject":
                            self.rejected_submits += 1
                            raise AdmissionError(self.vfpga_id, self.max_queue_depth)
                        self.queue_full_stalls += 1
                    yield self._slots.get(1)
                    held += 1
                    if self.quarantined:
                        raise QuarantinedError(self.vfpga_id)
        except (AdmissionError, QuarantinedError):
            if self._slots is not None and held:
                self._slots.put(held)
            raise
        requests = [
            _Request(
                kernel=kernel, body=body, done=Event(self.env),
                submitted_at=self.env.now,
            )
            for body in bodies
        ]
        self._queue.extend(requests)
        if len(self._queue) > self.queue_depth_high_water:
            self.queue_depth_high_water = len(self._queue)
        if self.driver.health is not None:
            self.driver.health.notify_activity()
        self._notify()
        results = []
        for request in requests:
            results.append((yield request.done))
        return results

    # ------------------------------------------------------------ scheduling

    def _notify(self) -> None:
        """Fire the wakeup edge iff the loop is parked idle.

        Idempotent within one idle period: the first notifier triggers
        the armed event, later ones see it triggered and do nothing (the
        loop batch-drains the whole queue per wakeup anyway).
        """
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()

    def _pick(self) -> _Request:
        """FCFS with bounded affinity for the resident kernel.

        The head of the queue may be bypassed by resident-kernel requests
        at most ``affinity_window`` consecutive times; after that it is
        served unconditionally, so a steady stream of resident requests
        can never starve a pending kernel switch.
        """
        head = self._queue[0]
        if (
            self.loaded is not None
            and head.kernel != self.loaded
            and self._head_bypasses < self.affinity_window
        ):
            for request in self._queue[: self.affinity_window]:
                if request.kernel == self.loaded:
                    self._queue.remove(request)
                    self._head_bypasses += 1
                    return request
        self._head_bypasses = 0
        return self._queue.pop(0)

    def _pause_gate(self) -> Generator:
        while self._paused:
            self._gate = Event(self.env)
            yield self._gate

    def _scheduler_loop(self) -> Generator:
        """Edge-triggered serve loop.

        The loop arms a wakeup event only when the queue is empty, and on
        each wakeup batch-drains every eligible request before parking
        again.  Cost per request is therefore the request's own body (and
        its reconfiguration, when the kernel switches) — not a wakeup
        token round-trip per submit as in the old level-triggered Store
        design.  ``wakeups``/``dispatches`` count the coalescing.
        """
        while True:
            if not self._queue:
                self._wakeup = Event(self.env)
                yield self._wakeup
                self._wakeup = None
                self.wakeups += 1
            yield from self._pause_gate()
            while self._queue:
                request = self._pick()
                self.dispatches += 1
                yield from self._serve(request)
                # A recovery may have paused the loop while this request
                # ran; honour it before draining the next one.
                yield from self._pause_gate()

    def _serve(self, request: _Request) -> Generator:
        """Serve one picked request: reconfigure if needed, run the body,
        deliver the result/failure to the submitter."""
        if self._slots is not None and request.holds_slot:
            self._slots.put(1)
            request.holds_slot = False
        self._running = request
        self.queue_wait.observe(self.env.now - request.submitted_at)
        try:
            if request.kernel != self.loaded:
                registration = self._kernels[request.kernel]
                try:
                    yield self.env.process(
                        self.driver.reconfigure_app(
                            registration.bitstream,
                            self.vfpga_id,
                            registration.factory(),
                            cached=self.cached_bitstreams,
                        )
                    )
                except Exception as exc:
                    # A reconfiguration that exhausted the driver's
                    # retries fails only this request; the loop keeps
                    # serving (the region still holds the last-good
                    # kernel, if any).
                    self.reconfig_failures += 1
                    request.done.fail(exc)
                    return
                self.loaded = request.kernel
                self.loaded_app = self.driver.shell.vfpgas[self.vfpga_id].app
                self.reconfigurations += 1
            else:
                self.affinity_hits += 1
            # A recovery may have started while this request was
            # reconfiguring; wait for the region to be re-coupled.
            yield from self._pause_gate()
            try:
                self._running_proc = self.env.process(
                    request.body(self.loaded_app)
                )
                result = yield self._running_proc
            except Interrupt as intr:
                if self._paused and isinstance(
                    intr.cause, (RecoveredError, NodeDownError)
                ):
                    # Recovery (or a node crash) aborted the body; park
                    # the request for the replay/reject decision at
                    # resume time.
                    self._aborted = request
                else:
                    request.done.fail(intr)
            except (RecoveredError, NodeDownError) as exc:
                # The body saw its own completion fail before the
                # quiesce interrupt landed; same disposition.
                if self._paused:
                    self._aborted = request
                else:
                    request.done.fail(exc)
            except Exception as exc:  # surface failures to the submitter
                request.done.fail(exc)
            else:
                self.requests_served += 1
                request.done.succeed(result)
        finally:
            self._running = None
            self._running_proc = None

    # ------------------------------------------------------------- recovery

    def quiesce(self, exc: Exception) -> None:
        """Pause the loop and abort the in-flight request (recovery step 1).

        Called synchronously by :class:`repro.health.RecoveryManager`
        while the region is being decoupled.  A request mid-PR is left to
        finish its reconfiguration (the ICAP is a shared shell resource;
        the pause gate holds its body until the region is re-coupled).
        """
        self._paused = True
        proc = self._running_proc
        if proc is not None and proc.is_alive:
            proc.interrupt(exc)

    def resume_after_recovery(self, quarantined: bool) -> None:
        """Re-open the loop after recovery (steps 4/5).

        ``quarantined``: fail everything — the parked request and all
        queued work — with :class:`QuarantinedError` and shed future
        submits.  Otherwise replay the parked request iff its kernel was
        registered idempotent, else reject it with
        :class:`RecoveredError`; queued (not-yet-started) work survives.
        """
        aborted, self._aborted = self._aborted, None
        if quarantined:
            self.quarantined = True
            failed = list(self._queue)
            self._queue.clear()
            if aborted is not None:
                failed.append(aborted)
            for request in failed:
                if self._slots is not None and request.holds_slot:
                    self._slots.put(1)
                    request.holds_slot = False
                if not request.done.triggered:
                    request.done.fail(QuarantinedError(self.vfpga_id))
        elif aborted is not None:
            if self._kernels[aborted.kernel].idempotent:
                self._queue.insert(0, aborted)
                self._notify()
                self.replayed += 1
            else:
                self.replay_rejected += 1
                if not aborted.done.triggered:
                    aborted.done.fail(
                        RecoveredError(self.vfpga_id, "in-flight request aborted")
                    )
        self._paused = False
        gate, self._gate = self._gate, None
        if gate is not None and not gate.triggered:
            gate.succeed()
        if self.driver.health is not None:
            self.driver.health.notify_activity()

    def transplant_to(self, dst: "AppScheduler") -> Tuple[int, int, int]:
        """Hand every queued request — and the recovery-parked in-flight
        one — to another scheduler, then resume this (now empty) loop.

        The live-migration flip: after the tenant's state restored on the
        destination, queued submits must replay *there*.  Queued requests
        re-enter ``dst``'s queue in arrival order without re-acquiring
        admission slots (they were admitted once already; this scheduler
        refunds the slots they held).  The in-flight request this
        scheduler's quiesce aborted replays iff its kernel is registered
        idempotent on ``dst`` — the same replay-or-reject policy a local
        recovery applies — and requests naming a kernel ``dst`` does not
        know fail with a typed :class:`RecoveredError` rather than being
        dropped.  Submitters keep waiting on the same done events
        throughout, so the flip is invisible to them.

        Returns ``(moved, replayed, rejected)``.
        """
        if dst is self:
            raise SchedulerError("cannot transplant a scheduler onto itself")
        aborted, self._aborted = self._aborted, None
        moved: List[_Request] = []
        rejected = 0
        replayed = 0
        if aborted is not None:
            registration = dst._kernels.get(aborted.kernel)
            if registration is not None and registration.idempotent:
                moved.append(aborted)
                replayed += 1
                dst.replayed += 1
            else:
                rejected += 1
                self.replay_rejected += 1
                if not aborted.done.triggered:
                    aborted.done.fail(
                        RecoveredError(self.vfpga_id, "aborted by migration")
                    )
        queued, self._queue = self._queue, []
        for request in queued:
            if request.kernel in dst._kernels:
                moved.append(request)
            else:
                rejected += 1
                if not request.done.triggered:
                    request.done.fail(
                        RecoveredError(
                            self.vfpga_id,
                            f"kernel {request.kernel!r} not registered on "
                            f"the migration destination",
                        )
                    )
        for request in queued:
            if self._slots is not None and request.holds_slot:
                self._slots.put(1)
            request.holds_slot = False
        if aborted is not None and self._slots is not None and aborted.holds_slot:
            self._slots.put(1)
            aborted.holds_slot = False
        dst._queue.extend(moved)
        if len(dst._queue) > dst.queue_depth_high_water:
            dst.queue_depth_high_water = len(dst._queue)
        self.transplanted_out += len(moved)
        dst.transplanted_in += len(moved)
        dst._notify()
        # Re-open this loop: its queue is empty, so it parks idle.
        self._paused = False
        gate, self._gate = self._gate, None
        if gate is not None and not gate.triggered:
            gate.succeed()
        return len(moved), replayed, rejected

    # ------------------------------------------------------------ telemetry

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Fold this scheduler's counters into a card-level registry.

        Additive (``inc``/``merge``) so several schedulers — one per
        vFPGA region — aggregate into one ``scheduler`` domain.
        """
        registry.counter("scheduler.reconfigurations").inc(self.reconfigurations)
        registry.counter("scheduler.requests_served").inc(self.requests_served)
        registry.counter("scheduler.reconfig_failures").inc(self.reconfig_failures)
        registry.counter("scheduler.affinity_hits").inc(self.affinity_hits)
        registry.counter("scheduler.rejected_submits").inc(self.rejected_submits)
        registry.counter("scheduler.queue_full_stalls").inc(self.queue_full_stalls)
        registry.counter("scheduler.replayed").inc(self.replayed)
        registry.counter("scheduler.replay_rejected").inc(self.replay_rejected)
        registry.counter("scheduler.transplanted_out").inc(self.transplanted_out)
        registry.counter("scheduler.transplanted_in").inc(self.transplanted_in)
        registry.counter("scheduler.wakeups").inc(self.wakeups)
        registry.counter("scheduler.dispatches").inc(self.dispatches)
        depth = registry.gauge("scheduler.queue_depth")
        depth.add(len(self._queue))
        depth.high_water = max(depth.high_water, self.queue_depth_high_water)
        registry.histogram(
            "scheduler.queue_wait_ns", self.queue_wait.bounds
        ).merge(self.queue_wait)
