"""On-demand application scheduling over partial reconfiguration.

Paper §4/§9.6: prior shells and Coyote v2 "trigger reconfiguration of
specific applications as user requests arrive, based on some scheduling
policy", and §9.6 runs HLL "as a background daemon loaded on demand".
This module provides that run-time as a reusable component: clients
submit requests naming a registered kernel; the scheduler batches
same-kernel requests (affinity) to avoid reconfiguration thrashing,
swaps vFPGA logic through the driver's PR ioctl when needed, and runs
each request against the loaded kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..core.bitstream import Bitstream
from ..core.vfpga import UserApp
from ..driver.driver import Driver
from ..sim.engine import Environment, Event
from ..sim.resources import Store
from ..telemetry.metrics import Histogram, MetricsRegistry

__all__ = ["AppScheduler", "SchedulerError", "KernelRegistration"]


class SchedulerError(Exception):
    """Scheduling misuse: unknown kernels, duplicate registrations."""


@dataclass(frozen=True)
class KernelRegistration:
    """A deployable kernel: its bitstream and a factory for the logic."""

    name: str
    bitstream: Bitstream
    factory: Callable[[], UserApp]


@dataclass
class _Request:
    kernel: str
    body: Callable  # generator fn(cthread-ish context) -> result
    done: Event
    submitted_at: float


class AppScheduler:
    """FCFS-with-affinity scheduler for one vFPGA region.

    Policy: requests are served in arrival order, except that requests
    for the *currently loaded* kernel may be served ahead of a pending
    reconfiguration ("affinity window"), amortising PR latency exactly
    like batching amortises context switches in an OS scheduler.
    """

    def __init__(
        self,
        driver: Driver,
        vfpga_id: int = 0,
        affinity_window: int = 8,
        cached_bitstreams: bool = True,
    ):
        self.driver = driver
        self.env: Environment = driver.env
        self.vfpga_id = vfpga_id
        self.affinity_window = affinity_window
        self.cached_bitstreams = cached_bitstreams
        self._kernels: Dict[str, KernelRegistration] = {}
        self._queue: List[_Request] = []
        self._wakeup: Store = Store(self.env)
        self.loaded: Optional[str] = None
        self.loaded_app: Optional[UserApp] = None
        self.reconfigurations = 0
        self.requests_served = 0
        #: Requests whose reconfiguration exhausted its retries; each one
        #: failed cleanly back to its submitter while the loop lived on.
        self.reconfig_failures = 0
        #: Requests served on the already-resident kernel (no PR needed).
        self.affinity_hits = 0
        self.queue_depth_high_water = 0
        #: Time from submit() to being picked, in ns (telemetry).
        self.queue_wait = Histogram.exponential("scheduler.queue_wait_ns")
        #: Consecutive times the current queue head has been bypassed by a
        #: resident-kernel request; capped at ``affinity_window``.
        self._head_bypasses = 0
        driver.attach_scheduler(self)
        self.env.process(self._scheduler_loop(), name=f"sched-v{vfpga_id}")

    # --------------------------------------------------------------- admin

    def register(self, name: str, bitstream: Bitstream, factory: Callable[[], UserApp]) -> None:
        if name in self._kernels:
            raise SchedulerError(f"kernel {name!r} already registered")
        self._kernels[name] = KernelRegistration(name, bitstream, factory)

    # --------------------------------------------------------------- client

    def submit(self, kernel: str, body: Callable) -> Generator:
        """Queue a request; returns the body's result when it ran.

        ``body(app)`` must be a generator function receiving the loaded
        :class:`UserApp`; it runs once the kernel is resident.
        """
        if kernel not in self._kernels:
            raise SchedulerError(f"unknown kernel {kernel!r}")
        request = _Request(
            kernel=kernel, body=body, done=Event(self.env), submitted_at=self.env.now
        )
        self._queue.append(request)
        if len(self._queue) > self.queue_depth_high_water:
            self.queue_depth_high_water = len(self._queue)
        yield self._wakeup.put(object())
        result = yield request.done
        return result

    # ------------------------------------------------------------ scheduling

    def _pick(self) -> _Request:
        """FCFS with bounded affinity for the resident kernel.

        The head of the queue may be bypassed by resident-kernel requests
        at most ``affinity_window`` consecutive times; after that it is
        served unconditionally, so a steady stream of resident requests
        can never starve a pending kernel switch.
        """
        head = self._queue[0]
        if (
            self.loaded is not None
            and head.kernel != self.loaded
            and self._head_bypasses < self.affinity_window
        ):
            for request in self._queue[: self.affinity_window]:
                if request.kernel == self.loaded:
                    self._queue.remove(request)
                    self._head_bypasses += 1
                    return request
        self._head_bypasses = 0
        return self._queue.pop(0)

    def _scheduler_loop(self) -> Generator:
        while True:
            yield self._wakeup.get()
            if not self._queue:
                continue
            request = self._pick()
            self.queue_wait.observe(self.env.now - request.submitted_at)
            if request.kernel != self.loaded:
                registration = self._kernels[request.kernel]
                try:
                    yield self.env.process(
                        self.driver.reconfigure_app(
                            registration.bitstream,
                            self.vfpga_id,
                            registration.factory(),
                            cached=self.cached_bitstreams,
                        )
                    )
                except Exception as exc:
                    # A reconfiguration that exhausted the driver's retries
                    # fails only this request; the loop keeps serving (the
                    # region still holds the last-good kernel, if any).
                    self.reconfig_failures += 1
                    request.done.fail(exc)
                    continue
                self.loaded = request.kernel
                self.loaded_app = self.driver.shell.vfpgas[self.vfpga_id].app
                self.reconfigurations += 1
            else:
                self.affinity_hits += 1
            try:
                result = yield self.env.process(request.body(self.loaded_app))
            except Exception as exc:  # surface failures to the submitter
                request.done.fail(exc)
            else:
                self.requests_served += 1
                request.done.succeed(result)

    # ------------------------------------------------------------ telemetry

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Fold this scheduler's counters into a card-level registry.

        Additive (``inc``/``merge``) so several schedulers — one per
        vFPGA region — aggregate into one ``scheduler`` domain.
        """
        registry.counter("scheduler.reconfigurations").inc(self.reconfigurations)
        registry.counter("scheduler.requests_served").inc(self.requests_served)
        registry.counter("scheduler.reconfig_failures").inc(self.reconfig_failures)
        registry.counter("scheduler.affinity_hits").inc(self.affinity_hits)
        depth = registry.gauge("scheduler.queue_depth")
        depth.add(len(self._queue))
        depth.high_water = max(depth.high_water, self.queue_depth_high_water)
        registry.histogram(
            "scheduler.queue_wait_ns", self.queue_wait.bounds
        ).merge(self.queue_wait)
