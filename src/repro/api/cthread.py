"""cThreads: the user-facing software API (paper §7.3, Code 1).

A :class:`CThread` corresponds to one software thread bound to a vFPGA.
Multiple cThreads can share the same vFPGA pipeline (hardware
multi-threading): each is assigned a distinct parallel stream index, and
the hardware differentiates requests by the AXI TID.

Host-side calls that touch the card (CSR access, invoke) are generators
running in simulated time; pure CPU-side calls (buffer fill) are plain
methods.
"""

from __future__ import annotations

import itertools
from typing import Generator, Iterable, List, Optional

from ..core.interfaces import (
    CompletionEntry,
    Descriptor,
    LocalSg,
    Oper,
    RdmaSg,
    SgEntry,
    StreamType,
)
from ..driver.driver import Driver, ProcessContext
from ..driver.errors import RingFullError
from ..driver.ringbuf import DEFAULT_RING_SLOTS, MemoryRegion, RingOp, RingState
from ..health.errors import DecoupledError, QuarantinedError
from ..mem.allocator import Allocation, AllocType
from ..sim.engine import AnyOf, Environment

__all__ = ["CThread"]

#: PCIe MMIO latencies for user-space BAR access (kernel bypassed).
CSR_WRITE_NS = 120.0
CSR_READ_NS = 900.0
#: Completion-polling interval when writeback is disabled.
POLL_INTERVAL_NS = 1_000.0

_wr_ids = itertools.count(1)


class CThread:
    """One software thread executing against one vFPGA."""

    def __init__(
        self,
        driver: Driver,
        vfpga_id: int,
        pid: int,
        stream_dest: int = 0,
    ):
        self.driver = driver
        self.env: Environment = driver.env
        self.vfpga_id = vfpga_id
        self.pid = pid
        #: Which parallel stream this thread's data uses (the TID).
        self.stream_dest = stream_dest
        self.ctx: ProcessContext = driver.open(pid, vfpga_id)
        self._vfpga = driver.shell.vfpgas[vfpga_id]

    @classmethod
    def attach(cls, driver: Driver, pid: int) -> "CThread":
        """Bind a cThread to an *already registered* process context —
        the reattach after a live migration restored the pid on the
        destination driver (a fresh construction would re-``open`` and
        fail with "already registered")."""
        ctx = driver.processes.get(pid)
        if ctx is None:
            raise ValueError(f"pid {pid} not registered with the driver")
        thread = cls.__new__(cls)
        thread.driver = driver
        thread.env = driver.env
        thread.vfpga_id = ctx.vfpga_id
        thread.pid = pid
        thread.stream_dest = 0
        thread.ctx = ctx
        thread._vfpga = driver.shell.vfpgas[ctx.vfpga_id]
        return thread

    # ---------------------------------------------------------------- memory

    def get_mem(self, length: int, alloc_type: AllocType = AllocType.HPF) -> Generator:
        """Allocate a mapped buffer; adds its pages to the TLB (Code 1)."""
        alloc = yield self.env.process(self.driver.get_mem(self.pid, length, alloc_type))
        return alloc

    def free_mem(self, alloc: Allocation) -> None:
        self.driver.free_mem(self.pid, alloc)

    def gpu_alloc(self, length: int) -> Generator:
        """Allocate a GPU-resident SVM buffer: vFPGA accesses go P2P."""
        alloc = yield self.env.process(self.driver.gpu_alloc(self.pid, length))
        return alloc

    def gpu_write_buffer(self, vaddr: int, data: bytes) -> None:
        """cudaMemcpy-style host upload into GPU memory (untimed)."""
        self.driver.gpu_write_buffer(self.pid, vaddr, data)

    def gpu_read_buffer(self, vaddr: int, length: int) -> bytes:
        return self.driver.gpu_read_buffer(self.pid, vaddr, length)

    def write_buffer(self, vaddr: int, data: bytes) -> None:
        """CPU store into a mapped buffer (host-side, untimed)."""
        self.driver.write_buffer(self.pid, vaddr, data)

    def read_buffer(self, vaddr: int, length: int) -> bytes:
        return self.driver.read_buffer(self.pid, vaddr, length)

    # ------------------------------------------------------------------- CSR

    def set_csr(self, value: int, index: int) -> Generator:
        """Write a control register (user-space BAR mapping)."""
        yield self.env.timeout(CSR_WRITE_NS)
        self._vfpga.csr_write(index, value)

    def get_csr(self, index: int) -> Generator:
        yield self.env.timeout(CSR_READ_NS)
        return self._vfpga.csr_read(index)

    # ------------------------------------------------------- rings + MRs

    def setup_rings(self, slots: int = DEFAULT_RING_SLOTS) -> RingState:
        """Arm the batched command/completion rings for this thread."""
        return self.driver.setup_rings(self.pid, slots)

    def register_mr(
        self, vaddr: int, length: int, writable: bool = True
    ) -> Generator:
        """Register (and TLB-pin) a memory region; returns the MR whose
        ``key`` ring operations use instead of raw virtual addresses."""
        mr = yield self.env.process(
            self.driver.register_mr(self.pid, vaddr, length, writable)
        )
        return mr

    def deregister_mr(self, mr: MemoryRegion) -> MemoryRegion:
        return self.driver.deregister_mr(self.pid, mr.key)

    def post_many(self, ops: Iterable[RingOp]) -> Generator:
        """Submit a batch of ring operations with doorbell semantics.

        Slots are filled back-to-back (host-memory stores, untimed);
        each doorbell is **one** CSR write regardless of how many slots
        it drains, and each drained batch completes with **one** event
        carrying all its completion entries — this is where the ring
        path beats ``invoke()``'s per-call ioctl on sim events per
        request.  A full ring forces an early doorbell for the slots so
        far (a ``ring.full_stalls`` occurrence), then posting resumes.
        Returns every completion entry in post order.
        """
        batches = []
        for op in ops:
            try:
                self.driver.ring_post(self.pid, op)
            except RingFullError:
                batches.append((yield from self._ring_doorbell()))
                self.driver.ring_post(self.pid, op)
        batches.append((yield from self._ring_doorbell()))
        entries: List[CompletionEntry] = []
        for batch in batches:
            entries.extend((yield batch))
        return entries

    def _ring_doorbell(self) -> Generator:
        """One doorbell MMIO write; re-rings if the write was dropped."""
        while True:
            yield self.env.timeout(CSR_WRITE_NS)
            batch = self.driver.ring_doorbell(self.pid)
            if batch is not None:
                return batch
            # The ring.doorbell_drop fault ate the MMIO write: the slots
            # are still pending, so back off one poll interval and ring
            # again (what the real driver's doorbell timeout does).
            yield self.env.timeout(POLL_INTERVAL_NS)

    # ------------------------------------------------------------ interrupts

    def wait_interrupt(self) -> Generator:
        """Block on the eventfd until the vFPGA raises a user interrupt."""
        event = yield self.ctx.interrupts.get()
        return event  # (timestamp_ns, value)

    # ---------------------------------------------------------------- invoke

    def invoke(
        self,
        oper: Oper,
        sg: SgEntry,
        last: bool = True,
        timeout_ns: Optional[float] = None,
    ) -> Generator:
        """Launch a hardware operation and wait for its completion.

        With ``timeout_ns`` set, a stuck operation returns a
        :class:`CompletionEntry` with ``status == "timeout"`` instead of
        blocking forever; the default (``None``) waits indefinitely.

        Invoking against a region under recovery fails fast with a typed
        error instead of queuing work the reset would wipe anyway.
        """
        region = self.driver.shell.vfpgas[self.vfpga_id]
        if region.quarantined:
            raise QuarantinedError(self.vfpga_id)
        if region.decoupled:
            raise DecoupledError(self.vfpga_id)
        if oper is Oper.LOCAL_TRANSFER:
            return (yield from self._local_transfer(sg.local, timeout_ns))
        elif oper is Oper.LOCAL_READ:
            return (yield from self._local_read(sg.local, timeout_ns))
        elif oper is Oper.LOCAL_WRITE:
            return (yield from self._local_write(sg.local, timeout_ns))
        elif oper is Oper.LOCAL_OFFLOAD:
            yield self.env.process(
                self.driver.offload(self.pid, sg.local.src_addr, sg.local.src_len)
            )
        elif oper is Oper.LOCAL_SYNC:
            yield self.env.process(
                self.driver.sync(self.pid, sg.local.src_addr, sg.local.src_len)
            )
        elif oper is Oper.REMOTE_RDMA_WRITE:
            return (yield from self._rdma(sg.rdma, write=True, timeout_ns=timeout_ns))
        elif oper is Oper.REMOTE_RDMA_READ:
            return (yield from self._rdma(sg.rdma, write=False, timeout_ns=timeout_ns))
        elif oper is Oper.NOOP:
            yield self.env.timeout(0)
        else:
            raise ValueError(f"unsupported operation {oper}")

    def invoke_async(self, oper: Oper, sg: SgEntry):
        """Fire-and-forget variant; returns the spawned process."""
        return self.env.process(self.invoke(oper, sg))

    # -------------------------------------------------------------- internals

    def _descriptor(self, vaddr: int, length: int, stream: StreamType, dest: int, wr_id: int) -> Descriptor:
        return Descriptor(
            vfpga_id=self.vfpga_id,
            pid=self.pid,
            vaddr=vaddr,
            length=length,
            stream=stream,
            dest=dest,
            wr_id=wr_id,
        )

    def _writeback_enabled(self) -> bool:
        return self.driver.shell.config.services.mover.writeback

    def _timeout_entry(self, write: bool, wr_id: int, stream: StreamType) -> CompletionEntry:
        """Give up on a completion: deregister it and report the error."""
        self.ctx.forget(write, wr_id)
        self.driver.invoke_timeouts += 1
        return CompletionEntry(
            vfpga_id=self.vfpga_id,
            pid=self.pid,
            wr_id=wr_id,
            length=0,
            stream=stream,
            dest=self.stream_dest,
            timestamp_ns=self.env.now,
            status="timeout",
        )

    def _await_completion(
        self,
        event,
        write: bool,
        wr_id: int,
        stream: StreamType,
        timeout_ns: Optional[float] = None,
    ) -> Generator:
        """Writeback mode: sleep until the driver resolves the completion
        event.  Polling mode: spin on MMIO until it resolved.  Either way
        a ``timeout_ns`` deadline yields an error completion, not a hang."""
        if self._writeback_enabled():
            if timeout_ns is None:
                entry = yield event
                return entry
            yield AnyOf(self.env, [event, self.env.timeout(timeout_ns)])
            if event.triggered:
                return event.value
            return self._timeout_entry(write, wr_id, stream)
        deadline = None if timeout_ns is None else self.env.now + timeout_ns
        while not event.triggered:
            if deadline is not None and self.env.now >= deadline:
                return self._timeout_entry(write, wr_id, stream)
            yield self.env.timeout(POLL_INTERVAL_NS + CSR_READ_NS)
        if not event.ok:
            raise event.value  # e.g. RecoveredError from a region reset
        return event.value

    def _local_transfer(self, sg: LocalSg, timeout_ns: Optional[float] = None) -> Generator:
        """Read src into the kernel, collect kernel output into dst."""
        wr_id = next(_wr_ids)
        done = self.ctx.expect(self.env, write=True, wr_id=wr_id)
        self.driver.post_descriptor(
            self._descriptor(sg.src_addr, sg.src_len, sg.src_stream,
                             sg.src_dest or self.stream_dest, wr_id),
            write=False,
        )
        self.driver.post_descriptor(
            self._descriptor(sg.dst_addr, sg.dst_len, sg.dst_stream,
                             sg.dst_dest or self.stream_dest, wr_id),
            write=True,
        )
        return (yield from self._await_completion(
            done, True, wr_id, sg.dst_stream, timeout_ns
        ))

    def _local_read(self, sg: LocalSg, timeout_ns: Optional[float] = None) -> Generator:
        wr_id = next(_wr_ids)
        done = self.ctx.expect(self.env, write=False, wr_id=wr_id)
        self.driver.post_descriptor(
            self._descriptor(sg.src_addr, sg.src_len, sg.src_stream,
                             sg.src_dest or self.stream_dest, wr_id),
            write=False,
        )
        return (yield from self._await_completion(
            done, False, wr_id, sg.src_stream, timeout_ns
        ))

    def _local_write(self, sg: LocalSg, timeout_ns: Optional[float] = None) -> Generator:
        wr_id = next(_wr_ids)
        done = self.ctx.expect(self.env, write=True, wr_id=wr_id)
        self.driver.post_descriptor(
            self._descriptor(sg.dst_addr, sg.dst_len, sg.dst_stream,
                             sg.dst_dest or self.stream_dest, wr_id),
            write=True,
        )
        return (yield from self._await_completion(
            done, True, wr_id, sg.dst_stream, timeout_ns
        ))

    def _rdma(self, sg: RdmaSg, write: bool, timeout_ns: Optional[float] = None) -> Generator:
        stack = self.driver.shell.dynamic.rdma
        if stack is None:
            raise ValueError("shell has no RDMA service")
        verb = stack.rdma_write if write else stack.rdma_read
        wr_id = next(_wr_ids)
        proc = self.env.process(
            verb(sg.qpn, sg.local_addr, sg.remote_addr, sg.len, wr_id=wr_id)
        )
        if timeout_ns is None:
            yield proc
            return None
        yield AnyOf(self.env, [proc, self.env.timeout(timeout_ns)])
        if not proc.triggered:
            # Abort the stuck verb; defuse so the interrupt never
            # propagates out of the simulation as an unhandled failure.
            proc.defuse()
            proc.interrupt("invoke timeout")
            return self._timeout_entry(write, wr_id, StreamType.NET)
        return None

    # ----------------------------------------------------------------- RDMA

    def create_qp(self, qpn: int, psn: int = 0) -> "object":
        """Create a QP owned by this thread; binds it to this MMU context."""
        stack = self.driver.shell.dynamic.rdma
        if stack is None:
            raise ValueError("shell has no RDMA service")
        qp = stack.create_qp(qpn, psn=psn)
        self.driver.bind_qp(self.pid, qpn)
        return qp

    # ---------------------------------------------------------------- teardown

    def close(self) -> None:
        """Release the driver context.

        Closing mid-batch is safe: the driver fails every pending
        completion and in-flight ring batch with a typed
        :class:`~repro.driver.errors.ProcessClosedError` before tearing
        the mappings down, so concurrent invokes/post_many callers see an
        error instead of parking forever.
        """
        self.driver.close(self.pid)
