"""Software API: cThreads, reconfiguration handles, app scheduling."""

from .crcnfg import CRcnfg
from .cthread import CThread
from .scheduler import AppScheduler, KernelRegistration, SchedulerError

__all__ = ["CThread", "CRcnfg", "AppScheduler", "KernelRegistration", "SchedulerError"]
