"""AXI4-Stream channel model with ready/valid back-pressure.

An :class:`AxiStream` behaves like the ready/valid handshake of a real AXI
stream: a sender occupies the bus for the flit's beat count, and is blocked
when the downstream FIFO is full (deasserted ``tready``), which is how
back-pressure propagates through the shell and, via the credit system, is
contained to the offending vFPGA.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.clock import FABRIC_CLOCK, Clock
from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from .types import STREAM_WIDTH_BYTES, Flit

__all__ = ["AxiStream"]


class AxiStream:
    """A point-to-point AXI4-Stream link.

    Parameters
    ----------
    depth_flits:
        FIFO depth in flits.  A full FIFO blocks the sender (back-pressure).
    width_bytes:
        Bus width; transmission occupies ``flit.beats(width)`` cycles.
    clock:
        Clock domain the bus runs in.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "axis",
        depth_flits: int = 16,
        width_bytes: int = STREAM_WIDTH_BYTES,
        clock: Clock = FABRIC_CLOCK,
    ):
        self.env = env
        self.name = name
        self.width_bytes = width_bytes
        self.clock = clock
        self._fifo = Store(env, capacity=depth_flits)
        self._bus = Resource(env, capacity=1)
        self.bytes_sent = 0
        self.flits_sent = 0

    # -- producer side ----------------------------------------------------

    def send(self, flit: Flit) -> Generator:
        """Transmit one flit; holds the bus for its beat count.

        Usage from a process: ``yield from stream.send(flit)``.
        """
        grant = self._bus.request()
        yield grant
        try:
            yield self.env.timeout(self.clock.cycles_to_ns(flit.beats(self.width_bytes)))
            yield self._fifo.put(flit)
            self.bytes_sent += flit.length
            self.flits_sent += 1
        finally:
            self._bus.release(grant)

    def send_bytes(
        self,
        data: bytes,
        tid: int = 0,
        tdest: int = 0,
        chunk: Optional[int] = None,
    ) -> Generator:
        """Split a byte payload into flits and send them all."""
        chunk = chunk or len(data)
        offset = 0
        while offset < len(data):
            piece = data[offset : offset + chunk]
            offset += len(piece)
            flit = Flit(
                length=len(piece),
                data=piece,
                tid=tid,
                tdest=tdest,
                last=offset >= len(data),
            )
            yield from self.send(flit)

    # -- consumer side ----------------------------------------------------

    def recv(self) -> Generator:
        """Receive one flit: ``flit = yield from stream.recv()``."""
        flit = yield self._fifo.get()
        return flit

    def recv_message(self) -> Generator:
        """Collect flits until ``last`` and return the assembled payload."""
        parts = []
        total = 0
        tid = 0
        while True:
            flit = yield self._fifo.get()
            tid = flit.tid
            total += flit.length
            if flit.data is not None:
                parts.append(flit.data)
            if flit.last:
                break
        data = b"".join(parts) if parts else None
        return Flit(length=total, data=data, tid=tid, last=True)

    def try_recv(self) -> Optional[Flit]:
        return self._fifo.try_get()

    def reset(self) -> int:
        """Wipe the FIFO (region hot-reset); returns flits discarded."""
        return self._fifo.clear()

    @property
    def occupancy(self) -> int:
        return len(self._fifo)
