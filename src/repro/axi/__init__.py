"""AXI channel models: AXI4-Stream data paths and AXI4-Lite control."""

from .lite import AxiLite, RegisterFile
from .stream import AxiStream
from .types import STREAM_WIDTH_BYTES, Flit

__all__ = ["AxiStream", "AxiLite", "RegisterFile", "Flit", "STREAM_WIDTH_BYTES"]
