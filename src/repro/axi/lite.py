"""AXI4-Lite register bus model.

Used for the vFPGA control bus and shell-control BAR: single-word
memory-mapped reads and writes with a fixed round-trip latency.  On the real
system this path is a PCIe BAR access from user space (paper §7.1), so the
default latency models a PCIe MMIO round trip rather than an on-chip one.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from ..sim.engine import Environment

__all__ = ["AxiLite", "RegisterFile"]

#: PCIe MMIO round-trip latency (~1 µs read, writes posted and cheaper).
MMIO_READ_LATENCY_NS = 900.0
MMIO_WRITE_LATENCY_NS = 120.0


class RegisterFile:
    """A bank of 64-bit control/status registers with optional hooks.

    Hardware components register read/write hooks to give registers live
    behaviour (e.g. a ``start`` bit kicking a kernel).
    """

    def __init__(self, name: str = "regs", size: int = 64):
        self.name = name
        self.size = size
        self._values: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register {index} outside file of size {self.size}")

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self._values[index] = value & 0xFFFFFFFFFFFFFFFF
        hook = self._write_hooks.get(index)
        if hook is not None:
            hook(self._values[index])

    def read(self, index: int) -> int:
        self._check(index)
        hook = self._read_hooks.get(index)
        if hook is not None:
            return hook() & 0xFFFFFFFFFFFFFFFF
        return self._values.get(index, 0)

    def on_write(self, index: int, hook: Callable[[int], None]) -> None:
        self._check(index)
        self._write_hooks[index] = hook

    def on_read(self, index: int, hook: Callable[[], int]) -> None:
        self._check(index)
        self._read_hooks[index] = hook

    def snapshot(self) -> Dict[int, int]:
        """Stored register values, index-sorted (checkpoint capture).

        Read hooks are *live* hardware state, not stored words, so they
        are deliberately not evaluated here; a restore replays the stored
        values through :meth:`write` so write hooks rebuild that state.
        """
        return {index: self._values[index] for index in sorted(self._values)}


class AxiLite:
    """Timed access port to a :class:`RegisterFile`."""

    def __init__(
        self,
        env: Environment,
        regs: Optional[RegisterFile] = None,
        read_latency_ns: float = MMIO_READ_LATENCY_NS,
        write_latency_ns: float = MMIO_WRITE_LATENCY_NS,
    ):
        self.env = env
        self.regs = regs if regs is not None else RegisterFile()
        self.read_latency_ns = read_latency_ns
        self.write_latency_ns = write_latency_ns

    def write(self, index: int, value: int) -> Generator:
        yield self.env.timeout(self.write_latency_ns)
        self.regs.write(index, value)

    def read(self, index: int) -> Generator:
        yield self.env.timeout(self.read_latency_ns)
        return self.regs.read(index)

    # Untimed variants for host software that sits outside simulated time.
    def write_now(self, index: int, value: int) -> None:
        self.regs.write(index, value)

    def read_now(self, index: int) -> int:
        return self.regs.read(index)
