"""Common AXI data types.

To keep the simulation fast we do not model individual 512-bit beats as
events.  Instead streams carry :class:`Flit` objects — contiguous chunks of
up to one packet (4 KB by default, see :mod:`repro.core.packetizer`) — and
the channel models charge ``ceil(length / width)`` bus cycles per flit.
This is cycle-approximate: total cycles match a beat-level model exactly
for back-to-back transfers, which is the regime every benchmark runs in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Flit", "STREAM_WIDTH_BYTES"]

#: Data bus width of the shell's AXI4 streams (512 bits, paper §9.5).
STREAM_WIDTH_BYTES = 64


@dataclass
class Flit:
    """A chunk of data moving through an AXI4-Stream channel.

    ``data`` carries the functional payload when the producing component is
    functional (e.g. AES input text); timing-only producers leave it ``None``
    and just set ``length``.
    """

    length: int
    data: Optional[bytes] = None
    tid: int = 0
    tdest: int = 0
    last: bool = True
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != self.length:
            raise ValueError(
                f"flit length {self.length} != payload length {len(self.data)}"
            )
        if self.length <= 0:
            raise ValueError("flit length must be positive")

    def beats(self, width_bytes: int = STREAM_WIDTH_BYTES) -> int:
        """Number of bus beats this flit occupies."""
        return -(-self.length // width_bytes)
