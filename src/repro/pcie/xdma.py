"""AMD XDMA core model: the static layer's CPU-FPGA link (paper §5.1).

Provides the four channel groups the static layer exposes to the shell:

* **Shell control** — BAR-mapped register file (AXI4-Lite).
* **Host streaming channel** — direct host-memory <-> vFPGA data streams.
* **Migration channel** — bulk buffer moves between host memory and HBM.
* **Utility channel** — partial-bitstream download, completion writeback
  and MSI-X interrupt delivery.

Crucially (and unlike many shells), the XDMA descriptors can be issued from
the FPGA side too, which is what lets vFPGAs source their own DMA via the
send queues without host involvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Generator, List, Optional

from ..axi.lite import AxiLite, RegisterFile
from ..faults.plan import MSIX_LOSS
from ..mem.sparse import SparseMemory
from ..sim.engine import Environment
from .link import PcieLink, PcieLinkConfig

__all__ = ["Xdma", "XdmaConfig", "MsiVector", "Writeback"]

#: MSI-X delivery latency: PCIe message + kernel IRQ entry.
MSIX_LATENCY_NS = 2_000.0
#: Host-visible writeback counter update (posted write).
WRITEBACK_LATENCY_NS = 400.0


class MsiVector(Enum):
    """Interrupt sources multiplexed over MSI-X (paper §5.1)."""

    PAGE_FAULT = 0
    RECONFIG_DONE = 1
    TLB_INVALIDATION = 2
    USER = 3
    DMA_OFFLOAD = 4


@dataclass
class Writeback:
    """A host-memory completion counter (paper's writeback mechanism)."""

    name: str
    count: int = 0

    def bump(self) -> None:
        self.count += 1


@dataclass(frozen=True)
class XdmaConfig:
    link: PcieLinkConfig = PcieLinkConfig()
    host_memory_bytes: int = 64 * 1024 * 1024 * 1024  # 64 GB host DRAM


class Xdma:
    """The DMA bridge between host memory and the shell."""

    def __init__(self, env: Environment, config: XdmaConfig = XdmaConfig()):
        self.env = env
        self.config = config
        self.link = PcieLink(env, config.link)
        self.host_mem = SparseMemory(config.host_memory_bytes, name="host-dram")
        # BAR 0: shell control registers, memory-mapped over PCIe.
        self.bar0 = AxiLite(env, RegisterFile("bar0", size=4096))
        self._irq_handlers: Dict[MsiVector, List[Callable[[int], None]]] = {
            v: [] for v in MsiVector
        }
        self.writebacks: Dict[str, Writeback] = {}
        self.interrupts_raised = 0
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        self.interrupts_lost = 0
        #: Per-channel-group byte telemetry (the host streaming channel is
        #: already counted by the link's h2c/c2h totals).
        self.migration_bytes = 0
        self.bitstream_bytes = 0

    # -- host streaming + migration channels --------------------------------

    def read_host(self, paddr: int, length: int, overhead: bool = True) -> Generator:
        """DMA-read host memory (H2C direction); returns the bytes."""
        yield from self.link.h2c(length, overhead=overhead)
        return self.host_mem.read(paddr, length)

    def write_host(self, paddr: int, data: bytes, overhead: bool = True) -> Generator:
        """DMA-write host memory (C2H direction)."""
        yield from self.link.c2h(len(data), overhead=overhead)
        self.host_mem.write(paddr, data)

    def migrate(self, nbytes: int, to_card: bool) -> Generator:
        """Bulk buffer migration over the dedicated migration channel."""
        if to_card:
            yield from self.link.h2c(nbytes)
        else:
            yield from self.link.c2h(nbytes)
        self.migration_bytes += nbytes

    # -- utility channel -----------------------------------------------------

    def download_bitstream(self, nbytes: int) -> Generator:
        """Stream a partial bitstream from host memory (feeds the ICAP)."""
        yield from self.link.h2c(nbytes)
        self.bitstream_bytes += nbytes

    def writeback(self, name: str) -> Generator:
        """Update a host-mapped completion counter (avoids PCIe polling)."""
        wb = self.writebacks.setdefault(name, Writeback(name))
        yield self.env.timeout(WRITEBACK_LATENCY_NS)
        wb.bump()

    # -- interrupts ------------------------------------------------------------

    def on_interrupt(self, vector: MsiVector, handler: Callable[[int], None]) -> None:
        self._irq_handlers[vector].append(handler)

    def raise_msix(self, vector: MsiVector, value: int = 0) -> Generator:
        """Deliver an MSI-X interrupt to every registered handler."""
        yield self.env.timeout(MSIX_LATENCY_NS)
        if self.faults is not None and self.faults.fires(MSIX_LOSS, vector):
            # The MSI-X message write was lost in flight: no handler ever
            # runs.  Waiters must recover by timeout + status-register
            # polling (the driver's reconfiguration path does exactly that).
            self.interrupts_lost += 1
            return
        self.interrupts_raised += 1
        for handler in self._irq_handlers[vector]:
            handler(value)
