"""PCIe link bandwidth model.

The evaluated platform attaches the Alveo U55C over PCIe Gen3 x16.  The
paper reports ~12 GB/s of achievable host-memory bandwidth through the XDMA
core (§9.4), which is what the multi-tenant AES experiment saturates and
fairly shares.  The link is full duplex: host-to-card (H2C) and
card-to-host (C2H) directions are independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..faults.plan import PCIE_REPLAY
from ..sim.engine import Environment
from ..sim.resources import Resource

__all__ = ["PcieLinkConfig", "PcieLink"]


@dataclass(frozen=True)
class PcieLinkConfig:
    """Link speeds and per-descriptor overheads."""

    h2c_bandwidth: float = 12.0  # bytes/ns == GB/s (paper §9.4)
    c2h_bandwidth: float = 12.0
    descriptor_overhead_ns: float = 350.0  # DMA descriptor fetch + setup
    mmio_latency_ns: float = 900.0
    #: Data-link-layer replay penalty: a TLP that fails its LCRC is
    #: retransmitted from the replay buffer (ACK timeout + resend).
    replay_latency_ns: float = 1_000.0


class PcieLink:
    """Serialises DMA transfers per direction at the configured bandwidth.

    Transfers are admitted FIFO per direction; fairness between tenants is
    achieved above this layer by the shell's packetizer and round-robin
    interleaver, which keep individual occupancies to one packet.
    """

    def __init__(self, env: Environment, config: PcieLinkConfig = PcieLinkConfig()):
        self.env = env
        self.config = config
        self._h2c = Resource(env, capacity=1)
        self._c2h = Resource(env, capacity=1)
        self._directions = {"h2c": self._h2c, "c2h": self._c2h}
        self.h2c_bytes = 0
        self.c2h_bytes = 0
        self.h2c_transfers = 0
        self.c2h_transfers = 0
        #: Deepest occupancy seen per direction (holder + queued DMA
        #: descriptors) — the link-level analogue of credit telemetry.
        self.in_flight_high_water = {"h2c": 0, "c2h": 0}
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        self.replays = 0

    def in_flight(self, direction: str) -> int:
        """Transfers currently holding or queued for one direction."""
        resource = self._directions[direction]
        return len(resource.users) + len(resource._waiting)

    def _replay_penalty_ns(self, direction: str) -> float:
        """Link-layer fault check: a replayed TLP costs extra latency but
        the transfer still delivers intact data (LCRC catches the error)."""
        if self.faults is not None and self.faults.fires(PCIE_REPLAY, direction):
            self.replays += 1
            return self.config.replay_latency_ns
        return 0.0

    def _occupy(self, name: str, duration_ns: float) -> Generator:
        direction = self._directions[name]
        grant = direction.request()
        depth = self.in_flight(name)
        if depth > self.in_flight_high_water[name]:
            self.in_flight_high_water[name] = depth
        yield grant
        try:
            yield self.env.timeout(duration_ns)
        finally:
            direction.release(grant)

    def h2c(self, nbytes: int, overhead: bool = True) -> Generator:
        """Move ``nbytes`` from host memory to the card."""
        duration = nbytes / self.config.h2c_bandwidth
        if overhead:
            duration += self.config.descriptor_overhead_ns
        duration += self._replay_penalty_ns("h2c")
        yield from self._occupy("h2c", duration)
        self.h2c_bytes += nbytes
        self.h2c_transfers += 1

    def c2h(self, nbytes: int, overhead: bool = True) -> Generator:
        """Move ``nbytes`` from the card to host memory."""
        duration = nbytes / self.config.c2h_bandwidth
        if overhead:
            duration += self.config.descriptor_overhead_ns
        duration += self._replay_penalty_ns("c2h")
        yield from self._occupy("c2h", duration)
        self.c2h_bytes += nbytes
        self.c2h_transfers += 1
