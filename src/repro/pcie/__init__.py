"""PCIe substrate: link bandwidth model and the XDMA bridge."""

from .link import PcieLink, PcieLinkConfig
from .xdma import MsiVector, Writeback, Xdma, XdmaConfig

__all__ = ["PcieLink", "PcieLinkConfig", "Xdma", "XdmaConfig", "MsiVector", "Writeback"]
