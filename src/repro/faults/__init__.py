"""Unified, deterministic fault injection for every shell hardware layer.

Usage::

    from repro.faults import FaultPlan, FaultRule, FaultInjector, NET_DROP

    plan = FaultPlan(seed=7, rules=[FaultRule(site=NET_DROP, probability=0.05)])
    injector = FaultInjector(plan).arm(shell=shell, switch=switch)
    ...run the workload...
    injector.summary()  # per-site events/fires

See :mod:`repro.faults.plan` for the site catalogue and determinism
contract, and the "Fault injection & reliability" section of DESIGN.md
for the recovery matrix.
"""

from .injector import FaultInjector
from .plan import (
    APP_HANG,
    APP_WEDGE_CREDIT,
    FAULT_SITE_DOCS,
    FAULT_SITES,
    UnknownFaultSiteError,
    HBM_ECC_DOUBLE,
    HBM_ECC_SINGLE,
    ICAP_CRC,
    LINK_FLAP,
    MSIX_LOSS,
    NET_CORRUPT,
    NET_DROP,
    NET_DUPLICATE,
    NET_ECN_SUPPRESS,
    NET_PARTITION,
    NET_PAUSE_DROP,
    NET_REORDER,
    NODE_CRASH,
    PCIE_REPLAY,
    RING_DOORBELL_DROP,
    FaultPlan,
    FaultRule,
)
from .retry import RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "RetryPolicy",
    "FAULT_SITES",
    "FAULT_SITE_DOCS",
    "UnknownFaultSiteError",
    "NET_DROP",
    "NET_CORRUPT",
    "NET_DUPLICATE",
    "NET_REORDER",
    "PCIE_REPLAY",
    "HBM_ECC_SINGLE",
    "HBM_ECC_DOUBLE",
    "ICAP_CRC",
    "MSIX_LOSS",
    "APP_HANG",
    "APP_WEDGE_CREDIT",
    "NODE_CRASH",
    "LINK_FLAP",
    "NET_PARTITION",
    "NET_ECN_SUPPRESS",
    "NET_PAUSE_DROP",
    "RING_DOORBELL_DROP",
]
