"""Fault plans: *what* goes wrong, *where*, and — deterministically — *when*.

The paper evaluates Coyote v2 on real hardware, where links flap, HBM
takes ECC hits, partial bitstreams fail their CRC check and interrupts go
missing.  The simulation reproduces those behaviors through a single
seeded description: a :class:`FaultPlan` is a bag of :class:`FaultRule`\\ s,
one or more per *fault site* (a named injection point inside a hardware
model).  All randomness used to decide whether a site fires flows from
RNG substreams derived from ``(plan.seed, site, rule index)``, so a chaos
run is exactly reproducible from ``(seed, plan)`` and injection in one
domain never perturbs the draw sequence of another.

Sites (one per hardware domain the shell must survive):

==================  =====================================================
site                models
==================  =====================================================
``net.drop``        frame loss in the switch fabric
``net.corrupt``     bit errors on the wire (receiver FCS/ICRC discard)
``net.duplicate``   link-layer duplication (e.g. flaky cut-through relay)
``net.reorder``     adaptive-routing reordering (a frame takes a detour)
``pcie.replay``     PCIe link-layer errors recovered by DLLP replay
``hbm.ecc_single``  correctable single-bit ECC events in card memory
``hbm.ecc_double``  detected-uncorrectable double-bit ECC events
``icap.crc``        CRC mismatch while streaming a partial bitstream
``driver.msix``     an MSI-X interrupt message lost in flight
``ring.doorbell_drop``  a command-ring doorbell MMIO write lost in flight
``app.hang``        user logic wedges: a lane stops making forward progress
``app.wedge_credit``  user logic leaks a datapath credit per fire
``node.crash``      a whole node dies: port killed, every QP flushed
``link.flap``       a port's link drops and auto-recovers after a hold-off
``net.partition``   a port pair stops exchanging frames until healed
``net.ecn_suppress``  an owed ECN CE mark is silently skipped
``net.pause_drop``  a PFC pause frame is lost on its way upstream
==================  =====================================================

The two ``app.*`` sites model *misbehaving tenants* rather than hardware
faults: they fire inside the vFPGA's stream interface (each consumed
flit is one event, the context is the :class:`~repro.core.vfpga.VFpga`),
and exist to exercise the :mod:`repro.health` watchdog/recovery path.

The three cluster sites (``node.crash``, ``link.flap``, ``net.partition``)
fire per frame inside the switch — the same deterministic event stream as
the classic ``net.*`` sites — but their effect is *stateful*: a crash
stays down until :meth:`~repro.cluster.FpgaCluster.restore_node`, a flap
heals itself after :data:`~repro.net.switch.LINK_FLAP_HOLDOFF_NS`, and a
partition (the bidirectional pair keyed by the frame's src/dst ports)
persists until ``Switch.heal_partition``.  They exist to exercise the
cluster fault-tolerance path: :class:`~repro.health.ClusterMonitor`
detection and :class:`~repro.net.collectives.CollectiveGroup` abort and
rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Tuple

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FAULT_SITES",
    "FAULT_SITE_DOCS",
    "UnknownFaultSiteError",
    "NET_DROP",
    "NET_CORRUPT",
    "NET_DUPLICATE",
    "NET_REORDER",
    "PCIE_REPLAY",
    "HBM_ECC_SINGLE",
    "HBM_ECC_DOUBLE",
    "ICAP_CRC",
    "MSIX_LOSS",
    "RING_DOORBELL_DROP",
    "APP_HANG",
    "APP_WEDGE_CREDIT",
    "NODE_CRASH",
    "LINK_FLAP",
    "NET_PARTITION",
    "MIGRATE_TRANSFER_DROP",
    "NET_ECN_SUPPRESS",
    "NET_PAUSE_DROP",
]

NET_DROP = "net.drop"
NET_CORRUPT = "net.corrupt"
NET_DUPLICATE = "net.duplicate"
NET_REORDER = "net.reorder"
PCIE_REPLAY = "pcie.replay"
HBM_ECC_SINGLE = "hbm.ecc_single"
HBM_ECC_DOUBLE = "hbm.ecc_double"
ICAP_CRC = "icap.crc"
MSIX_LOSS = "driver.msix"
RING_DOORBELL_DROP = "ring.doorbell_drop"
APP_HANG = "app.hang"
APP_WEDGE_CREDIT = "app.wedge_credit"
NODE_CRASH = "node.crash"
LINK_FLAP = "link.flap"
NET_PARTITION = "net.partition"
MIGRATE_TRANSFER_DROP = "migrate.transfer_drop"
NET_ECN_SUPPRESS = "net.ecn_suppress"
NET_PAUSE_DROP = "net.pause_drop"

#: The registry proper: ``site -> (owning model, effect when fired)``.
#: This single dict feeds three consumers that previously drifted apart:
#: validation (``FAULT_SITES``), the FLT001 static-analysis cross-check
#: (read via AST, never imported) and the generated table in DESIGN.md
#: (``python -m repro.analysis --write-fault-table DESIGN.md``).
FAULT_SITE_DOCS = {
    NET_DROP: ("net.switch.Switch", "frame discarded in the fabric"),
    NET_CORRUPT: (
        "net.switch.Switch",
        "bit error → receiver FCS/ICRC discard (counted as loss, never delivered)",
    ),
    NET_DUPLICATE: ("net.switch.Switch", "frame delivered twice, 50 ns apart"),
    NET_REORDER: (
        "net.switch.Switch",
        "frame takes an adaptive-routing detour and arrives late",
    ),
    PCIE_REPLAY: (
        "pcie.link.PcieLink",
        "link-layer replay: extra latency on the DMA, data intact",
    ),
    HBM_ECC_SINGLE: (
        "mem.hbm.HbmController",
        "corrected in-line; `ecc_corrected` counter only",
    ),
    HBM_ECC_DOUBLE: (
        "mem.hbm.HbmController",
        "uncorrectable: access retried at 2× latency, `ecc_uncorrected` counted",
    ),
    ICAP_CRC: ("core.reconfig.Icap", "programming aborts with `IcapCrcError`"),
    MSIX_LOSS: ("pcie.xdma.Xdma", "MSI-X interrupt lost; handlers never run"),
    RING_DOORBELL_DROP: (
        "driver.driver.Driver",
        "doorbell MMIO write lost: posted ring slots stay pending until software re-rings",
    ),
    APP_HANG: (
        "core.vfpga.VFpga",
        "user logic wedges: a consuming lane parks until recovery wipes the region",
    ),
    APP_WEDGE_CREDIT: (
        "core.vfpga.VFpga",
        "tenant leaks one read credit per fire (`Crediter.wedge`), wedging the datapath",
    ),
    NODE_CRASH: (
        "net.switch.Switch",
        "the frame's source node dies: port killed, its stack's QPs flushed; stays down until restored",
    ),
    LINK_FLAP: (
        "net.switch.Switch",
        "the frame's source port drops link; frames black-hole until the hold-off expires",
    ),
    NET_PARTITION: (
        "net.switch.Switch",
        "the frame's src/dst port pair stops exchanging frames bidirectionally until healed",
    ),
    MIGRATE_TRANSFER_DROP: (
        "migrate.transfer.MigrationChannel",
        "a checkpoint chunk is dropped in flight; the sender retries with backoff and falls back to the source node when retries exhaust",
    ),
    NET_ECN_SUPPRESS: (
        "net.switch.Switch",
        "a CE mark the egress queue owed this ECT frame is suppressed; the DCQCN loop sees no congestion signal",
    ),
    NET_PAUSE_DROP: (
        "net.switch.Switch",
        "a PFC XOFF pause frame is lost on its way upstream; the sender keeps transmitting into the full buffer",
    ),
}

#: Every injection point the hardware models expose.
FAULT_SITES = frozenset(FAULT_SITE_DOCS)


class UnknownFaultSiteError(ValueError):
    """A fault site outside :data:`FAULT_SITES` — raised identically at
    plan time (:class:`FaultRule`), arm time (``FaultInjector``) and
    fire time, so a typo can never pick its moment to surface."""

    def __init__(self, site: str):
        super().__init__(
            f"unknown fault site {site!r}; known: {sorted(FAULT_SITES)}"
        )
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One injection rule at one site.

    A rule sees every event at its site (each frame through the switch,
    each DMA transfer, each ICAP program, ...).  Events the optional
    ``match`` predicate rejects are invisible to it.  Of the events it
    does see, the rule fires on the 0-based indices listed in
    ``at_events`` (deterministic, targeted injection — what the protocol
    regression tests use) and, independently, on each event with
    ``probability`` (statistical chaos — what the property tests use).
    ``max_fires`` caps the total.
    """

    site: str
    probability: float = 0.0
    at_events: Tuple[int, ...] = ()
    max_fires: Optional[int] = None
    match: Optional[Callable[[Any], bool]] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise UnknownFaultSiteError(self.site)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability!r} outside [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")
        object.__setattr__(self, "at_events", tuple(self.at_events))

    def describe(self) -> str:
        parts = [f"site={self.site!r}"]
        if self.probability:
            parts.append(f"probability={self.probability}")
        if self.at_events:
            parts.append(f"at_events={self.at_events}")
        if self.max_fires is not None:
            parts.append(f"max_fires={self.max_fires}")
        if self.match is not None:
            parts.append("match=<predicate>")
        return f"FaultRule({', '.join(parts)})"

    __repr__ = describe


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable set of fault rules.

    The plan owns the seed; :class:`repro.faults.FaultInjector` derives
    every per-rule RNG from it.  ``describe()`` round-trips enough to
    re-run a failing chaos case by hand (probability/at_events rules are
    printed verbatim; ``match`` predicates are user code and shown as
    placeholders).
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def build(cls, seed: int = 0, **site_probabilities: float) -> "FaultPlan":
        """Shorthand: ``FaultPlan.build(7, net_drop=0.05, pcie_replay=0.01)``
        maps keyword names to site names (underscores become dots)."""
        rules = tuple(
            FaultRule(site=key.replace("_", ".", 1), probability=probability)
            for key, probability in site_probabilities.items()
        )
        return cls(seed=seed, rules=rules)

    def sites(self) -> frozenset:
        return frozenset(rule.site for rule in self.rules)

    def for_site(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    def describe(self) -> str:
        body = ", ".join(rule.describe() for rule in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{body}])"

    __repr__ = describe
