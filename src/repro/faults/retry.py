"""Retry with exponential backoff: the driver's reliability response.

The real driver retries transient hardware failures (a partial bitstream
that failed its CRC check, a lost interrupt) with capped exponential
backoff before surfacing an error to user space.  One policy object keeps
the knobs in one place for the driver and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * 2**(attempt-1)``, up to ``cap``."""

    max_retries: int = 3
    base_backoff_ns: float = 100_000.0  # 100 us
    backoff_cap_ns: float = 10_000_000.0  # 10 ms

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_ns < 0 or self.backoff_cap_ns < self.base_backoff_ns:
            raise ValueError("need 0 <= base_backoff_ns <= backoff_cap_ns")

    def backoff_ns(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_backoff_ns * (2.0 ** (attempt - 1)), self.backoff_cap_ns)

    def sleep(self, env, attempt: int) -> Generator:
        """``yield from policy.sleep(env, attempt)`` inside a process."""
        yield env.timeout(self.backoff_ns(attempt))
