"""The fault injector: a plan armed against live hardware models.

Every injectable model (switch, PCIe link, XDMA, HBM controller, ICAP)
carries a ``faults`` attribute, ``None`` by default.  With no injector
armed a model takes zero extra branches and draws no random numbers, so
the fault-free simulation is bit-identical to a build without this
subsystem.  Arming sets the attribute; the model then asks
``self.faults.fires(SITE, context)`` at each injection point.

Determinism contract: each rule draws from its own RNG substream seeded
by ``(plan.seed, site, rule index)`` (a stable CRC-32 derivation — no
``hash()``, which is salted per process).  Two runs with the same
``(seed, plan)`` therefore fire at exactly the same events, regardless of
how many other sites are armed or how the simulation interleaves.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional

from .plan import FAULT_SITES, FaultPlan, FaultRule, UnknownFaultSiteError

__all__ = ["FaultInjector"]


def _derive_rng(seed: int, site: str, index: int) -> random.Random:
    """A stable per-rule substream: CRC-32 of the rule's identity mixed
    with the plan seed (Python's ``hash`` is salted, so it cannot be used
    for cross-process reproducibility)."""
    key = zlib.crc32(f"{site}#{index}".encode("ascii"))
    return random.Random(((seed & 0xFFFFFFFF) << 32) | key)


class _RuleState:
    """Per-rule mutable state: its event counter, fire count and RNG."""

    __slots__ = ("rule", "rng", "events", "fired")

    def __init__(self, rule: FaultRule, rng: random.Random):
        self.rule = rule
        self.rng = rng
        self.events = 0
        self.fired = 0

    def consider(self, context: Any) -> bool:
        rule = self.rule
        if rule.match is not None and not rule.match(context):
            return False
        index = self.events
        self.events += 1
        if rule.max_fires is not None and self.fired >= rule.max_fires:
            return False
        hit = index in rule.at_events
        # The probability draw happens on every matching event so the
        # substream position depends only on the event sequence, never on
        # whether earlier events fired.
        if rule.probability > 0.0 and self.rng.random() < rule.probability:
            hit = True
        if hit:
            self.fired += 1
        return hit


class FaultInjector:
    """Arms a :class:`FaultPlan` against shells, switches and clusters.

    Counters (``events``/``fires`` per site) feed ``card_report()`` and
    the optional :class:`~repro.sim.tracing.Tracer` records every fire,
    which is what the determinism regression test diffs.
    """

    def __init__(self, plan: FaultPlan, tracer=None):
        self.plan = plan
        self.tracer = tracer
        self.env = None  # bound on arm(); only needed for trace timestamps
        self._rules: Dict[str, List[_RuleState]] = {}
        for index, rule in enumerate(plan.rules):
            # Arm-time validation, same typed error as FaultRule's plan-time
            # check: a plan built around the dataclass (replace()/mocks/
            # hand-rolled rule objects) still cannot arm a typo'd site.
            if rule.site not in FAULT_SITES:
                raise UnknownFaultSiteError(rule.site)
            state = _RuleState(rule, _derive_rng(plan.seed, rule.site, index))
            self._rules.setdefault(rule.site, []).append(state)
        self.event_counts: Dict[str, int] = {site: 0 for site in self._rules}
        self.fire_counts: Dict[str, int] = {site: 0 for site in self._rules}

    # ------------------------------------------------------------ injection

    def fires(self, site: str, context: Any = None) -> bool:
        """Does this site's fault fire for the current event?"""
        states = self._rules.get(site)
        if not states:
            if site not in FAULT_SITES:
                raise UnknownFaultSiteError(site)
            return False
        self.event_counts[site] += 1
        fired = False
        for state in states:
            if state.consider(context):
                fired = True
        if fired:
            self.fire_counts[site] += 1
            if self.tracer is not None:
                now = self.env.now if self.env is not None else 0.0
                self.tracer.emit(now, "faults", site, self.event_counts[site] - 1)
        return fired

    # --------------------------------------------------------------- wiring

    def arm(self, shell=None, switch=None) -> "FaultInjector":
        """Attach this injector to a shell's hardware models and/or a
        switch fabric.  Idempotent; call again after a shell swap."""
        if switch is not None:
            switch.faults = self
            if self.env is None:
                self.env = switch.env
        if shell is not None:
            self.env = shell.env
            shell.bind_faults(self)
        return self

    def arm_cluster(self, cluster) -> "FaultInjector":
        """Arm every node of an :class:`repro.cluster.FpgaCluster` plus
        its shared switch."""
        self.arm(switch=cluster.switch)
        for node in cluster.nodes:
            self.arm(shell=node.shell)
        return self

    # ---------------------------------------------------------- observability

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{events, fires}`` — the injector's own ledger."""
        return {
            site: {"events": self.event_counts[site], "fires": self.fire_counts[site]}
            for site in sorted(self._rules)
        }

    def total_fires(self) -> int:
        return sum(self.fire_counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.plan.describe()}, fires={dict(self.fire_counts)})"
