"""Byte-exact PCAP (libpcap) file writer/reader.

The traffic-sniffer service (paper §8) syncs its HBM capture buffer to the
host, where "a software parser converts the raw packet recordings to a
default PCAP file for analysis with standard networking tools, such as
Wireshark".  This module implements that parser's output format: the
classic libpcap container (magic 0xa1b2c3d4, version 2.4, LINKTYPE_ETHERNET)
with microsecond timestamps.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["PcapWriter", "read_pcap", "PCAP_MAGIC", "LINKTYPE_ETHERNET"]

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured frame: timestamp (ns, simulated) and raw bytes."""

    timestamp_ns: float
    data: bytes


class PcapWriter:
    """Accumulates records and serialises a complete PCAP byte stream."""

    def __init__(self, snaplen: int = 65535):
        self.snaplen = snaplen
        self.records: List[PcapRecord] = []

    def add(self, timestamp_ns: float, frame: bytes) -> None:
        self.records.append(PcapRecord(timestamp_ns, frame))

    def to_bytes(self) -> bytes:
        out = [
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # thiszone
                0,  # sigfigs
                self.snaplen,
                LINKTYPE_ETHERNET,
            )
        ]
        for record in self.records:
            total_us, rem_ns = divmod(int(record.timestamp_ns), 1000)
            ts_sec, ts_usec = divmod(total_us, 1_000_000)
            captured = record.data[: self.snaplen]
            out.append(
                _RECORD_HEADER.pack(ts_sec, ts_usec, len(captured), len(record.data))
            )
            out.append(captured)
        return b"".join(out)

    def write(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())


def read_pcap(data: bytes) -> Tuple[dict, List[PcapRecord]]:
    """Parse a PCAP byte stream; returns (global header fields, records)."""
    if len(data) < _GLOBAL_HEADER.size:
        raise ValueError("truncated PCAP global header")
    magic, major, minor, zone, sigfigs, snaplen, linktype = _GLOBAL_HEADER.unpack_from(data)
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad PCAP magic {magic:#x}")
    header = {
        "version": (major, minor),
        "snaplen": snaplen,
        "linktype": linktype,
        "thiszone": zone,
        "sigfigs": sigfigs,
    }
    records = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            raise ValueError("truncated PCAP record header")
        ts_sec, ts_usec, incl_len, _orig_len = _RECORD_HEADER.unpack_from(data, offset)
        offset += _RECORD_HEADER.size
        if offset + incl_len > len(data):
            raise ValueError("truncated PCAP record body")
        frame = data[offset : offset + incl_len]
        offset += incl_len
        records.append(PcapRecord((ts_sec * 1_000_000 + ts_usec) * 1000.0, frame))
    return header, records
