"""A cut-through data-center switch connecting simulated 100G ports.

The paper's RDMA stack runs "over a switched network ... compatible with
commodity hardware"; experiments here connect two or more simulated FPGA
nodes (and, for tests, software peers) through this fabric.  Fault
injection goes through the unified :mod:`repro.faults` sites (loss,
corruption, duplication, reordering); the legacy ``drop_fn`` hook still
works but is deprecated.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Tuple

from ..faults.plan import (
    LINK_FLAP,
    NET_CORRUPT,
    NET_DROP,
    NET_DUPLICATE,
    NET_PARTITION,
    NET_REORDER,
    NODE_CRASH,
)
from ..sim.engine import Environment
from .cmac import Cmac
from .headers import MacAddress
from .packet import RocePacket

__all__ = ["Switch", "LINK_FLAP_HOLDOFF_NS"]

#: Typical ToR cut-through forwarding latency.
SWITCH_LATENCY_NS = 600.0
#: Extra path latency for a reordered frame (adaptive-routing detour):
#: long enough that back-to-back MTU frames overtake it.
REORDER_DETOUR_NS = 4 * SWITCH_LATENCY_NS
#: Gap between the original and its injected duplicate.
DUPLICATE_GAP_NS = 50.0
#: How long a flapped link black-holes frames before auto-recovering.
#: Chosen comfortably above the RDMA retransmit timeout so a flap always
#: costs at least one go-back-N round, but well below the retry budget
#: (``8 × 100 µs``) so a flap alone never escalates to a QP error.
LINK_FLAP_HOLDOFF_NS = 250_000.0


class Switch:
    """MAC-learning-free static switch: ports are registered explicitly."""

    def __init__(self, env: Environment, latency_ns: float = SWITCH_LATENCY_NS):
        self.env = env
        self.latency_ns = latency_ns
        self._ports: Dict[MacAddress, Cmac] = {}
        self._drop_fn: Optional[Callable[[RocePacket], bool]] = None
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        # Cluster fault state (all dict-keyed on MacAddress; stateful,
        # unlike the per-frame net.* sites).
        self._dead: Dict[MacAddress, bool] = {}
        self._link_down_until: Dict[MacAddress, float] = {}
        self._partitions: Dict[Tuple[MacAddress, MacAddress], bool] = {}
        #: Wired by :class:`repro.cluster.FpgaCluster`: invoked once when a
        #: ``node.crash`` fires, with the dying port's MAC.
        self.on_node_crash: Optional[Callable[[MacAddress], None]] = None
        self.forwarded = 0
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.unroutable = 0
        self.crashes = 0
        self.link_flaps = 0
        self.partitions_created = 0

    def counters(self) -> Dict[str, int]:
        """Telemetry snapshot of the fabric counters."""
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "unroutable": self.unroutable,
            "crashes": self.crashes,
            "link_flaps": self.link_flaps,
            "partitions": self.partitions_created,
        }

    @property
    def drop_fn(self) -> Optional[Callable[[RocePacket], bool]]:
        """Legacy fault hook: return True to drop the frame (deprecated)."""
        return self._drop_fn

    @drop_fn.setter
    def drop_fn(self, fn: Optional[Callable[[RocePacket], bool]]) -> None:
        if fn is not None:
            warnings.warn(
                "Switch.drop_fn is deprecated; arm a repro.faults.FaultPlan "
                "with a 'net.drop' FaultRule instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._drop_fn = fn

    def attach(self, mac: MacAddress, cmac: Cmac) -> None:
        if mac in self._ports:
            raise ValueError(f"port {mac!r} already attached")
        self._ports[mac] = cmac
        cmac.attach_wire(lambda pkt: self._ingress(pkt))

    def detach(self, mac: MacAddress) -> None:
        """Unplug a port (a shell reconfiguration swapping its CMAC)."""
        if self._ports.pop(mac, None) is None:
            raise ValueError(f"port {mac!r} is not attached")

    # ------------------------------------------------- cluster fault state

    @staticmethod
    def _pair(a: MacAddress, b: MacAddress) -> Tuple[MacAddress, MacAddress]:
        return (a, b) if a.value <= b.value else (b, a)

    def kill_port(self, mac: MacAddress) -> None:
        """Mark a port dead (node crash): frames from or to it black-hole.
        The port stays attached so :meth:`revive_port` is just a flag flip."""
        self._dead[mac] = True

    def revive_port(self, mac: MacAddress) -> None:
        self._dead.pop(mac, None)

    def is_dead(self, mac: MacAddress) -> bool:
        return mac in self._dead

    def partition(self, a: MacAddress, b: MacAddress) -> None:
        """Sever the (bidirectional) path between two ports until healed."""
        key = self._pair(a, b)
        if key not in self._partitions:
            self._partitions[key] = True
            self.partitions_created += 1

    def heal_partition(self, a: MacAddress, b: MacAddress) -> bool:
        """Restore a severed pair; returns True if one was actually healed."""
        return self._partitions.pop(self._pair(a, b), None) is not None

    def heal_all_partitions(self) -> int:
        healed = len(self._partitions)
        self._partitions.clear()
        return healed

    def is_partitioned(self, a: MacAddress, b: MacAddress) -> bool:
        return self._pair(a, b) in self._partitions

    def link_down(self, mac: MacAddress, duration_ns: float = LINK_FLAP_HOLDOFF_NS) -> None:
        """Drop a port's link; it auto-recovers once the hold-off expires."""
        until = self.env.now + duration_ns
        if self._link_down_until.get(mac, 0.0) < until:
            self._link_down_until[mac] = until

    def link_is_down(self, mac: MacAddress) -> bool:
        until = self._link_down_until.get(mac)
        if until is None:
            return False
        if self.env.now >= until:
            del self._link_down_until[mac]
            return False
        return True

    def _ingress(self, packet: RocePacket) -> None:
        if self._drop_fn is not None and self._drop_fn(packet):
            self.dropped += 1
            return
        src = packet.eth.src
        dst = packet.eth.dst
        # Standing cluster-fault state first: frames involving a dead
        # node, a downed link or a severed pair never reach the per-frame
        # chaos sites (their event streams only shift when cluster faults
        # are actually active, preserving the zero-overhead guarantee for
        # plans that don't arm them).
        if src in self._dead or dst in self._dead:
            self.dropped += 1
            return
        if self.link_is_down(src) or self.link_is_down(dst):
            self.dropped += 1
            return
        if self._pair(src, dst) in self._partitions:
            self.dropped += 1
            return
        delay = self.latency_ns
        copies = 1
        faults = self.faults
        if faults is not None:
            if faults.fires(NODE_CRASH, packet):
                self.crashes += 1
                self.kill_port(src)
                if self.on_node_crash is not None:
                    self.on_node_crash(src)
                self.dropped += 1
                return
            if faults.fires(LINK_FLAP, packet):
                self.link_flaps += 1
                self.link_down(src)
                self.dropped += 1
                return
            if faults.fires(NET_PARTITION, packet):
                self.partition(src, dst)
                self.dropped += 1
                return
            if faults.fires(NET_DROP, packet):
                self.dropped += 1
                return
            if faults.fires(NET_CORRUPT, packet):
                # Bit errors on the wire: the receiving CMAC's FCS/ICRC
                # check discards the frame, so corruption is never silent
                # — the reliable transports see it as loss and retransmit.
                self.corrupted += 1
                self.dropped += 1
                return
            if faults.fires(NET_REORDER, packet):
                self.reordered += 1
                delay += REORDER_DETOUR_NS
            if faults.fires(NET_DUPLICATE, packet):
                self.duplicated += 1
                copies = 2
        if packet.eth.dst not in self._ports:
            self.unroutable += 1
            return
        self.forwarded += 1
        for copy in range(copies):
            self.env.process(self._forward(packet, delay + copy * DUPLICATE_GAP_NS))

    def _forward(self, packet: RocePacket, delay_ns: float):
        yield self.env.timeout(delay_ns)
        # Re-resolve at delivery time: the port may have been detached
        # (shell reconfiguration) while the frame was in flight — a frame
        # must never be delivered to an unplugged CMAC.
        port = self._ports.get(packet.eth.dst)
        if port is None:
            self.forwarded -= 1
            self.unroutable += 1
            return
        port.deliver(packet)
