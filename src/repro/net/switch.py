"""A cut-through data-center switch connecting simulated 100G ports.

The paper's RDMA stack runs "over a switched network ... compatible with
commodity hardware"; experiments here connect two or more simulated FPGA
nodes (and, for tests, software peers) through this fabric.  Fault
injection goes through the unified :mod:`repro.faults` sites (loss,
corruption, duplication, reordering); the legacy ``drop_fn`` hook still
works but is deprecated.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional

from ..faults.plan import NET_CORRUPT, NET_DROP, NET_DUPLICATE, NET_REORDER
from ..sim.engine import Environment
from .cmac import Cmac
from .headers import MacAddress
from .packet import RocePacket

__all__ = ["Switch"]

#: Typical ToR cut-through forwarding latency.
SWITCH_LATENCY_NS = 600.0
#: Extra path latency for a reordered frame (adaptive-routing detour):
#: long enough that back-to-back MTU frames overtake it.
REORDER_DETOUR_NS = 4 * SWITCH_LATENCY_NS
#: Gap between the original and its injected duplicate.
DUPLICATE_GAP_NS = 50.0


class Switch:
    """MAC-learning-free static switch: ports are registered explicitly."""

    def __init__(self, env: Environment, latency_ns: float = SWITCH_LATENCY_NS):
        self.env = env
        self.latency_ns = latency_ns
        self._ports: Dict[MacAddress, Cmac] = {}
        self._drop_fn: Optional[Callable[[RocePacket], bool]] = None
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        self.forwarded = 0
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.unroutable = 0

    def counters(self) -> Dict[str, int]:
        """Telemetry snapshot of the fabric counters."""
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "unroutable": self.unroutable,
        }

    @property
    def drop_fn(self) -> Optional[Callable[[RocePacket], bool]]:
        """Legacy fault hook: return True to drop the frame (deprecated)."""
        return self._drop_fn

    @drop_fn.setter
    def drop_fn(self, fn: Optional[Callable[[RocePacket], bool]]) -> None:
        if fn is not None:
            warnings.warn(
                "Switch.drop_fn is deprecated; arm a repro.faults.FaultPlan "
                "with a 'net.drop' FaultRule instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._drop_fn = fn

    def attach(self, mac: MacAddress, cmac: Cmac) -> None:
        if mac in self._ports:
            raise ValueError(f"port {mac!r} already attached")
        self._ports[mac] = cmac
        cmac.attach_wire(lambda pkt: self._ingress(pkt))

    def detach(self, mac: MacAddress) -> None:
        """Unplug a port (a shell reconfiguration swapping its CMAC)."""
        if self._ports.pop(mac, None) is None:
            raise ValueError(f"port {mac!r} is not attached")

    def _ingress(self, packet: RocePacket) -> None:
        if self._drop_fn is not None and self._drop_fn(packet):
            self.dropped += 1
            return
        delay = self.latency_ns
        copies = 1
        faults = self.faults
        if faults is not None:
            if faults.fires(NET_DROP, packet):
                self.dropped += 1
                return
            if faults.fires(NET_CORRUPT, packet):
                # Bit errors on the wire: the receiving CMAC's FCS/ICRC
                # check discards the frame, so corruption is never silent
                # — the reliable transports see it as loss and retransmit.
                self.corrupted += 1
                self.dropped += 1
                return
            if faults.fires(NET_REORDER, packet):
                self.reordered += 1
                delay += REORDER_DETOUR_NS
            if faults.fires(NET_DUPLICATE, packet):
                self.duplicated += 1
                copies = 2
        if packet.eth.dst not in self._ports:
            self.unroutable += 1
            return
        self.forwarded += 1
        for copy in range(copies):
            self.env.process(self._forward(packet, delay + copy * DUPLICATE_GAP_NS))

    def _forward(self, packet: RocePacket, delay_ns: float):
        yield self.env.timeout(delay_ns)
        # Re-resolve at delivery time: the port may have been detached
        # (shell reconfiguration) while the frame was in flight — a frame
        # must never be delivered to an unplugged CMAC.
        port = self._ports.get(packet.eth.dst)
        if port is None:
            self.forwarded -= 1
            self.unroutable += 1
            return
        port.deliver(packet)
