"""A cut-through data-center switch connecting simulated 100G ports.

The paper's RDMA stack runs "over a switched network ... compatible with
commodity hardware"; experiments here connect two or more simulated FPGA
nodes (and, for tests, software peers) through this fabric.

Forwarding is no longer instantaneous: every egress port owns a
finite, byte-accounted FIFO queue drained at line rate.  Above the
configurable ECN threshold the queue CE-marks ECT traffic (the signal
DCQCN endpoints react to); at capacity it tail-drops.  PFC (802.1Qbb)
backpressure is available on top: when an ingress port's buffer share
crosses the XOFF watermark the switch sends a pause frame upstream
(:meth:`~repro.net.cmac.Cmac.pause`, honored with a hold timer), and
resumes it at XON.  A pause-storm watchdog converts the classic PFC
deadlock — a port continuously paused past ``storm_threshold_ns`` —
into a typed :class:`repro.health.PfcStormError` (recorded, surfaced to
``on_pfc_storm``, and delivered to parked senders) instead of a hung
simulation; mitigation mutes PFC on the offending port.

Switches compose into multi-tier fabrics: :meth:`Switch.connect_trunk`
links two switches with a pair of egress queues, remote MACs route via
static entries (:meth:`add_route`) or deterministic ECMP hashing over
the uplink set — see :class:`repro.net.topology.LeafSpineTopology`.

Fault injection goes through the unified :mod:`repro.faults` sites
(loss, corruption, duplication, reordering, plus ``net.ecn_suppress``
and ``net.pause_drop`` to break the congestion-control loop).  The
legacy ``drop_fn`` hook has been removed; arm a
:class:`repro.faults.FaultPlan` with a ``net.drop`` rule instead.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..faults.plan import (
    LINK_FLAP,
    NET_CORRUPT,
    NET_DROP,
    NET_DUPLICATE,
    NET_ECN_SUPPRESS,
    NET_PARTITION,
    NET_PAUSE_DROP,
    NET_REORDER,
    NODE_CRASH,
)
from ..sim.engine import Environment, Event
from .cmac import CMAC_BANDWIDTH, FRAME_OVERHEAD_BYTES, PAUSE_QUANTA_NS, Cmac
from .headers import ECN_CE, ECN_ECT0, ECN_ECT1, MacAddress
from .packet import RocePacket

__all__ = ["Switch", "SwitchConfig", "LINK_FLAP_HOLDOFF_NS", "SWITCH_LATENCY_NS"]

#: Typical ToR cut-through forwarding latency.
SWITCH_LATENCY_NS = 600.0
#: Extra path latency for a reordered frame (adaptive-routing detour):
#: long enough that back-to-back MTU frames overtake it.
REORDER_DETOUR_NS = 4 * SWITCH_LATENCY_NS
#: Gap between the original and its injected duplicate.
DUPLICATE_GAP_NS = 50.0
#: How long a flapped link black-holes frames before auto-recovering.
#: Chosen comfortably above the RDMA retransmit timeout so a flap always
#: costs at least one go-back-N round, but well below the retry budget
#: (``8 × 100 µs``) so a flap alone never escalates to a QP error.
LINK_FLAP_HOLDOFF_NS = 250_000.0


@dataclass(frozen=True)
class SwitchConfig:
    """Per-switch congestion parameters.

    The defaults are sized so uncongested workloads (anything whose
    fan-in stays inside the requester windows) never queue deep enough
    to mark, drop or pause — congestion behavior is opt-in via tighter
    values.  PFC itself defaults off, mirroring the many RoCE
    deployments that run ECN-only.
    """

    #: Per-egress-queue buffer; beyond it frames tail-drop.
    egress_capacity_bytes: int = 1 << 20
    #: CE-mark ECT frames arriving to a queue deeper than this.
    ecn_threshold_bytes: int = 256 << 10
    #: Enable 802.1Qbb pause toward ingress ports over their watermark.
    pfc_enabled: bool = False
    #: Ingress-port buffer share that triggers an XOFF upstream...
    xoff_bytes: int = 512 << 10
    #: ...and the share below which the port is XON'd again.
    xon_bytes: int = 256 << 10
    #: Hold duration carried by each pause frame (refreshed while over
    #: XOFF; expiring unrefreshed is what keeps storm detection live).
    pause_quanta_ns: float = PAUSE_QUANTA_NS
    #: Continuous pause beyond this is a storm: typed error + PFC mute.
    storm_threshold_ns: float = 1_000_000.0


class _EgressPort:
    """One output queue: byte-accounted FIFO drained at line rate.

    ``deliver_fn`` hands a frame to whatever sits at the other end of
    the link (a host CMAC via the switch's delivery-time port lookup, or
    a peer switch's trunk ingress).  The port is itself pausable — a
    downstream receiver (CMAC rx watermark) or peer switch asserts PFC
    against it, freezing the drain.
    """

    def __init__(
        self,
        switch: "Switch",
        label: str,
        deliver_fn: Callable[[RocePacket], None],
        line_rate: float = CMAC_BANDWIDTH,
    ):
        self.switch = switch
        self.label = label
        self.deliver_fn = deliver_fn
        self.line_rate = line_rate
        self.queue: deque = deque()  # (packet, wire_len, source, extra_delay)
        self.queued_bytes = 0
        self.queue_high_water = 0
        # PFC asserted *against* this port by its downstream.
        self.paused_until = 0.0
        self.paused_since: Optional[float] = None
        self.pfc_muted = False  # storm mitigation: ignore further pauses
        self._parked: Optional[Event] = None
        switch.env.process(self._drain(), name=f"{switch.name}-egress-{label}")

    # -- downstream-asserted PFC ----------------------------------------

    def pause(self, duration_ns: Optional[float] = None) -> None:
        """PFC XOFF from the downstream device (refreshable hold)."""
        switch = self.switch
        switch.pause_frames_received += 1
        if self.pfc_muted:
            return
        now = switch.env.now
        if self.paused_since is None:
            self.paused_since = now
        elif now - self.paused_since >= switch.config.storm_threshold_ns:
            switch._record_storm(self.label, now - self.paused_since, self)
            return
        until = now + (duration_ns if duration_ns is not None else switch.config.pause_quanta_ns)
        if until > self.paused_until:
            self.paused_until = until

    def resume(self) -> None:
        """PFC XON: the downstream caught up."""
        self.switch.pause_resumes_received += 1
        self.paused_since = None
        self.paused_until = self.switch.env.now

    def break_pause(self, _exc: Exception) -> None:
        """Storm mitigation: drop the pause and ignore future ones."""
        self.pfc_muted = True
        self.paused_since = None
        self.paused_until = self.switch.env.now

    # -- queue ----------------------------------------------------------

    def enqueue(self, packet: RocePacket, source, extra_delay: float = 0.0) -> bool:
        """Admit one frame; returns False on tail drop."""
        switch = self.switch
        config = switch.config
        wire_len = packet.wire_length + FRAME_OVERHEAD_BYTES
        if self.queued_bytes + wire_len > config.egress_capacity_bytes:
            switch.dropped += 1
            switch.tail_drops += 1
            return False
        if (
            packet.ip.ecn in (ECN_ECT0, ECN_ECT1)
            and self.queued_bytes >= config.ecn_threshold_bytes
        ):
            faults = switch.faults
            if faults is not None and faults.fires(NET_ECN_SUPPRESS, packet):
                switch.ecn_suppressed += 1
            else:
                # Mark a *copy*: the original may sit in a sender's
                # retransmit buffer, and a retransmission must not
                # inherit a stale CE mark from a congested first try.
                packet = replace(packet, ip=replace(packet.ip, ecn=ECN_CE))
                switch.ecn_marks += 1
        self.queue.append((packet, wire_len, source, extra_delay))
        self.queued_bytes += wire_len
        if self.queued_bytes > self.queue_high_water:
            self.queue_high_water = self.queued_bytes
        switch._ingress_bytes[source] = switch._ingress_bytes.get(source, 0) + wire_len
        if self._parked is not None and not self._parked.triggered:
            self._parked.succeed()
        return True

    def _drain(self):
        env = self.switch.env
        while True:
            if not self.queue:
                self._parked = Event(env)
                yield self._parked
                self._parked = None
                continue
            while env.now < self.paused_until and not self.pfc_muted:
                yield env.timeout(self.paused_until - env.now)
            packet, wire_len, source, extra_delay = self.queue.popleft()
            # Cut-through: the head of the frame leaves after the fixed
            # forwarding latency (plus any fault detour), while the queue
            # stays occupied for the frame's full serialisation time.
            env.process(
                self._deliver_later(packet, self.switch.latency_ns + extra_delay)
            )
            yield env.timeout(wire_len / self.line_rate)
            self.queued_bytes -= wire_len
            self.switch._drained(source, wire_len)

    def _deliver_later(self, packet: RocePacket, delay_ns: float):
        yield self.switch.env.timeout(delay_ns)
        self.deliver_fn(packet)


class Switch:
    """MAC-learning-free static switch: ports are registered explicitly."""

    def __init__(
        self,
        env: Environment,
        latency_ns: float = SWITCH_LATENCY_NS,
        config: Optional[SwitchConfig] = None,
        name: str = "sw",
    ):
        self.env = env
        self.latency_ns = latency_ns
        self.config = config if config is not None else SwitchConfig()
        self.name = name
        self._ports: Dict[MacAddress, Cmac] = {}
        #: Egress queues, keyed by local MAC or trunk key.
        self._egress: Dict[object, _EgressPort] = {}
        #: Static routes for MACs living behind a trunk.
        self._routes: Dict[MacAddress, object] = {}
        #: Uplink trunk keys eligible for ECMP hashing of unknown MACs.
        self.ecmp_uplinks: List[object] = []
        self._trunk_serial = 0
        #: Pause handles upstream of each ingress source (a Cmac for host
        #: ports, a peer switch's egress port for trunk ingress).
        self._upstreams: Dict[object, object] = {}
        #: Per-ingress-source bytes currently buffered in this switch.
        self._ingress_bytes: Dict[object, int] = {}
        #: When each source's continuous pause began (PFC asserted and
        #: not yet XON'd; hold-timer expiries do not clear it).
        self._paused_since: Dict[object, float] = {}
        #: Storm-muted sources: PFC disabled after a detected storm.
        self._pfc_muted: Dict[object, bool] = {}
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        # Cluster fault state (all dict-keyed on MacAddress; stateful,
        # unlike the per-frame net.* sites).
        self._dead: Dict[MacAddress, bool] = {}
        self._link_down_until: Dict[MacAddress, float] = {}
        self._partitions: Dict[Tuple[MacAddress, MacAddress], bool] = {}
        #: Wired by :class:`repro.cluster.FpgaCluster`: invoked once when a
        #: ``node.crash`` fires, with the dying port's MAC.
        self.on_node_crash: Optional[Callable[[MacAddress], None]] = None
        #: Invoked with each typed :class:`repro.health.PfcStormError`.
        self.on_pfc_storm: Optional[Callable[[Exception], None]] = None
        self.pfc_storm_errors: List[Exception] = []
        self.forwarded = 0
        self.dropped = 0
        self.tail_drops = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.unroutable = 0
        self.crashes = 0
        self.link_flaps = 0
        self.partitions_created = 0
        self.ecn_marks = 0
        self.ecn_suppressed = 0
        self.pause_frames_sent = 0
        self.pause_frames_dropped = 0
        self.pause_resumes_sent = 0
        self.pause_frames_received = 0
        self.pause_resumes_received = 0
        self.pfc_storms = 0

    def counters(self) -> Dict[str, int]:
        """Telemetry snapshot of the fabric counters."""
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "tail_drops": self.tail_drops,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "unroutable": self.unroutable,
            "crashes": self.crashes,
            "link_flaps": self.link_flaps,
            "partitions": self.partitions_created,
            "ecn_marks": self.ecn_marks,
            "ecn_suppressed": self.ecn_suppressed,
            "pause_frames_sent": self.pause_frames_sent,
            "pause_frames_dropped": self.pause_frames_dropped,
            "pause_frames_received": self.pause_frames_received,
            "pfc_storms": self.pfc_storms,
        }

    # ------------------------------------------------------------ topology

    def attach(self, mac: MacAddress, cmac: Cmac) -> None:
        if mac in self._ports:
            raise ValueError(f"port {mac!r} already attached")
        self._ports[mac] = cmac
        port = _EgressPort(self, f"host-{mac!r}", self._deliver_local)
        self._egress[mac] = port
        self._upstreams[mac] = cmac
        cmac.link_partner = port
        cmac.attach_wire(lambda pkt, src=mac: self._ingress(pkt, src))

    def detach(self, mac: MacAddress) -> None:
        """Unplug a port (a shell reconfiguration swapping its CMAC)."""
        cmac = self._ports.pop(mac, None)
        if cmac is None:
            raise ValueError(f"port {mac!r} is not attached")
        cmac.link_partner = None
        # The egress queue keeps draining any frames already admitted;
        # delivery re-resolves through _ports and counts them unroutable.
        self._egress.pop(mac, None)
        self._upstreams.pop(mac, None)

    def connect_trunk(
        self,
        peer: "Switch",
        line_rate: float = CMAC_BANDWIDTH,
        ecmp_here: bool = False,
        ecmp_there: bool = False,
    ) -> Tuple[object, object]:
        """Create a bidirectional inter-switch link (a pair of egress
        queues, one per direction).  ``ecmp_here``/``ecmp_there`` add the
        respective direction to that switch's ECMP uplink set (what a
        leaf does toward its spines).  Returns the two trunk keys."""
        self._trunk_serial += 1
        peer._trunk_serial += 1
        key_out = f"{self.name}>{peer.name}#{self._trunk_serial}"
        key_back = f"{peer.name}>{self.name}#{peer._trunk_serial}"
        out_port = _EgressPort(
            self, key_out, lambda pkt: peer._ingress(pkt, key_out), line_rate
        )
        back_port = _EgressPort(
            peer, key_back, lambda pkt: self._ingress(pkt, key_back), line_rate
        )
        self._egress[key_out] = out_port
        peer._egress[key_back] = back_port
        # Pausing a trunk ingress means pausing the peer's egress queue.
        peer._upstreams[key_out] = out_port
        self._upstreams[key_back] = back_port
        if ecmp_here:
            self.ecmp_uplinks.append(key_out)
        if ecmp_there:
            peer.ecmp_uplinks.append(key_back)
        return key_out, key_back

    def add_route(self, mac: MacAddress, trunk_key: object) -> None:
        """Static route: frames for ``mac`` leave via this trunk."""
        if trunk_key not in self._egress:
            raise ValueError(f"unknown trunk {trunk_key!r}")
        self._routes[mac] = trunk_key

    def drop_route(self, mac: MacAddress) -> None:
        self._routes.pop(mac, None)

    def egress_ports(self) -> List[Tuple[str, _EgressPort]]:
        """Deterministically ordered (label, port) pairs for telemetry."""
        return sorted(
            ((port.label, port) for port in self._egress.values()),
            key=lambda item: item[0],
        )

    # ------------------------------------------------- cluster fault state

    @staticmethod
    def _pair(a: MacAddress, b: MacAddress) -> Tuple[MacAddress, MacAddress]:
        return (a, b) if a.value <= b.value else (b, a)

    def kill_port(self, mac: MacAddress) -> None:
        """Mark a port dead (node crash): frames from or to it black-hole.
        The port stays attached so :meth:`revive_port` is just a flag flip."""
        self._dead[mac] = True

    def revive_port(self, mac: MacAddress) -> None:
        self._dead.pop(mac, None)

    def is_dead(self, mac: MacAddress) -> bool:
        return mac in self._dead

    def partition(self, a: MacAddress, b: MacAddress) -> None:
        """Sever the (bidirectional) path between two ports until healed."""
        key = self._pair(a, b)
        if key not in self._partitions:
            self._partitions[key] = True
            self.partitions_created += 1

    def heal_partition(self, a: MacAddress, b: MacAddress) -> bool:
        """Restore a severed pair; returns True if one was actually healed."""
        return self._partitions.pop(self._pair(a, b), None) is not None

    def heal_all_partitions(self) -> int:
        healed = len(self._partitions)
        self._partitions.clear()
        return healed

    def is_partitioned(self, a: MacAddress, b: MacAddress) -> bool:
        return self._pair(a, b) in self._partitions

    def link_down(self, mac: MacAddress, duration_ns: float = LINK_FLAP_HOLDOFF_NS) -> None:
        """Drop a port's link; it auto-recovers once the hold-off expires."""
        until = self.env.now + duration_ns
        if self._link_down_until.get(mac, 0.0) < until:
            self._link_down_until[mac] = until

    def link_is_down(self, mac: MacAddress) -> bool:
        until = self._link_down_until.get(mac)
        if until is None:
            return False
        if self.env.now >= until:
            del self._link_down_until[mac]
            return False
        return True

    # ------------------------------------------------------------ datapath

    def _ingress(self, packet: RocePacket, source=None) -> None:
        src = packet.eth.src
        dst = packet.eth.dst
        if source is None:
            source = src
        # Standing cluster-fault state first: frames involving a dead
        # node, a downed link or a severed pair never reach the per-frame
        # chaos sites (their event streams only shift when cluster faults
        # are actually active, preserving the zero-overhead guarantee for
        # plans that don't arm them).
        if src in self._dead or dst in self._dead:
            self.dropped += 1
            return
        if self.link_is_down(src) or self.link_is_down(dst):
            self.dropped += 1
            return
        if self._pair(src, dst) in self._partitions:
            self.dropped += 1
            return
        extra_delay = 0.0
        copies = 1
        faults = self.faults
        if faults is not None:
            if faults.fires(NODE_CRASH, packet):
                self.crashes += 1
                self.kill_port(src)
                if self.on_node_crash is not None:
                    self.on_node_crash(src)
                self.dropped += 1
                return
            if faults.fires(LINK_FLAP, packet):
                self.link_flaps += 1
                self.link_down(src)
                self.dropped += 1
                return
            if faults.fires(NET_PARTITION, packet):
                self.partition(src, dst)
                self.dropped += 1
                return
            if faults.fires(NET_DROP, packet):
                self.dropped += 1
                return
            if faults.fires(NET_CORRUPT, packet):
                # Bit errors on the wire: the receiving CMAC's FCS/ICRC
                # check discards the frame, so corruption is never silent
                # — the reliable transports see it as loss and retransmit.
                self.corrupted += 1
                self.dropped += 1
                return
            if faults.fires(NET_REORDER, packet):
                self.reordered += 1
                extra_delay += REORDER_DETOUR_NS
            if faults.fires(NET_DUPLICATE, packet):
                self.duplicated += 1
                copies = 2
        egress = self._route(packet)
        if egress is None:
            self.unroutable += 1
            return
        admitted = False
        for copy in range(copies):
            if egress.enqueue(packet, source, extra_delay + copy * DUPLICATE_GAP_NS):
                admitted = True
        if admitted:
            # One per ingress frame (duplicate copies don't double-count),
            # matching the pre-queueing forwarding semantics.
            self.forwarded += 1
        self._pfc_check(source, packet)

    def _route(self, packet: RocePacket) -> Optional[_EgressPort]:
        dst = packet.eth.dst
        if dst in self._ports:
            return self._egress.get(dst)
        key = self._routes.get(dst)
        if key is None:
            uplinks = self.ecmp_uplinks
            if not uplinks:
                return None
            # Deterministic ECMP: hash the flow identity (src/dst MAC +
            # UDP source port, the RoCE entropy field) so one flow always
            # takes one path — order within a flow is preserved.
            flow = f"{packet.eth.src.value:012x}>{dst.value:012x}:{packet.udp.src_port}"
            key = uplinks[zlib.crc32(flow.encode()) % len(uplinks)]
        return self._egress.get(key)

    def _deliver_local(self, packet: RocePacket) -> None:
        # Re-resolve at delivery time: the port may have been detached
        # (shell reconfiguration) while the frame was in flight — a frame
        # must never be delivered to an unplugged CMAC.
        port = self._ports.get(packet.eth.dst)
        if port is None:
            self.forwarded -= 1
            self.unroutable += 1
            return
        port.deliver(packet)

    # ----------------------------------------------------------------- PFC

    def _pfc_check(self, source, packet: RocePacket) -> None:
        """Ingress-pressure check, run on *every* frame from a source
        (tail-dropped ones included — a full buffer is exactly when the
        pause must be refreshed and the storm clock must advance)."""
        config = self.config
        if not config.pfc_enabled or self._pfc_muted.get(source):
            return
        if self._ingress_bytes.get(source, 0) < config.xoff_bytes:
            return
        now = self.env.now
        since = self._paused_since.get(source)
        if since is None:
            self._paused_since[source] = now
        elif now - since >= config.storm_threshold_ns:
            self._record_storm(str(source), now - since, source_key=source)
            return
        if self.faults is not None and self.faults.fires(NET_PAUSE_DROP, packet):
            self.pause_frames_dropped += 1
            return
        upstream = self._upstreams.get(source)
        if upstream is not None:
            self.pause_frames_sent += 1
            upstream.pause(config.pause_quanta_ns)

    def _drained(self, source, wire_len: int) -> None:
        """Egress drained one frame: release the ingress accounting and
        XON the source if it fell back under the watermark."""
        remaining = self._ingress_bytes.get(source, 0) - wire_len
        self._ingress_bytes[source] = remaining if remaining > 0 else 0
        if (
            source in self._paused_since
            and self._ingress_bytes[source] <= self.config.xon_bytes
        ):
            del self._paused_since[source]
            upstream = self._upstreams.get(source)
            if upstream is not None:
                self.pause_resumes_sent += 1
                upstream.resume()

    def _record_storm(
        self, port_label: str, paused_ns: float, port=None, source_key=None
    ) -> None:
        """A port crossed the storm threshold: record the typed error,
        mute PFC on it (mitigation) and unblock whatever it froze."""
        from ..health.errors import PfcStormError  # deferred: health imports net

        err = PfcStormError(
            port=port_label,
            paused_ns=paused_ns,
            threshold_ns=self.config.storm_threshold_ns,
        )
        self.pfc_storms += 1
        self.pfc_storm_errors.append(err)
        if source_key is not None:
            # Upstream-facing storm: this switch paused the source past
            # the threshold.  Stop pausing it and fail parked senders.
            self._pfc_muted[source_key] = True
            self._paused_since.pop(source_key, None)
            upstream = self._upstreams.get(source_key)
            if upstream is not None:
                upstream.break_pause(err)
        if port is not None:
            # Downstream-facing storm: our egress stayed paused too long.
            port.break_pause(err)
        if self.on_pfc_storm is not None:
            self.on_pfc_storm(err)
