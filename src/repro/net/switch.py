"""A cut-through data-center switch connecting simulated 100G ports.

The paper's RDMA stack runs "over a switched network ... compatible with
commodity hardware"; experiments here connect two or more simulated FPGA
nodes (and, for tests, software peers) through this fabric.  Supports a
drop hook for fault injection, which the retransmission tests use.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Environment
from .cmac import Cmac
from .headers import MacAddress
from .packet import RocePacket

__all__ = ["Switch"]

#: Typical ToR cut-through forwarding latency.
SWITCH_LATENCY_NS = 600.0


class Switch:
    """MAC-learning-free static switch: ports are registered explicitly."""

    def __init__(self, env: Environment, latency_ns: float = SWITCH_LATENCY_NS):
        self.env = env
        self.latency_ns = latency_ns
        self._ports: Dict[MacAddress, Cmac] = {}
        #: Optional fault injector: return True to drop the frame.
        self.drop_fn: Optional[Callable[[RocePacket], bool]] = None
        self.forwarded = 0
        self.dropped = 0
        self.unroutable = 0

    def attach(self, mac: MacAddress, cmac: Cmac) -> None:
        if mac in self._ports:
            raise ValueError(f"port {mac!r} already attached")
        self._ports[mac] = cmac
        cmac.attach_wire(lambda pkt: self._ingress(pkt))

    def detach(self, mac: MacAddress) -> None:
        """Unplug a port (a shell reconfiguration swapping its CMAC)."""
        if self._ports.pop(mac, None) is None:
            raise ValueError(f"port {mac!r} is not attached")

    def _ingress(self, packet: RocePacket) -> None:
        if self.drop_fn is not None and self.drop_fn(packet):
            self.dropped += 1
            return
        port = self._ports.get(packet.eth.dst)
        if port is None:
            self.unroutable += 1
            return
        self.forwarded += 1
        self.env.process(self._forward(port, packet))

    def _forward(self, port: Cmac, packet: RocePacket):
        yield self.env.timeout(self.latency_ns)
        port.deliver(packet)
