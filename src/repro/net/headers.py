"""Byte-accurate packet headers for the RoCE v2 stack.

The BALBOA service (paper §6.2) is "fully RoCE v2-compliant ... compatible
with commodity hardware (e.g., Mellanox, BlueField)".  RoCE v2 carries
InfiniBand transport packets over Ethernet/IPv4/UDP (destination port
4791).  We implement the on-wire layouts exactly so the traffic-sniffer
service can emit PCAPs that standard tooling would parse.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "MacAddress",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "BthHeader",
    "RethHeader",
    "AethHeader",
    "AtomicEthHeader",
    "AtomicAckEthHeader",
    "RoceOpcode",
    "ROCE_UDP_PORT",
    "ETHERTYPE_IPV4",
    "IP_PROTO_UDP",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "icrc32",
]

ROCE_UDP_PORT = 4791
ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 17

# RFC 3168 ECN codepoints (the low two bits of the IPv4 TOS byte).
ECN_NOT_ECT = 0  # not ECN-capable transport
ECN_ECT1 = 1
ECN_ECT0 = 2  # what DCQCN-enabled senders mark their data packets with
ECN_CE = 3  # Congestion Experienced: set by the switch above threshold


class MacAddress:
    """A 48-bit Ethernet address."""

    def __init__(self, value: int):
        if not 0 <= value < (1 << 48):
            raise ValueError("MAC address out of range")
        self.value = value

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"bad MAC {text!r}")
        return cls(int("".join(parts), 16))

    def pack(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "MacAddress":
        return cls(int.from_bytes(data[:6], "big"))

    def __eq__(self, other) -> bool:
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        raw = self.value.to_bytes(6, "big")
        return ":".join(f"{b:02x}" for b in raw)


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def pack(self) -> bytes:
        return self.dst.pack() + self.src.pack() + struct.pack("!H", self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated Ethernet header")
        return cls(
            dst=MacAddress.unpack(data[0:6]),
            src=MacAddress.unpack(data[6:12]),
            ethertype=struct.unpack("!H", data[12:14])[0],
        )


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass
class Ipv4Header:
    """20-byte IPv4 header (no options) with a real checksum.

    The second byte carries DSCP in its upper six bits and ECN in the
    lower two (RFC 3168): ``0`` not-ECT, ``1``/``2`` ECT(1)/ECT(0), ``3``
    Congestion Experienced.  DCQCN rides on this field — the switch CE-marks
    ECT packets above its queue threshold and the responder answers with
    CNPs — so both bits round-trip through serialisation.
    """

    src: int  # 32-bit addresses as ints
    dst: int
    total_length: int
    protocol: int = IP_PROTO_UDP
    ttl: int = 64
    dscp: int = 0
    ecn: int = ECN_NOT_ECT
    identification: int = 0

    SIZE = 20

    def pack(self) -> bytes:
        head = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version 4, IHL 5
            ((self.dscp & 0x3F) << 2) | (self.ecn & 0x3),
            self.total_length,
            self.identification,
            0x4000,  # DF
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        checksum = _ipv4_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.SIZE:
            raise ValueError("truncated IPv4 header")
        (vihl, dscp_ecn, total_length, ident, _flags, ttl, proto, checksum, src, dst) = (
            struct.unpack("!BBHHHBBH4s4s", data[:20])
        )
        if vihl != 0x45:
            raise ValueError(f"unsupported IPv4 version/IHL {vihl:#x}")
        if _ipv4_checksum(data[:20]) != 0:
            raise ValueError("IPv4 checksum mismatch")
        return cls(
            src=int.from_bytes(src, "big"),
            dst=int.from_bytes(dst, "big"),
            total_length=total_length,
            protocol=proto,
            ttl=ttl,
            dscp=dscp_ecn >> 2,
            ecn=dscp_ecn & 0x3,
            identification=ident,
        )


@dataclass
class UdpHeader:
    """8-byte UDP header.  RoCE v2 fixes the destination port to 4791."""

    src_port: int
    dst_port: int
    length: int
    checksum: int = 0  # RoCE v2 permits zero UDP checksum

    SIZE = 8

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated UDP header")
        src, dst, length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src, dst_port=dst, length=length, checksum=checksum)


class RoceOpcode:
    """InfiniBand RC transport opcodes used by the stack."""

    SEND_FIRST = 0x00
    SEND_MIDDLE = 0x01
    SEND_LAST = 0x02
    SEND_ONLY = 0x04
    RDMA_WRITE_FIRST = 0x06
    RDMA_WRITE_MIDDLE = 0x07
    RDMA_WRITE_LAST = 0x08
    RDMA_WRITE_ONLY = 0x0A
    RDMA_READ_REQUEST = 0x0C
    RDMA_READ_RESPONSE_FIRST = 0x0D
    RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RDMA_READ_RESPONSE_LAST = 0x0F
    RDMA_READ_RESPONSE_ONLY = 0x10
    ACKNOWLEDGE = 0x11
    ATOMIC_ACKNOWLEDGE = 0x12
    COMPARE_SWAP = 0x13
    FETCH_ADD = 0x14
    # RoCE v2 Congestion Notification Packet (Annex A17): BTH-only frame
    # the responder returns to the requester when it receives CE-marked
    # traffic; the requester's DCQCN rate limiter reacts to it.
    CNP = 0x81

    _NAMES = {}

    @classmethod
    def name(cls, opcode: int) -> str:
        if not cls._NAMES:
            cls._NAMES = {
                v: k for k, v in vars(cls).items() if isinstance(v, int)
            }
        return cls._NAMES.get(opcode, f"OPCODE_{opcode:#x}")

    @staticmethod
    def has_reth(opcode: int) -> bool:
        return opcode in (
            RoceOpcode.RDMA_WRITE_FIRST,
            RoceOpcode.RDMA_WRITE_ONLY,
            RoceOpcode.RDMA_READ_REQUEST,
        )

    @staticmethod
    def has_aeth(opcode: int) -> bool:
        return opcode in (
            RoceOpcode.ACKNOWLEDGE,
            RoceOpcode.ATOMIC_ACKNOWLEDGE,
            RoceOpcode.RDMA_READ_RESPONSE_FIRST,
            RoceOpcode.RDMA_READ_RESPONSE_LAST,
            RoceOpcode.RDMA_READ_RESPONSE_ONLY,
        )

    @staticmethod
    def has_atomic_eth(opcode: int) -> bool:
        return opcode in (RoceOpcode.COMPARE_SWAP, RoceOpcode.FETCH_ADD)


@dataclass
class BthHeader:
    """12-byte InfiniBand Base Transport Header."""

    opcode: int
    dest_qp: int
    psn: int
    ack_request: bool = False
    solicited: bool = False
    partition_key: int = 0xFFFF

    SIZE = 12

    def pack(self) -> bytes:
        flags = (0x80 if self.solicited else 0) | 0x40  # migreq set like HW stacks
        return struct.pack(
            "!BBHII",
            self.opcode,
            flags,
            self.partition_key,
            self.dest_qp & 0xFFFFFF,
            ((0x80000000 if self.ack_request else 0) | (self.psn & 0xFFFFFF)),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "BthHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated BTH")
        opcode, flags, pkey, destqp, psn_word = struct.unpack("!BBHII", data[:12])
        return cls(
            opcode=opcode,
            dest_qp=destqp & 0xFFFFFF,
            psn=psn_word & 0xFFFFFF,
            ack_request=bool(psn_word & 0x80000000),
            solicited=bool(flags & 0x80),
            partition_key=pkey,
        )


@dataclass
class RethHeader:
    """16-byte RDMA Extended Transport Header: target address + length."""

    vaddr: int
    rkey: int
    dma_length: int

    SIZE = 16

    def pack(self) -> bytes:
        return struct.pack("!QII", self.vaddr, self.rkey, self.dma_length)

    @classmethod
    def unpack(cls, data: bytes) -> "RethHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated RETH")
        vaddr, rkey, length = struct.unpack("!QII", data[:16])
        return cls(vaddr=vaddr, rkey=rkey, dma_length=length)


@dataclass
class AethHeader:
    """4-byte ACK Extended Transport Header."""

    syndrome: int  # 0 = ACK, 0x60|code = NAK
    msn: int

    SIZE = 4

    NAK_PSN_SEQUENCE_ERROR = 0x60

    def pack(self) -> bytes:
        return struct.pack("!I", ((self.syndrome & 0xFF) << 24) | (self.msn & 0xFFFFFF))

    @classmethod
    def unpack(cls, data: bytes) -> "AethHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated AETH")
        word = struct.unpack("!I", data[:4])[0]
        return cls(syndrome=word >> 24, msn=word & 0xFFFFFF)

    @property
    def is_nak(self) -> bool:
        return self.syndrome != 0


@dataclass
class AtomicEthHeader:
    """28-byte Atomic Extended Transport Header (CmpSwap / FetchAdd)."""

    vaddr: int
    rkey: int
    swap_add: int  # swap value (CmpSwap) or addend (FetchAdd)
    compare: int = 0

    SIZE = 28

    def pack(self) -> bytes:
        return struct.pack("!QIQQ", self.vaddr, self.rkey, self.swap_add, self.compare)

    @classmethod
    def unpack(cls, data: bytes) -> "AtomicEthHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated AtomicETH")
        vaddr, rkey, swap_add, compare = struct.unpack("!QIQQ", data[:28])
        return cls(vaddr=vaddr, rkey=rkey, swap_add=swap_add, compare=compare)


@dataclass
class AtomicAckEthHeader:
    """8-byte Atomic ACK ETH: the original value at the target address."""

    original: int

    SIZE = 8

    def pack(self) -> bytes:
        return struct.pack("!Q", self.original)

    @classmethod
    def unpack(cls, data: bytes) -> "AtomicAckEthHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated AtomicAckETH")
        return cls(original=struct.unpack("!Q", data[:8])[0])


def icrc32(packet_bytes: bytes) -> int:
    """Invariant CRC over the RoCE packet.

    Real ICRC masks variant fields (TTL, checksum, ...) before CRC32; since
    we compute it over the already-assembled invariant portion this CRC32 is
    a faithful stand-in that still detects corruption in simulation.
    """
    return zlib.crc32(packet_bytes) & 0xFFFFFFFF
