"""RDMA queue pairs.

Mirrors Coyote v2's software surface where a cThread exchanges QP numbers
and buffer descriptors out-of-band, then issues one-sided verbs.  The QP
tracks the reliable-connection state: send PSN, acknowledged PSN, expected
receive PSN and the message sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .headers import MacAddress

__all__ = ["QpState", "QpEndpoint", "QueuePair", "PSN_MOD"]

#: PSNs are 24-bit counters.
PSN_MOD = 1 << 24


class QpState(Enum):
    RESET = "reset"
    INIT = "init"
    RTR = "ready-to-receive"
    RTS = "ready-to-send"
    ERROR = "error"


@dataclass(frozen=True)
class QpEndpoint:
    """One side of a connection: where it lives and its initial PSN."""

    mac: MacAddress
    ip: int
    qpn: int
    psn: int = 0
    rkey: int = 0
    buffer_vaddr: int = 0
    buffer_len: int = 0


@dataclass
class QueuePair:
    """Reliable-connection QP state machine (data only; logic in RdmaStack)."""

    local: QpEndpoint
    remote: Optional[QpEndpoint] = None
    state: QpState = QpState.INIT
    sq_psn: int = 0  # next PSN to assign on send
    acked_psn: int = -1  # highest PSN acknowledged by the peer
    epsn: int = 0  # next PSN expected from the peer
    msn: int = 0  # messages completed at the responder

    def __post_init__(self) -> None:
        self.sq_psn = self.local.psn

    def connect(self, remote: QpEndpoint) -> None:
        """Out-of-band connection setup (the paper exchanges this via TCP)."""
        if self.state not in (QpState.INIT, QpState.RESET):
            raise RuntimeError(f"cannot connect QP in state {self.state}")
        self.remote = remote
        self.epsn = remote.psn
        self.state = QpState.RTS

    @property
    def connected(self) -> bool:
        return self.state is QpState.RTS and self.remote is not None

    def next_psn(self) -> int:
        psn = self.sq_psn
        self.sq_psn = (self.sq_psn + 1) % PSN_MOD
        return psn

    def outstanding(self) -> int:
        """Number of sent-but-unacked packets (modulo arithmetic)."""
        return (self.sq_psn - (self.acked_psn + 1)) % PSN_MOD
