"""RDMA queue pairs: the full IB-style connection state machine.

Mirrors Coyote v2's software surface where a cThread exchanges QP numbers
and buffer descriptors out-of-band, then issues one-sided verbs.  The QP
tracks the reliable-connection state: send PSN, acknowledged PSN, expected
receive PSN and the message sequence number.

State machine (InfiniBand verbs ``modify_qp`` ladder)::

    RESET ──to_init──▶ INIT ──to_rtr──▶ RTR ──to_rts──▶ RTS
      ▲                                                  │
      │                              to_sq_error ────────┤
      │                                   │              │
      │                                   ▼              ▼
      └────────── reset() ◀────────── SQ_ERROR ──────▶ ERROR
                                        (to_error, from any state)

``connect()`` is the out-of-band convenience that walks INIT→RTR→RTS in
one call (the paper exchanges endpoints via TCP).  ``SQ_ERROR`` halts
only the send queue (the responder half still delivers inbound work);
``ERROR`` halts both.  ``reset()`` returns the QP to ``RESET`` from any
state so recovery can re-connect — the path
:class:`~repro.net.rdma.RdmaStack.reset_qp` takes after flushing.

The transition methods only move the state; flushing outstanding work
requests (as typed :class:`~repro.net.rdma.WrFlushError`\\ s) is the
stack's job — see ``RdmaStack.qp_error``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .headers import MacAddress

__all__ = [
    "QpState",
    "QpEndpoint",
    "QueuePair",
    "QpTransitionError",
    "PSN_MOD",
    "QP_PROTOCOL",
    "QP_INITIAL_STATE",
]

#: PSNs are 24-bit counters.
PSN_MOD = 1 << 24

#: The declared ``modify_qp`` protocol: method -> (states it may be
#: called from, state it lands in).  ``"*"`` means any state (IB's
#: ``*2ERR``/``*2RESET`` arrows); error-state entries on ``to_sq_error``
#: reflect its idempotent no-op there.  This table is the single
#: declaration the transition methods below implement and the STM001
#: analyzer rule reads *statically* (``repro.analysis.rules_protocol``)
#: to check call sequences across the tree — keep it a pure literal.
QP_PROTOCOL = {
    "to_init": (("reset",), "init"),
    "to_rtr": (("init",), "rtr"),
    "to_rts": (("rtr",), "rts"),
    "to_sq_error": (("rts", "sq_error", "error"), "sq_error"),
    "to_error": (("*",), "error"),
    "reset": (("*",), "reset"),
    "connect": (("reset", "init"), "rts"),
}

#: A freshly constructed :class:`QueuePair` starts in INIT (the
#: dataclass default below) — what STM001 assumes after ``QueuePair(...)``.
QP_INITIAL_STATE = "init"


class QpState(Enum):
    RESET = "reset"
    INIT = "init"
    RTR = "ready-to-receive"
    RTS = "ready-to-send"
    SQ_ERROR = "sq-error"
    ERROR = "error"


class QpTransitionError(RuntimeError):
    """An illegal ``modify_qp`` transition (e.g. ``connect`` from RTS)."""

    def __init__(self, qpn: int, state: QpState, wanted: QpState):
        super().__init__(
            f"QP {qpn}: illegal transition {state.value!r} -> {wanted.value!r}"
        )
        self.qpn = qpn
        self.state = state
        self.wanted = wanted


@dataclass(frozen=True)
class QpEndpoint:
    """One side of a connection: where it lives and its initial PSN."""

    mac: MacAddress
    ip: int
    qpn: int
    psn: int = 0
    rkey: int = 0
    buffer_vaddr: int = 0
    buffer_len: int = 0


@dataclass
class QueuePair:
    """Reliable-connection QP state machine (data only; logic in RdmaStack)."""

    local: QpEndpoint
    remote: Optional[QpEndpoint] = None
    state: QpState = QpState.INIT
    sq_psn: int = 0  # next PSN to assign on send
    acked_psn: int = -1  # highest PSN acknowledged by the peer
    epsn: int = 0  # next PSN expected from the peer
    msn: int = 0  # messages completed at the responder
    #: Why the QP left the operational states (diagnostics / WrFlushError).
    error_reason: str = ""

    def __post_init__(self) -> None:
        self.sq_psn = self.local.psn

    # ------------------------------------------------------- modify_qp ladder

    def to_init(self) -> None:
        if self.state is not QpState.RESET:
            raise QpTransitionError(self.local.qpn, self.state, QpState.INIT)
        self.state = QpState.INIT

    def to_rtr(self, remote: QpEndpoint) -> None:
        """Install the remote endpoint; the receive side comes alive."""
        if self.state is not QpState.INIT:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTR)
        self.remote = remote
        self.epsn = remote.psn
        self.state = QpState.RTR

    def to_rts(self) -> None:
        if self.state is not QpState.RTR:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTS)
        self.state = QpState.RTS

    def to_sq_error(self, reason: str = "send queue error") -> None:
        """Halt the send queue only (responder half keeps serving)."""
        if self.state in (QpState.SQ_ERROR, QpState.ERROR):
            return
        if self.state is not QpState.RTS:
            raise QpTransitionError(self.local.qpn, self.state, QpState.SQ_ERROR)
        self.state = QpState.SQ_ERROR
        self.error_reason = reason

    def to_error(self, reason: str = "error") -> None:
        """Any state may move to ERROR (IB allows ``*2ERR``); idempotent."""
        if self.state is QpState.ERROR:
            return
        self.state = QpState.ERROR
        self.error_reason = reason

    def reset(self) -> None:
        """Back to RESET from any state, forgetting the connection — the
        re-connect path recovery takes after a flush."""
        self.state = QpState.RESET
        self.remote = None
        self.sq_psn = self.local.psn
        self.acked_psn = -1
        self.epsn = 0
        self.msn = 0
        self.error_reason = ""

    # ------------------------------------------------------------ convenience

    def connect(self, remote: QpEndpoint) -> None:
        """Out-of-band connection setup (the paper exchanges this via TCP):
        walks the INIT→RTR→RTS ladder in one call."""
        if self.state is QpState.RESET:
            self.to_init()
        if self.state is not QpState.INIT:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTS)
        self.to_rtr(remote)
        self.to_rts()

    @property
    def connected(self) -> bool:
        return self.state is QpState.RTS and self.remote is not None

    @property
    def in_error(self) -> bool:
        """True in either error state; the send queue is unusable."""
        return self.state in (QpState.SQ_ERROR, QpState.ERROR)

    def next_psn(self) -> int:
        psn = self.sq_psn
        self.sq_psn = (self.sq_psn + 1) % PSN_MOD
        return psn

    def outstanding(self) -> int:
        """Number of sent-but-unacked packets (modulo arithmetic)."""
        return (self.sq_psn - (self.acked_psn + 1)) % PSN_MOD
