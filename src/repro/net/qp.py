"""RDMA queue pairs: the full IB-style connection state machine.

Mirrors Coyote v2's software surface where a cThread exchanges QP numbers
and buffer descriptors out-of-band, then issues one-sided verbs.  The QP
tracks the reliable-connection state: send PSN, acknowledged PSN, expected
receive PSN and the message sequence number.

State machine (InfiniBand verbs ``modify_qp`` ladder)::

    RESET ──to_init──▶ INIT ──to_rtr──▶ RTR ──to_rts──▶ RTS
      ▲                                                  │
      │                              to_sq_error ────────┤
      │                                   │              │
      │                                   ▼              ▼
      └────────── reset() ◀────────── SQ_ERROR ──────▶ ERROR
                                        (to_error, from any state)

``connect()`` is the out-of-band convenience that walks INIT→RTR→RTS in
one call (the paper exchanges endpoints via TCP).  ``SQ_ERROR`` halts
only the send queue (the responder half still delivers inbound work);
``ERROR`` halts both.  ``reset()`` returns the QP to ``RESET`` from any
state so recovery can re-connect — the path
:class:`~repro.net.rdma.RdmaStack.reset_qp` takes after flushing.

The transition methods only move the state; flushing outstanding work
requests (as typed :class:`~repro.net.rdma.WrFlushError`\\ s) is the
stack's job — see ``RdmaStack.qp_error``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .headers import MacAddress

__all__ = [
    "QpState",
    "QpEndpoint",
    "QueuePair",
    "QpTransitionError",
    "DcqcnState",
    "PSN_MOD",
    "QP_PROTOCOL",
    "QP_INITIAL_STATE",
]

#: PSNs are 24-bit counters.
PSN_MOD = 1 << 24

#: The declared ``modify_qp`` protocol: method -> (states it may be
#: called from, state it lands in).  ``"*"`` means any state (IB's
#: ``*2ERR``/``*2RESET`` arrows); error-state entries on ``to_sq_error``
#: reflect its idempotent no-op there.  This table is the single
#: declaration the transition methods below implement and the STM001
#: analyzer rule reads *statically* (``repro.analysis.rules_protocol``)
#: to check call sequences across the tree — keep it a pure literal.
QP_PROTOCOL = {
    "to_init": (("reset",), "init"),
    "to_rtr": (("init",), "rtr"),
    "to_rts": (("rtr",), "rts"),
    "to_sq_error": (("rts", "sq_error", "error"), "sq_error"),
    "to_error": (("*",), "error"),
    "reset": (("*",), "reset"),
    "connect": (("reset", "init"), "rts"),
}

#: A freshly constructed :class:`QueuePair` starts in INIT (the
#: dataclass default below) — what STM001 assumes after ``QueuePair(...)``.
QP_INITIAL_STATE = "init"


class QpState(Enum):
    RESET = "reset"
    INIT = "init"
    RTR = "ready-to-receive"
    RTS = "ready-to-send"
    SQ_ERROR = "sq-error"
    ERROR = "error"


class QpTransitionError(RuntimeError):
    """An illegal ``modify_qp`` transition (e.g. ``connect`` from RTS)."""

    def __init__(self, qpn: int, state: QpState, wanted: QpState):
        super().__init__(
            f"QP {qpn}: illegal transition {state.value!r} -> {wanted.value!r}"
        )
        self.qpn = qpn
        self.state = state
        self.wanted = wanted


@dataclass(frozen=True)
class QpEndpoint:
    """One side of a connection: where it lives and its initial PSN."""

    mac: MacAddress
    ip: int
    qpn: int
    psn: int = 0
    rkey: int = 0
    buffer_vaddr: int = 0
    buffer_len: int = 0


@dataclass
class QueuePair:
    """Reliable-connection QP state machine (data only; logic in RdmaStack)."""

    local: QpEndpoint
    remote: Optional[QpEndpoint] = None
    state: QpState = QpState.INIT
    sq_psn: int = 0  # next PSN to assign on send
    acked_psn: int = -1  # highest PSN acknowledged by the peer
    epsn: int = 0  # next PSN expected from the peer
    msn: int = 0  # messages completed at the responder
    #: Why the QP left the operational states (diagnostics / WrFlushError).
    error_reason: str = ""

    def __post_init__(self) -> None:
        self.sq_psn = self.local.psn

    # ------------------------------------------------------- modify_qp ladder

    def to_init(self) -> None:
        if self.state is not QpState.RESET:
            raise QpTransitionError(self.local.qpn, self.state, QpState.INIT)
        self.state = QpState.INIT

    def to_rtr(self, remote: QpEndpoint) -> None:
        """Install the remote endpoint; the receive side comes alive."""
        if self.state is not QpState.INIT:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTR)
        self.remote = remote
        self.epsn = remote.psn
        self.state = QpState.RTR

    def to_rts(self) -> None:
        if self.state is not QpState.RTR:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTS)
        self.state = QpState.RTS

    def to_sq_error(self, reason: str = "send queue error") -> None:
        """Halt the send queue only (responder half keeps serving)."""
        if self.state in (QpState.SQ_ERROR, QpState.ERROR):
            return
        if self.state is not QpState.RTS:
            raise QpTransitionError(self.local.qpn, self.state, QpState.SQ_ERROR)
        self.state = QpState.SQ_ERROR
        self.error_reason = reason

    def to_error(self, reason: str = "error") -> None:
        """Any state may move to ERROR (IB allows ``*2ERR``); idempotent."""
        if self.state is QpState.ERROR:
            return
        self.state = QpState.ERROR
        self.error_reason = reason

    def reset(self) -> None:
        """Back to RESET from any state, forgetting the connection — the
        re-connect path recovery takes after a flush."""
        self.state = QpState.RESET
        self.remote = None
        self.sq_psn = self.local.psn
        self.acked_psn = -1
        self.epsn = 0
        self.msn = 0
        self.error_reason = ""

    # ------------------------------------------------------------ convenience

    def connect(self, remote: QpEndpoint) -> None:
        """Out-of-band connection setup (the paper exchanges this via TCP):
        walks the INIT→RTR→RTS ladder in one call."""
        if self.state is QpState.RESET:
            self.to_init()
        if self.state is not QpState.INIT:
            raise QpTransitionError(self.local.qpn, self.state, QpState.RTS)
        self.to_rtr(remote)
        self.to_rts()

    @property
    def connected(self) -> bool:
        return self.state is QpState.RTS and self.remote is not None

    @property
    def in_error(self) -> bool:
        """True in either error state; the send queue is unusable."""
        return self.state in (QpState.SQ_ERROR, QpState.ERROR)

    def next_psn(self) -> int:
        psn = self.sq_psn
        self.sq_psn = (self.sq_psn + 1) % PSN_MOD
        return psn

    def outstanding(self) -> int:
        """Number of sent-but-unacked packets (modulo arithmetic)."""
        return (self.sq_psn - (self.acked_psn + 1)) % PSN_MOD


@dataclass
class DcqcnState:
    """Per-QP DCQCN rate-control state (the reaction point, RP).

    The DCQCN loop (Zhu et al., SIGCOMM'15) as the stack runs it:

    * The congestion point (a switch egress queue) CE-marks ECT frames
      above its threshold.
    * The notification point (the responder) answers marked arrivals
      with CNPs, rate-limited to one per QP per ``cnp_interval_ns``.
    * This state — the reaction point — cuts the send rate
      multiplicatively on each CNP and recovers in the standard three
      phases (fast recovery toward the pre-cut target, then additive,
      then hyper increase) while the QP stays CNP-free.

    All bookkeeping is *lazy*: there are no timer processes.  ``advance``
    replays any alpha-decay and rate-increase periods that elapsed since
    the last call, so idle QPs cost nothing and the simulation stays
    deterministic.  Rates are in bytes/ns (= GB/s); pacing reserves the
    next transmit slot via ``pacing_gap``.
    """

    #: Uncut line rate (bytes/ns); also the recovery ceiling.
    line_rate: float
    #: Floor the multiplicative decrease never cuts below.
    min_rate: float
    #: EWMA gain for the congestion-extent estimate alpha.
    alpha_g: float
    #: Alpha decays once per this period without a CNP.
    alpha_update_ns: float
    #: Rate-increase round length.
    rate_increase_ns: float
    #: Rounds of fast recovery before additive increase starts.
    fast_recovery_rounds: int
    #: Additive-increase step (bytes/ns per round).
    additive_increase: float
    #: Hyper-increase step (bytes/ns per round) once additive converges.
    hyper_increase: float
    #: Rate a fresh QP starts at (hardware RPs expose this as the RPG
    #: initial rate); ``0`` means start at line rate.
    initial_rate: float = 0.0
    current_rate: float = 0.0
    target_rate: float = 0.0
    alpha: float = 1.0
    cnps: int = 0  # CNPs absorbed (telemetry)
    _last_alpha_update: float = 0.0
    _last_increase: float = 0.0
    _increase_rounds: int = 0
    _next_tx: float = 0.0
    _last_paced: float = 0.0

    def __post_init__(self) -> None:
        start = self.initial_rate if self.initial_rate > 0.0 else self.line_rate
        if self.current_rate <= 0.0:
            self.current_rate = start
        if self.target_rate <= 0.0:
            self.target_rate = start

    def on_cnp(self, now: float) -> None:
        """Multiplicative decrease: a CNP arrived for this QP."""
        self.cnps += 1
        self.advance(now)
        self.target_rate = self.current_rate
        self.current_rate = max(
            self.min_rate, self.current_rate * (1.0 - self.alpha / 2.0)
        )
        self.alpha = (1.0 - self.alpha_g) * self.alpha + self.alpha_g
        self._last_alpha_update = now
        self._last_increase = now
        self._increase_rounds = 0

    def advance(self, now: float) -> None:
        """Replay elapsed alpha-decay and rate-increase periods."""
        while now - self._last_alpha_update >= self.alpha_update_ns:
            self.alpha *= 1.0 - self.alpha_g
            self._last_alpha_update += self.alpha_update_ns
        while now - self._last_increase >= self.rate_increase_ns:
            self._last_increase += self.rate_increase_ns
            self._increase_rounds += 1
            if self._increase_rounds <= self.fast_recovery_rounds:
                # Fast recovery: binary-search back toward the target.
                self.current_rate = (self.current_rate + self.target_rate) / 2.0
            elif self._increase_rounds <= 2 * self.fast_recovery_rounds:
                self.target_rate = min(
                    self.line_rate, self.target_rate + self.additive_increase
                )
                self.current_rate = (self.current_rate + self.target_rate) / 2.0
            else:
                self.target_rate = min(
                    self.line_rate, self.target_rate + self.hyper_increase
                )
                self.current_rate = (self.current_rate + self.target_rate) / 2.0
            if self.current_rate > self.line_rate:
                self.current_rate = self.line_rate

    def pacing_gap(self, now: float, wire_bytes: int) -> float:
        """Reserve the next transmit slot; returns how long to hold this
        frame so the paced rate never exceeds ``current_rate``."""
        # Recovery is tied to *active transmission* (the paper's byte
        # counter): a flow stalled in retransmission or idle between
        # messages earns at most one increase round for the whole gap,
        # else it would resume with a fully recovered rate and re-burst
        # the very queue that cut it (the DCQCN restart problem).
        idle = now - self._last_paced
        if idle > self.rate_increase_ns:
            floor = now - self.rate_increase_ns
            if self._last_increase < floor:
                self._last_increase = floor
            if self._last_alpha_update < floor:
                self._last_alpha_update = floor
        self._last_paced = now
        self.advance(now)
        gap = self._next_tx - now
        start = now if gap <= 0.0 else self._next_tx
        self._next_tx = start + wire_bytes / self.current_rate
        return gap if gap > 0.0 else 0.0
