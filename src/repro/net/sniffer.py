"""The traffic-sniffer service (paper §8, Figure 6).

A reconfigurable shell service that inserts a filter between the network
stacks and the 100G CMAC.  RX and TX traffic matching a host-configured
filter is timestamped and stored to a pre-allocated HBM buffer by the
vFPGA-backed application logic; the host later syncs the buffer and a
software parser converts the raw recordings into a standard PCAP file
(see :mod:`repro.net.pcap`), "similar to ibdump or tcpdump".

Control registers (AXI4-Lite, exposed through the shell control BAR):

====  =============================================================
reg   function
====  =============================================================
0     bit 0: capture enable (start/stop recording)
1     direction mask — bit 0: capture RX, bit 1: capture TX
2     QP filter — capture only this destination QP (0 = capture all)
3     mode — 0: full frames, 1: headers only (partial sniffing)
4     (RO) captured frame count
5     (RO) dropped frame count (HBM buffer exhausted)
====  =============================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..axi.lite import RegisterFile
from ..mem.hbm import HbmController
from ..sim.engine import Environment
from ..sim.resources import Store
from .cmac import Cmac
from .headers import BthHeader, EthernetHeader, Ipv4Header, UdpHeader
from .packet import RocePacket
from .pcap import PcapWriter

__all__ = ["TrafficSniffer", "parse_capture_buffer"]

#: On-card record layout: u64 timestamp_ns | u32 length | u32 reserved | frame
_RECORD_HEADER = struct.Struct("<QII")
#: Captured headers-only length: Ethernet + IPv4 + UDP + BTH.
HEADERS_ONLY_BYTES = (
    EthernetHeader.SIZE + Ipv4Header.SIZE + UdpHeader.SIZE + BthHeader.SIZE
)

REG_CTRL = 0
REG_DIRECTION = 1
REG_QP_FILTER = 2
REG_MODE = 3
REG_CAPTURED = 4
REG_DROPPED = 5

DIR_RX = 0x1
DIR_TX = 0x2


class TrafficSniffer:
    """Filterable RX/TX capture into an HBM ring, host-controlled."""

    service_name = "sniffer"

    def __init__(
        self,
        env: Environment,
        cmac: Cmac,
        hbm: HbmController,
        buffer_addr: int,
        buffer_len: int,
        regs: Optional[RegisterFile] = None,
    ):
        self.env = env
        self.cmac = cmac
        self.hbm = hbm
        self.buffer_addr = buffer_addr
        self.buffer_len = buffer_len
        self.regs = regs if regs is not None else RegisterFile("sniffer", size=8)
        self._write_ptr = 0
        self.captured = 0
        self.dropped = 0
        self._queue: Store = Store(env, capacity=256)
        self.regs.on_read(REG_CAPTURED, lambda: self.captured)
        self.regs.on_read(REG_DROPPED, lambda: self.dropped)
        # Default filter: both directions, all QPs, full frames, disabled.
        self.regs.write(REG_DIRECTION, DIR_RX | DIR_TX)
        cmac.rx_taps.append(self._tap_rx)
        cmac.tx_taps.append(self._tap_tx)
        env.process(self._writer(), name="sniffer-writer")

    # ------------------------------------------------------------- control

    def start(self) -> None:
        self.regs.write(REG_CTRL, 1)

    def stop(self) -> None:
        self.regs.write(REG_CTRL, 0)

    @property
    def enabled(self) -> bool:
        return bool(self.regs.read(REG_CTRL) & 1)

    def set_filter(
        self,
        rx: bool = True,
        tx: bool = True,
        qp: int = 0,
        headers_only: bool = False,
    ) -> None:
        self.regs.write(REG_DIRECTION, (DIR_RX if rx else 0) | (DIR_TX if tx else 0))
        self.regs.write(REG_QP_FILTER, qp)
        self.regs.write(REG_MODE, 1 if headers_only else 0)

    # ----------------------------------------------------------- data path

    def _matches(self, direction: int, packet: RocePacket) -> bool:
        if not self.enabled:
            return False
        if not self.regs.read(REG_DIRECTION) & direction:
            return False
        qp_filter = self.regs.read(REG_QP_FILTER)
        if qp_filter:
            bth = getattr(packet, "bth", None)  # non-RoCE frames never match
            if bth is None or bth.dest_qp != qp_filter:
                return False
        return True

    def _tap_rx(self, time_ns: float, packet: RocePacket) -> None:
        if self._matches(DIR_RX, packet):
            self._capture(time_ns, packet)

    def _tap_tx(self, time_ns: float, packet: RocePacket) -> None:
        if self._matches(DIR_TX, packet):
            self._capture(time_ns, packet)

    def _capture(self, time_ns: float, packet: RocePacket) -> None:
        frame = packet.to_bytes()
        if self.regs.read(REG_MODE) == 1:
            frame = frame[:HEADERS_ONLY_BYTES]
        record = _RECORD_HEADER.pack(int(time_ns), len(frame), 0) + frame
        # Pad records to the 64-byte stream width, as the hardware would.
        pad = (-len(record)) % 64
        record += bytes(pad)
        if self._write_ptr + len(record) > self.buffer_len:
            self.dropped += 1
            return
        if self._queue.free < 1:
            self.dropped += 1
            return
        offset = self._write_ptr
        self._write_ptr += len(record)
        self.captured += 1
        self._queue.put((offset, record))

    def _writer(self):
        """Background vFPGA logic draining capture records into HBM."""
        while True:
            offset, record = yield self._queue.get()
            yield self.env.process(self.hbm.write(self.buffer_addr + offset, record))

    # ------------------------------------------------------------ host side

    def sync_to_host(self) -> bytes:
        """Return the raw capture buffer (the shell DMAs this to the host)."""
        return self.hbm.read_now(self.buffer_addr, self._write_ptr)

    def drain(self):
        """Wait until every queued record landed in HBM."""
        while len(self._queue) > 0:
            yield self.env.timeout(100.0)

    def to_pcap(self) -> bytes:
        """Software parser: raw capture buffer -> standard PCAP bytes."""
        writer = PcapWriter()
        for timestamp_ns, frame in parse_capture_buffer(self.sync_to_host()):
            writer.add(timestamp_ns, frame)
        return writer.to_bytes()


def parse_capture_buffer(raw: bytes) -> List[Tuple[float, bytes]]:
    """Decode the on-card record stream into (timestamp, frame) pairs."""
    records = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(raw):
        timestamp, length, _reserved = _RECORD_HEADER.unpack_from(raw, offset)
        if length == 0:
            break
        frame_start = offset + _RECORD_HEADER.size
        records.append((float(timestamp), raw[frame_start : frame_start + length]))
        offset = frame_start + length
        offset += (-offset) % 64  # skip stream-width padding
    return records
