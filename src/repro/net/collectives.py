"""Collective communication over the RDMA service (paper future work).

The conclusion names "support for services such as collective
communication [ACCL+]" as future work; ACCL+ builds collectives on
exactly this kind of FPGA RDMA stack.  This module implements the two
canonical collectives over a fully-connected QP mesh:

* **broadcast** — binomial tree from the root;
* **allreduce** — ring reduce-scatter followed by ring allgather
  (bandwidth-optimal: each node sends ``2 * (n-1)/n * size`` bytes).

Data is real: reductions operate on little-endian int32 vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from ..sim.engine import Environment
from .rdma import RdmaStack

__all__ = ["CollectiveGroup", "CollectiveError", "sum_i32"]


class CollectiveError(Exception):
    """Mesh misconfiguration or mismatched participation."""


def sum_i32(a: bytes, b: bytes) -> bytes:
    """Elementwise wrapping int32 sum — the default reduction."""
    va = np.frombuffer(a, dtype="<u4")
    vb = np.frombuffer(b, dtype="<u4")
    if va.shape != vb.shape:
        raise CollectiveError("reduction operands differ in length")
    return (va + vb).astype("<u4").tobytes()


@dataclass
class _Member:
    rank: int
    stack: RdmaStack
    #: QP this member uses to *send to* each peer rank.
    qp_to: Dict[int, int]


class CollectiveGroup:
    """A communicator over N RDMA stacks with a full QP mesh.

    Construction wires ``n*(n-1)`` queue pairs (one direction each) and
    binds their local memory to simple scratch buffers, so collectives
    are self-contained; integrating with the shell's MMU instead only
    requires passing bound stacks.
    """

    def __init__(self, env: Environment, stacks: List[RdmaStack], qpn_base: int = 0x100):
        if len(stacks) < 2:
            raise CollectiveError("a collective group needs at least 2 members")
        self.env = env
        self.size = len(stacks)
        self.members: List[_Member] = []
        # Create the mesh: member i's QP towards j is qpn_base + i*n + j.
        for i, stack in enumerate(stacks):
            qp_to = {}
            for j in range(self.size):
                if i == j:
                    continue
                qpn = qpn_base + i * self.size + j
                stack.create_qp(qpn, psn=qpn)
                qp_to[j] = qpn
            self.members.append(_Member(rank=i, stack=stack, qp_to=qp_to))
        for i, member in enumerate(self.members):
            for j, qpn in member.qp_to.items():
                peer = self.members[j]
                peer_qpn = peer.qp_to[i]
                member.stack.qps[qpn].connect(peer.stack.qps[peer_qpn].local)

    def _member(self, rank: int) -> _Member:
        if not 0 <= rank < self.size:
            raise CollectiveError(f"rank {rank} outside group of {self.size}")
        return self.members[rank]

    # ------------------------------------------------------------ broadcast

    def broadcast(self, root: int, payload: Optional[bytes], rank: int) -> Generator:
        """Binomial-tree broadcast; every rank calls this, root passes data.

        Returns the payload at every rank.
        """
        member = self._member(rank)
        relative = (rank - root) % self.size
        # Receive from parent unless we are the root.
        if relative != 0:
            parent_rel = relative - (1 << (relative.bit_length() - 1))
            parent = (parent_rel + root) % self.size
            parent_member = self._member(parent)
            payload = yield self.env.process(
                _recv_via_send(parent_member, rank, self)
            )
        if payload is None:
            raise CollectiveError(f"rank {rank}: no payload to forward")
        # Forward to children: relative + 2^k for growing k.
        bit = 1 << relative.bit_length() if relative else 1
        while relative + bit < self.size:
            child = (relative + bit + root) % self.size
            yield self.env.process(_send_bytes(member, child, payload, self))
            bit <<= 1
        return payload

    # ------------------------------------------------------------ allreduce

    def allreduce(
        self,
        payload: bytes,
        rank: int,
        reduce_fn: Callable[[bytes, bytes], bytes] = sum_i32,
    ) -> Generator:
        """Ring allreduce; every rank calls this with its contribution."""
        n = self.size
        if len(payload) % (4 * n):
            raise CollectiveError(
                f"payload must divide into {n} int32-aligned chunks"
            )
        member = self._member(rank)
        chunk = len(payload) // n
        chunks = [bytearray(payload[i * chunk : (i + 1) * chunk]) for i in range(n)]
        right = (rank + 1) % n
        left = (rank - 1) % n
        left_member = self._member(left)
        # Phase 1: reduce-scatter.  Step s: send chunk (rank - s), reduce
        # incoming chunk (rank - s - 1).
        for step in range(n - 1):
            send_idx = (rank - step) % n
            recv_idx = (rank - step - 1) % n
            send_proc = self.env.process(
                _send_bytes(member, right, bytes(chunks[send_idx]), self)
            )
            incoming = yield self.env.process(_recv_via_send(left_member, rank, self))
            chunks[recv_idx] = bytearray(reduce_fn(bytes(chunks[recv_idx]), incoming))
            yield send_proc
        # Phase 2: allgather.  Step s: send chunk (rank + 1 - s), receive
        # chunk (rank - s).
        for step in range(n - 1):
            send_idx = (rank + 1 - step) % n
            recv_idx = (rank - step) % n
            send_proc = self.env.process(
                _send_bytes(member, right, bytes(chunks[send_idx]), self)
            )
            incoming = yield self.env.process(_recv_via_send(left_member, rank, self))
            chunks[recv_idx] = bytearray(incoming)
            yield send_proc
        return b"".join(bytes(c) for c in chunks)


def _send_bytes(member: _Member, to_rank: int, payload: bytes, group: CollectiveGroup) -> Generator:
    qpn = member.qp_to[to_rank]
    yield from member.stack.send(qpn, payload)


def _recv_via_send(from_member: _Member, my_rank: int, group: CollectiveGroup) -> Generator:
    """Receive the next SEND that ``from_member`` directed at ``my_rank``."""
    me = group._member(my_rank)
    qpn = me.qp_to[from_member.rank]  # our QP facing them receives their sends
    payload = yield from me.stack.recv(qpn)
    return payload
