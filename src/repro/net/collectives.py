"""Collective communication over the RDMA service (paper future work).

The conclusion names "support for services such as collective
communication [ACCL+]" as future work; ACCL+ builds collectives on
exactly this kind of FPGA RDMA stack.  This module implements the two
canonical collectives over a fully-connected QP mesh:

* **broadcast** — binomial tree from the root;
* **allreduce** — ring reduce-scatter followed by ring allgather
  (bandwidth-optimal: each node sends ``2 * (n-1)/n * size`` bytes).

Data is real: reductions operate on little-endian int32 vectors.

Fault tolerance follows the NCCL communicator model:

* every send/recv **leg carries a deadline** (the group default, or a
  per-call ``timeout_ns``);
* a leg that fails (``WrFlushError`` from a flushed QP) or times out
  **aborts the whole group symmetrically** — every rank currently parked
  in (or later entering) a collective raises a typed
  :class:`CollectiveAbortError`; no survivor is left parked;
* an aborted group is **dead** until :meth:`CollectiveGroup.rebuild`
  reforms the QP mesh over the survivors, after which the caller retries
  the collective on the shrunken group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from ..sim.engine import AnyOf, Environment, Event, Process
from .rdma import RdmaStack

__all__ = [
    "CollectiveGroup",
    "CollectiveError",
    "CollectiveAbortError",
    "CollectiveTimeoutError",
    "sum_i32",
    "DEFAULT_LEG_TIMEOUT_NS",
]

#: Default per-leg deadline.  Generous against the worst legitimate leg
#: (retry-exhaustion detection at ``8 × 100 µs`` completes first, so a
#: crashed peer surfaces as a flush, not a timeout), yet bounded so even
#: a silent black hole cannot park a rank forever.
DEFAULT_LEG_TIMEOUT_NS = 10_000_000.0


class CollectiveError(Exception):
    """Mesh misconfiguration or mismatched participation."""


class CollectiveAbortError(CollectiveError):
    """The group aborted (NCCL-style): some rank's leg failed or timed
    out, and every rank gets this instead of parking.  The group stays
    dead — further collectives raise immediately — until ``rebuild()``."""

    def __init__(self, op: str, rank: int, peer: Optional[int] = None, cause=None):
        leg = f" (leg to rank {peer})" if peer is not None else ""
        why = f": {cause}" if cause is not None else ""
        super().__init__(f"collective {op!r} aborted at rank {rank}{leg}{why}")
        self.op = op
        self.rank = rank
        self.peer = peer
        self.cause = cause


class CollectiveTimeoutError(CollectiveAbortError):
    """A leg's deadline expired; names the offending (unresponsive) rank."""

    def __init__(self, op: str, rank: int, peer: Optional[int], timeout_ns: float):
        CollectiveError.__init__(
            self,
            f"collective {op!r} timed out at rank {rank} waiting on "
            f"rank {peer} after {timeout_ns:.0f} ns",
        )
        self.op = op
        self.rank = rank
        self.peer = peer
        self.cause = None
        self.timeout_ns = timeout_ns


def sum_i32(a: bytes, b: bytes) -> bytes:
    """Elementwise wrapping int32 sum — the default reduction."""
    va = np.frombuffer(a, dtype="<u4")
    vb = np.frombuffer(b, dtype="<u4")
    if va.shape != vb.shape:
        raise CollectiveError("reduction operands differ in length")
    return (va + vb).astype("<u4").tobytes()


@dataclass
class _Member:
    rank: int
    stack: RdmaStack
    #: QP this member uses to *send to* each peer rank.
    qp_to: Dict[int, int]


class CollectiveGroup:
    """A communicator over N RDMA stacks with a full QP mesh.

    Construction wires ``n*(n-1)`` queue pairs (one direction each) and
    binds their local memory to simple scratch buffers, so collectives
    are self-contained; integrating with the shell's MMU instead only
    requires passing bound stacks.
    """

    def __init__(
        self,
        env: Environment,
        stacks: List[RdmaStack],
        qpn_base: int = 0x100,
        timeout_ns: Optional[float] = DEFAULT_LEG_TIMEOUT_NS,
        stats: Optional[Dict[str, int]] = None,
    ):
        if len(stacks) < 2:
            raise CollectiveError("a collective group needs at least 2 members")
        self.env = env
        self.size = len(stacks)
        self.qpn_base = qpn_base
        self.timeout_ns = timeout_ns
        #: Shared across rebuilds: the communicator's lifetime counters.
        self.stats: Dict[str, int] = (
            stats
            if stats is not None
            else {"completed": 0, "timeouts": 0, "aborts": 0, "rebuilds": 0}
        )
        #: First abort to land; sticky until ``rebuild()`` (NCCL: an
        #: aborted communicator never comes back — you make a new one).
        self._aborted: Optional[CollectiveAbortError] = None
        self._abort_waiters: List[Event] = []
        self.members: List[_Member] = []
        # Create the mesh: member i's QP towards j is qpn_base + i*n + j.
        for i, stack in enumerate(stacks):
            qp_to = {}
            for j in range(self.size):
                if i == j:
                    continue
                qpn = qpn_base + i * self.size + j
                stack.create_qp(qpn, psn=qpn)
                qp_to[j] = qpn
            self.members.append(_Member(rank=i, stack=stack, qp_to=qp_to))
        for i, member in enumerate(self.members):
            for j, qpn in member.qp_to.items():
                peer = self.members[j]
                peer_qpn = peer.qp_to[i]
                member.stack.qps[qpn].connect(peer.stack.qps[peer_qpn].local)

    def _member(self, rank: int) -> _Member:
        if not 0 <= rank < self.size:
            raise CollectiveError(f"rank {rank} outside group of {self.size}")
        return self.members[rank]

    @property
    def aborted(self) -> bool:
        return self._aborted is not None

    # --------------------------------------------------------- abort machinery

    def _abort(self, exc: CollectiveAbortError) -> None:
        """First failure wins; wake every rank parked in ``_await_leg``.
        Waiters are *succeeded* (not failed) — each rank then raises its
        own per-rank :class:`CollectiveAbortError`."""
        if self._aborted is not None:
            return
        self._aborted = exc
        self.stats["aborts"] += 1
        waiters, self._abort_waiters = self._abort_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def _spawn(self, generator: Generator, label: str) -> Process:
        proc = self.env.process(generator, name=label)
        # A leg may fail after its awaiting AnyOf already settled (abort
        # and failure racing in the same step); pre-defuse so the orphaned
        # failure cannot crash the simulation loop.
        proc.defuse()
        return proc

    @staticmethod
    def _cancel(proc: Process) -> None:
        if proc.is_alive:
            proc.interrupt("collective leg cancelled")

    def _ensure_usable(self, op: str, rank: int) -> None:
        if self._aborted is not None:
            raise CollectiveAbortError(op, rank, cause=self._aborted)

    def _await_leg(
        self,
        proc: Process,
        rank: int,
        peer: int,
        op: str,
        timeout_ns: Optional[float],
    ) -> Generator:
        """Wait for one send/recv leg under the group's failure contract:
        first of {leg done, group abort, deadline} wins."""
        if self._aborted is not None:
            self._cancel(proc)
            raise CollectiveAbortError(op, rank, peer, cause=self._aborted)
        waiter = Event(self.env)
        self._abort_waiters.append(waiter)
        watch: List[Event] = [proc, waiter]
        if timeout_ns is not None:
            watch.append(self.env.timeout(timeout_ns))
        try:
            yield AnyOf(self.env, watch)
        except Exception as exc:
            # The leg itself failed (typically WrFlushError from a QP that
            # saw retry exhaustion, or QpStateError on a halted stack):
            # this rank detected the fault — abort everyone.
            abort = CollectiveAbortError(op, rank, peer, cause=exc)
            self._abort(abort)
            raise abort from exc
        finally:
            try:
                self._abort_waiters.remove(waiter)
            except ValueError:
                pass
        if proc.triggered and proc.ok:
            return proc.value
        if self._aborted is not None:
            # Another rank aborted the group while our leg was in flight.
            self._cancel(proc)
            raise CollectiveAbortError(op, rank, peer, cause=self._aborted)
        # Deadline expired with the leg still pending: the peer is
        # unresponsive but nothing flushed — declare it and abort.
        self.stats["timeouts"] += 1
        self._cancel(proc)
        timeout_exc = CollectiveTimeoutError(op, rank, peer, float(timeout_ns))
        self._abort(timeout_exc)
        raise timeout_exc

    # ------------------------------------------------------------ broadcast

    def broadcast(
        self,
        root: int,
        payload: Optional[bytes],
        rank: int,
        timeout_ns: Optional[float] = None,
    ) -> Generator:
        """Binomial-tree broadcast; every rank calls this, root passes data.

        Returns the payload at every rank.
        """
        member = self._member(rank)
        self._ensure_usable("broadcast", rank)
        deadline = self.timeout_ns if timeout_ns is None else timeout_ns
        relative = (rank - root) % self.size
        # Receive from parent unless we are the root.
        if relative != 0:
            parent_rel = relative - (1 << (relative.bit_length() - 1))
            parent = (parent_rel + root) % self.size
            parent_member = self._member(parent)
            recv_proc = self._spawn(
                _recv_via_send(parent_member, rank, self), f"bcast-recv-{rank}"
            )
            payload = yield from self._await_leg(
                recv_proc, rank, parent, "broadcast", deadline
            )
        if payload is None:
            raise CollectiveError(f"rank {rank}: no payload to forward")
        # Forward to children: relative + 2^k for growing k.
        bit = 1 << relative.bit_length() if relative else 1
        while relative + bit < self.size:
            child = (relative + bit + root) % self.size
            send_proc = self._spawn(
                _send_bytes(member, child, payload, self), f"bcast-send-{rank}-{child}"
            )
            yield from self._await_leg(send_proc, rank, child, "broadcast", deadline)
            bit <<= 1
        self.stats["completed"] += 1
        return payload

    # ------------------------------------------------------------ allreduce

    def allreduce(
        self,
        payload: bytes,
        rank: int,
        reduce_fn: Callable[[bytes, bytes], bytes] = sum_i32,
        timeout_ns: Optional[float] = None,
    ) -> Generator:
        """Ring allreduce; every rank calls this with its contribution."""
        n = self.size
        if len(payload) % (4 * n):
            raise CollectiveError(
                f"payload must divide into {n} int32-aligned chunks"
            )
        member = self._member(rank)
        self._ensure_usable("allreduce", rank)
        deadline = self.timeout_ns if timeout_ns is None else timeout_ns
        chunk = len(payload) // n
        chunks = [bytearray(payload[i * chunk : (i + 1) * chunk]) for i in range(n)]
        right = (rank + 1) % n
        left = (rank - 1) % n
        left_member = self._member(left)
        # Phase 1: reduce-scatter.  Step s: send chunk (rank - s), reduce
        # incoming chunk (rank - s - 1).
        for step in range(n - 1):
            send_idx = (rank - step) % n
            recv_idx = (rank - step - 1) % n
            send_proc = self._spawn(
                _send_bytes(member, right, bytes(chunks[send_idx]), self),
                f"ar-send-{rank}-{step}",
            )
            recv_proc = self._spawn(
                _recv_via_send(left_member, rank, self), f"ar-recv-{rank}-{step}"
            )
            incoming = yield from self._await_leg(
                recv_proc, rank, left, "allreduce", deadline
            )
            chunks[recv_idx] = bytearray(reduce_fn(bytes(chunks[recv_idx]), incoming))
            yield from self._await_leg(send_proc, rank, right, "allreduce", deadline)
        # Phase 2: allgather.  Step s: send chunk (rank + 1 - s), receive
        # chunk (rank - s).
        for step in range(n - 1):
            send_idx = (rank + 1 - step) % n
            recv_idx = (rank - step) % n
            send_proc = self._spawn(
                _send_bytes(member, right, bytes(chunks[send_idx]), self),
                f"ag-send-{rank}-{step}",
            )
            recv_proc = self._spawn(
                _recv_via_send(left_member, rank, self), f"ag-recv-{rank}-{step}"
            )
            incoming = yield from self._await_leg(
                recv_proc, rank, left, "allreduce", deadline
            )
            chunks[recv_idx] = bytearray(incoming)
            yield from self._await_leg(send_proc, rank, right, "allreduce", deadline)
        self.stats["completed"] += 1
        return b"".join(bytes(c) for c in chunks)

    # -------------------------------------------------------------- rebuild

    def rebuild(self, survivors: List[int]) -> "CollectiveGroup":
        """Reform the communicator over the surviving ranks.

        Tears down the survivors' half of the old QP mesh (flushing any
        stragglers) and wires a fresh mesh at a disjoint QPN range.
        Ranks are renumbered ``0..len(survivors)-1`` in the order given;
        the new group shares this one's lifetime ``stats``.  The old
        group object stays dead.
        """
        ranks = list(survivors)
        if len(ranks) < 2:
            raise CollectiveError("rebuild needs at least 2 survivors")
        if len(set(ranks)) != len(ranks):
            raise CollectiveError("rebuild survivors must be unique")
        for rank in ranks:
            member = self._member(rank)
            if member.stack.halted:
                raise CollectiveError(
                    f"rank {rank}: stack is halted; not a survivor"
                )
        for rank in ranks:
            member = self.members[rank]
            for peer in sorted(member.qp_to):
                qpn = member.qp_to[peer]
                if qpn in member.stack.qps:
                    member.stack.destroy_qp(qpn)
        self.stats["rebuilds"] += 1
        if self._aborted is None:
            # A voluntary shrink still kills this group: its mesh is gone.
            self._abort(CollectiveAbortError("rebuild", ranks[0]))
        return CollectiveGroup(
            self.env,
            [self.members[rank].stack for rank in ranks],
            qpn_base=self.qpn_base + self.size * self.size,
            timeout_ns=self.timeout_ns,
            stats=self.stats,
        )

    # ------------------------------------------------------------ telemetry

    def export_metrics(self, registry) -> None:
        """Fold the communicator's lifetime counters into a registry
        (additive, so several groups aggregate per cluster)."""
        registry.counter("collectives.completed").inc(self.stats["completed"])
        registry.counter("collectives.timeouts").inc(self.stats["timeouts"])
        registry.counter("collectives.aborts").inc(self.stats["aborts"])
        registry.counter("collectives.rebuilds").inc(self.stats["rebuilds"])


def _send_bytes(member: _Member, to_rank: int, payload: bytes, group: CollectiveGroup) -> Generator:
    qpn = member.qp_to[to_rank]
    yield from member.stack.send(qpn, payload)


def _recv_via_send(from_member: _Member, my_rank: int, group: CollectiveGroup) -> Generator:
    """Receive the next SEND that ``from_member`` directed at ``my_rank``."""
    me = group._member(my_rank)
    qpn = me.qp_to[from_member.rank]  # our QP facing them receives their sends
    payload = yield from me.stack.recv(qpn)
    return payload
