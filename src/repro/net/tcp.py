"""TCP/IP offload stack: the shell's alternative networking service.

Requirement 1 (paper §2.2) names "switching from TCP/IP to RDMA" as the
canonical service reconfiguration, and BALBOA's upstream repository ships
both stacks.  This module implements a functional TCP engine over the same
CMAC/switch fabric as the RoCE stack: three-way handshake, MSS
segmentation, cumulative ACKs, go-back-N retransmission, receive-window
flow control and FIN teardown — with byte-accurate header serialisation.

It is intentionally a hardware-offload-style TCP (like the 100G HLS stack
Coyote integrates): single-segment options, no SACK, no congestion window
(data centers run it under DCQCN/PFC anyway); flow control is the
advertised receive window.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Generator, Optional, Tuple

from ..sim.engine import Environment, Event
from ..sim.resources import Store
from .cmac import Cmac
from .headers import ETHERTYPE_IPV4, EthernetHeader, Ipv4Header, MacAddress

__all__ = ["TcpHeader", "TcpPacket", "TcpStack", "TcpConnection", "TcpError", "TcpState"]

IP_PROTO_TCP = 6
MSS = 1460  # classic Ethernet MSS
DEFAULT_WINDOW = 64 * 1024


class TcpError(Exception):
    """Protocol misuse or connection failure."""


class TcpFlags:
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass
class TcpHeader:
    """20-byte TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    checksum: int = 0

    SIZE = 20

    def pack(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (5 << 4),  # data offset 5 words
            self.flags,
            self.window,
            self.checksum,
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        if len(data) < cls.SIZE:
            raise ValueError("truncated TCP header")
        (src, dst, seq, ack, offset, flags, window, checksum, _urg) = struct.unpack(
            "!HHIIBBHHH", data[:20]
        )
        if offset >> 4 != 5:
            raise ValueError("TCP options not supported")
        return cls(src_port=src, dst_port=dst, seq=seq, ack=ack,
                   flags=flags, window=window, checksum=checksum)

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)


@dataclass
class TcpPacket:
    """A TCP segment on the simulated wire (duck-types RocePacket for the
    CMAC/switch/sniffer, which only need ``eth``, ``wire_length`` and
    ``to_bytes``)."""

    eth: EthernetHeader
    ip: Ipv4Header
    tcp: TcpHeader
    payload: bytes = b""

    @property
    def wire_length(self) -> int:
        return EthernetHeader.SIZE + Ipv4Header.SIZE + TcpHeader.SIZE + len(self.payload)

    @property
    def payload_length(self) -> int:
        return len(self.payload)

    def to_bytes(self) -> bytes:
        return self.eth.pack() + self.ip.pack() + self.tcp.pack() + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpPacket":
        eth = EthernetHeader.unpack(data)
        offset = EthernetHeader.SIZE
        ip = Ipv4Header.unpack(data[offset:])
        if ip.protocol != IP_PROTO_TCP:
            raise ValueError("not a TCP packet")
        offset += Ipv4Header.SIZE
        tcp = TcpHeader.unpack(data[offset:])
        offset += TcpHeader.SIZE
        payload = data[offset : EthernetHeader.SIZE + ip.total_length]
        return cls(eth=eth, ip=ip, tcp=tcp, payload=bytes(payload))

    def describe(self) -> str:
        names = []
        for name, bit in [("SYN", TcpFlags.SYN), ("ACK", TcpFlags.ACK),
                          ("FIN", TcpFlags.FIN), ("RST", TcpFlags.RST),
                          ("PSH", TcpFlags.PSH)]:
            if self.tcp.has(bit):
                names.append(name)
        return (
            f"TCP {self.tcp.src_port}->{self.tcp.dst_port} "
            f"[{','.join(names) or '.'}] seq={self.tcp.seq} ack={self.tcp.ack} "
            f"len={len(self.payload)}"
        )


class TcpState(Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    CLOSING = "closing"


def _seq_lt(a: int, b: int) -> bool:
    return ((b - a) & 0xFFFFFFFF) < 0x8000_0000 and a != b


@dataclass
class TcpConnection:
    """One connection's state; byte-stream API via the owning stack."""

    stack: "TcpStack"
    local_port: int
    remote_ip: int = 0
    remote_port: int = 0
    remote_mac: Optional[MacAddress] = None
    state: TcpState = TcpState.CLOSED
    snd_una: int = 0  # oldest unacked seq
    snd_nxt: int = 0  # next seq to send
    rcv_nxt: int = 0  # next expected seq
    peer_window: int = DEFAULT_WINDOW
    # retransmission buffer: seq -> (payload, flags)
    _inflight: Dict[int, Tuple[bytes, int]] = field(default_factory=dict)
    _rx_buffer: bytearray = field(default_factory=bytearray)
    _rx_waiters: list = field(default_factory=list)
    _established: Optional[Event] = None
    _closed: Optional[Event] = None
    _last_progress: float = 0.0
    retransmissions: int = 0

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    @property
    def rcv_window(self) -> int:
        return max(0, DEFAULT_WINDOW - len(self._rx_buffer))

    # ----------------------------------------------------------- user API

    def send(self, data: bytes) -> Generator:
        """Reliable byte-stream send; returns when fully acknowledged."""
        yield from self.stack._send_stream(self, data)

    def recv(self, nbytes: int) -> Generator:
        """Blocking receive of exactly ``nbytes``."""
        while len(self._rx_buffer) < nbytes:
            waiter = Event(self.stack.env)
            self._rx_waiters.append(waiter)
            yield waiter
        out = bytes(self._rx_buffer[:nbytes])
        del self._rx_buffer[:nbytes]
        return out

    def close(self) -> Generator:
        yield from self.stack._close(self)


class TcpStack:
    """One node's TCP engine bound to a CMAC port."""

    def __init__(
        self,
        env: Environment,
        cmac: Cmac,
        mac: MacAddress,
        ip: int,
        rx_queue: Optional[Store] = None,
        retransmit_timeout_ns: float = 200_000.0,
        per_packet_processing_ns: float = 50.0,
        name: str = "tcp",
    ):
        self.env = env
        self.cmac = cmac
        self.mac = mac
        self.ip = ip
        self.name = name
        self.retransmit_timeout_ns = retransmit_timeout_ns
        self.per_packet_processing_ns = per_packet_processing_ns
        self._rx_queue = rx_queue if rx_queue is not None else cmac.rx_queue
        self._listeners: Dict[int, Store] = {}  # port -> accept queue
        self._connections: Dict[Tuple[int, int, int], TcpConnection] = {}
        self._iss = 1000  # deterministic initial sequence numbers
        self.stats = {"tx": 0, "rx": 0, "retransmissions": 0, "resets": 0}
        env.process(self._rx_loop(), name=f"{name}-rx")
        env.process(self._retransmit_timer(), name=f"{name}-timer")

    # ------------------------------------------------------------ user API

    def listen(self, port: int) -> Store:
        """Open a passive socket; returns the accept queue of connections."""
        if port in self._listeners:
            raise TcpError(f"port {port} already listening")
        queue = Store(self.env)
        self._listeners[port] = queue
        return queue

    def accept(self, port: int) -> Generator:
        queue = self._listeners.get(port)
        if queue is None:
            raise TcpError(f"port {port} is not listening")  # eager check

        def _wait() -> Generator:
            conn = yield queue.get()
            return conn

        return _wait()

    def connect(
        self, remote_mac: MacAddress, remote_ip: int, remote_port: int, local_port: int
    ) -> Generator:
        """Active open: three-way handshake; returns the connection."""
        conn = TcpConnection(
            stack=self,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            remote_mac=remote_mac,
        )
        self._iss += 64_000
        conn.snd_una = conn.snd_nxt = self._iss
        conn.state = TcpState.SYN_SENT
        conn._established = Event(self.env)
        self._connections[conn.key] = conn
        yield from self._transmit(conn, flags=TcpFlags.SYN, consume_seq=True)
        yield conn._established
        return conn

    # ------------------------------------------------------------ TX side

    def _segment_header(self, conn: TcpConnection, flags: int, seq: int) -> TcpHeader:
        return TcpHeader(
            src_port=conn.local_port,
            dst_port=conn.remote_port,
            seq=seq,
            ack=conn.rcv_nxt if flags & TcpFlags.ACK else 0,
            flags=flags,
            window=conn.rcv_window,
        )

    def _build(self, conn: TcpConnection, header: TcpHeader, payload: bytes) -> TcpPacket:
        ip_header = Ipv4Header(
            src=self.ip,
            dst=conn.remote_ip,
            total_length=Ipv4Header.SIZE + TcpHeader.SIZE + len(payload),
            protocol=IP_PROTO_TCP,
        )
        eth = EthernetHeader(dst=conn.remote_mac, src=self.mac, ethertype=ETHERTYPE_IPV4)
        return TcpPacket(eth=eth, ip=ip_header, tcp=header, payload=payload)

    def _transmit(
        self,
        conn: TcpConnection,
        flags: int,
        payload: bytes = b"",
        consume_seq: bool = False,
        seq: Optional[int] = None,
    ) -> Generator:
        seq = conn.snd_nxt if seq is None else seq
        header = self._segment_header(conn, flags, seq)
        packet = self._build(conn, header, payload)
        if consume_seq:
            consumed = len(payload) or 1  # SYN/FIN consume one seq number
            conn._inflight[seq] = (payload, flags)
            conn.snd_nxt = (seq + consumed) & 0xFFFFFFFF
        yield self.env.timeout(self.per_packet_processing_ns)
        yield from self.cmac.tx(packet)
        self.stats["tx"] += 1

    def _send_stream(self, conn: TcpConnection, data: bytes) -> Generator:
        if conn.state is not TcpState.ESTABLISHED:
            raise TcpError(f"send on {conn.state.value} connection")
        offset = 0
        while offset < len(data):
            # Flow control: respect the peer's advertised window.
            while (conn.snd_nxt - conn.snd_una) & 0xFFFFFFFF >= max(conn.peer_window, MSS):
                waiter = Event(self.env)
                conn._rx_waiters.append(waiter)  # woken by any ack progress
                yield waiter
            chunk = data[offset : offset + MSS]
            offset += len(chunk)
            push = TcpFlags.ACK | (TcpFlags.PSH if offset >= len(data) else 0)
            yield from self._transmit(conn, flags=push, payload=chunk, consume_seq=True)
        # Wait until everything is acknowledged.
        while conn._inflight:
            waiter = Event(self.env)
            conn._rx_waiters.append(waiter)
            yield waiter

    def _close(self, conn: TcpConnection) -> Generator:
        if conn.state is TcpState.ESTABLISHED:
            conn.state = TcpState.FIN_WAIT
        elif conn.state is TcpState.CLOSE_WAIT:
            conn.state = TcpState.CLOSING
        conn._closed = Event(self.env)
        yield from self._transmit(conn, flags=TcpFlags.FIN | TcpFlags.ACK, consume_seq=True)
        yield conn._closed

    # ------------------------------------------------------------ RX side

    def _wake(self, conn: TcpConnection) -> None:
        waiters, conn._rx_waiters = conn._rx_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def _rx_loop(self) -> Generator:
        while True:
            packet = yield self._rx_queue.get()
            if not isinstance(packet, TcpPacket):
                continue  # other protocol (shared fabric)
            yield self.env.timeout(self.per_packet_processing_ns)
            self.stats["rx"] += 1
            yield from self._handle(packet)

    def _handle(self, packet: TcpPacket) -> Generator:
        header = packet.tcp
        key = (header.dst_port, packet.ip.src, header.src_port)
        conn = self._connections.get(key)
        if conn is None:
            if header.has(TcpFlags.SYN) and not header.has(TcpFlags.ACK):
                yield from self._handle_passive_open(packet)
            else:
                self.stats["resets"] += 1  # stray segment: would RST
            return
        # ACK processing (cumulative).
        if header.has(TcpFlags.ACK) and conn.state is not TcpState.LISTEN:
            self._process_ack(conn, header)
        if header.has(TcpFlags.SYN) and conn.state is TcpState.SYN_SENT:
            # SYN-ACK of our active open.
            conn.rcv_nxt = (header.seq + 1) & 0xFFFFFFFF
            conn.state = TcpState.ESTABLISHED
            yield from self._transmit(conn, flags=TcpFlags.ACK)
            if conn._established is not None and not conn._established.triggered:
                conn._established.succeed()
            return
        if conn.state is TcpState.SYN_RECEIVED and header.has(TcpFlags.ACK):
            conn.state = TcpState.ESTABLISHED
        # In-order payload delivery.
        if packet.payload:
            if header.seq == conn.rcv_nxt:
                conn.rcv_nxt = (conn.rcv_nxt + len(packet.payload)) & 0xFFFFFFFF
                conn._rx_buffer += packet.payload
                self._wake(conn)
                yield from self._transmit(conn, flags=TcpFlags.ACK)
            elif _seq_lt(header.seq, conn.rcv_nxt):
                # Duplicate: re-ack.
                yield from self._transmit(conn, flags=TcpFlags.ACK)
            else:
                # Out of order (go-back-N receiver): ack what we have.
                yield from self._transmit(conn, flags=TcpFlags.ACK)
        if header.has(TcpFlags.FIN) and header.seq == conn.rcv_nxt:
            conn.rcv_nxt = (conn.rcv_nxt + 1) & 0xFFFFFFFF
            if conn.state is TcpState.ESTABLISHED:
                conn.state = TcpState.CLOSE_WAIT
            elif conn.state in (TcpState.FIN_WAIT, TcpState.CLOSING):
                conn.state = TcpState.CLOSED
                if conn._closed is not None and not conn._closed.triggered:
                    conn._closed.succeed()
            yield from self._transmit(conn, flags=TcpFlags.ACK)

    def _handle_passive_open(self, packet: TcpPacket) -> Generator:
        header = packet.tcp
        queue = self._listeners.get(header.dst_port)
        if queue is None:
            self.stats["resets"] += 1
            return
        conn = TcpConnection(
            stack=self,
            local_port=header.dst_port,
            remote_ip=packet.ip.src,
            remote_port=header.src_port,
            remote_mac=packet.eth.src,
            state=TcpState.SYN_RECEIVED,
        )
        self._iss += 64_000
        conn.snd_una = conn.snd_nxt = self._iss
        conn.rcv_nxt = (header.seq + 1) & 0xFFFFFFFF
        conn.peer_window = header.window
        self._connections[conn.key] = conn
        yield from self._transmit(conn, flags=TcpFlags.SYN | TcpFlags.ACK, consume_seq=True)
        yield queue.put(conn)

    def _process_ack(self, conn: TcpConnection, header: TcpHeader) -> None:
        conn.peer_window = header.window
        ack = header.ack
        if not _seq_lt(conn.snd_una, ack) and ack != conn.snd_nxt:
            return  # old ack
        progressed = False
        for seq in sorted(list(conn._inflight), key=lambda s: (s - conn.snd_una) & 0xFFFFFFFF):
            payload, flags = conn._inflight[seq]
            end = (seq + (len(payload) or 1)) & 0xFFFFFFFF
            if _seq_lt(end, ack) or end == ack or _seq_lt(seq, ack):
                del conn._inflight[seq]
                progressed = True
        if _seq_lt(conn.snd_una, ack):
            conn.snd_una = ack
            progressed = True
        if progressed:
            conn._last_progress = self.env.now
            self._wake(conn)
            if conn._closed is not None and not conn._inflight and conn.state is TcpState.CLOSED:
                if not conn._closed.triggered:
                    conn._closed.succeed()

    # --------------------------------------------------------- retransmit

    def _retransmit_timer(self) -> Generator:
        while True:
            yield self.env.timeout(self.retransmit_timeout_ns)
            for conn in list(self._connections.values()):
                if not conn._inflight:
                    continue
                if self.env.now - conn._last_progress < self.retransmit_timeout_ns:
                    continue
                # Go-back-N: resend everything outstanding, oldest first.
                for seq in sorted(
                    list(conn._inflight), key=lambda s: (s - conn.snd_una) & 0xFFFFFFFF
                ):
                    payload, flags = conn._inflight[seq]
                    conn.retransmissions += 1
                    self.stats["retransmissions"] += 1
                    yield from self._transmit(conn, flags=flags, payload=payload, seq=seq)
                conn._last_progress = self.env.now
