"""Networking substrate: RoCE v2 stack, CMAC, switch fabric, sniffer, PCAP."""

from .cmac import CMAC_BANDWIDTH, Cmac
from .collectives import (
    CollectiveAbortError,
    CollectiveError,
    CollectiveGroup,
    CollectiveTimeoutError,
    sum_i32,
)
from .headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    ROCE_UDP_PORT,
    AethHeader,
    BthHeader,
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    RethHeader,
    RoceOpcode,
    UdpHeader,
    icrc32,
)
from .packet import ParseError, RocePacket
from .pcap import PcapWriter, read_pcap
from .qp import PSN_MOD, QpEndpoint, QpState, QpTransitionError, QueuePair
from .rdma import (
    Completion,
    QpStateError,
    RdmaConfig,
    RdmaError,
    RdmaStack,
    WrFlushError,
)
from .sniffer import TrafficSniffer, parse_capture_buffer
from .switch import Switch
from .tcp import TcpConnection, TcpError, TcpHeader, TcpPacket, TcpStack, TcpState

__all__ = [
    "MacAddress",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "BthHeader",
    "RethHeader",
    "AethHeader",
    "RoceOpcode",
    "ROCE_UDP_PORT",
    "ETHERTYPE_IPV4",
    "IP_PROTO_UDP",
    "icrc32",
    "RocePacket",
    "ParseError",
    "QueuePair",
    "QpEndpoint",
    "QpState",
    "QpTransitionError",
    "PSN_MOD",
    "RdmaStack",
    "RdmaConfig",
    "RdmaError",
    "QpStateError",
    "WrFlushError",
    "Completion",
    "Cmac",
    "CMAC_BANDWIDTH",
    "Switch",
    "TrafficSniffer",
    "parse_capture_buffer",
    "PcapWriter",
    "read_pcap",
    "TcpStack",
    "TcpConnection",
    "TcpHeader",
    "TcpPacket",
    "TcpState",
    "TcpError",
    "CollectiveGroup",
    "CollectiveError",
    "CollectiveAbortError",
    "CollectiveTimeoutError",
    "sum_i32",
]
