"""Full RoCE v2 packet assembly and parsing.

A :class:`RocePacket` is the unit moving through the CMAC, the switch and
the sniffer.  ``to_bytes``/``from_bytes`` produce/consume the exact on-wire
layout: Ethernet / IPv4 / UDP / BTH [/ RETH] [/ AETH] / payload / ICRC.

Payloads may be real bytes or ``None`` with an explicit length (timing-only
mode); serialisation of a timing-only packet zero-fills the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    ROCE_UDP_PORT,
    AethHeader,
    AtomicAckEthHeader,
    AtomicEthHeader,
    BthHeader,
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    RethHeader,
    RoceOpcode,
    UdpHeader,
    icrc32,
)

__all__ = ["RocePacket", "ParseError"]

ICRC_SIZE = 4


class ParseError(ValueError):
    """Raised when a byte buffer is not a valid RoCE v2 packet."""


@dataclass
class RocePacket:
    """A RoCE v2 packet with optional RETH/AETH extension headers."""

    eth: EthernetHeader
    ip: Ipv4Header
    udp: UdpHeader
    bth: BthHeader
    reth: Optional[RethHeader] = None
    aeth: Optional[AethHeader] = None
    atomic_eth: Optional[AtomicEthHeader] = None
    atomic_ack: Optional[AtomicAckEthHeader] = None
    payload: Optional[bytes] = None
    payload_length: int = 0

    def __post_init__(self) -> None:
        if self.payload is not None:
            self.payload_length = len(self.payload)

    # ------------------------------------------------------------- sizing

    @property
    def transport_length(self) -> int:
        """Bytes from BTH through ICRC (the UDP payload)."""
        size = BthHeader.SIZE
        if self.reth is not None:
            size += RethHeader.SIZE
        if self.aeth is not None:
            size += AethHeader.SIZE
        if self.atomic_eth is not None:
            size += AtomicEthHeader.SIZE
        if self.atomic_ack is not None:
            size += AtomicAckEthHeader.SIZE
        return size + self.payload_length + ICRC_SIZE

    @property
    def wire_length(self) -> int:
        """Total frame size on the wire (without preamble/FCS)."""
        return (
            EthernetHeader.SIZE
            + Ipv4Header.SIZE
            + UdpHeader.SIZE
            + self.transport_length
        )

    # -------------------------------------------------------- constructors

    @classmethod
    def build(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: int,
        dst_ip: int,
        bth: BthHeader,
        reth: Optional[RethHeader] = None,
        aeth: Optional[AethHeader] = None,
        atomic_eth: Optional[AtomicEthHeader] = None,
        atomic_ack: Optional[AtomicAckEthHeader] = None,
        payload: Optional[bytes] = None,
        payload_length: int = 0,
        src_port: int = 49152,
        ecn: int = 0,
    ) -> "RocePacket":
        pkt = cls(
            eth=EthernetHeader(dst=dst_mac, src=src_mac),
            ip=Ipv4Header(src=src_ip, dst=dst_ip, total_length=0, ecn=ecn),
            udp=UdpHeader(src_port=src_port, dst_port=ROCE_UDP_PORT, length=0),
            bth=bth,
            reth=reth,
            aeth=aeth,
            atomic_eth=atomic_eth,
            atomic_ack=atomic_ack,
            payload=payload,
            payload_length=payload_length if payload is None else len(payload),
        )
        pkt.udp.length = UdpHeader.SIZE + pkt.transport_length
        pkt.ip.total_length = Ipv4Header.SIZE + pkt.udp.length
        return pkt

    # ------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        transport = self.bth.pack()
        if self.reth is not None:
            transport += self.reth.pack()
        if self.aeth is not None:
            transport += self.aeth.pack()
        if self.atomic_eth is not None:
            transport += self.atomic_eth.pack()
        if self.atomic_ack is not None:
            transport += self.atomic_ack.pack()
        transport += self.payload if self.payload is not None else bytes(self.payload_length)
        crc = icrc32(transport)
        return (
            self.eth.pack()
            + self.ip.pack()
            + self.udp.pack()
            + transport
            + crc.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RocePacket":
        try:
            eth = EthernetHeader.unpack(data)
            if eth.ethertype != ETHERTYPE_IPV4:
                raise ParseError(f"not IPv4: ethertype {eth.ethertype:#x}")
            offset = EthernetHeader.SIZE
            ip = Ipv4Header.unpack(data[offset:])
            if ip.protocol != IP_PROTO_UDP:
                raise ParseError(f"not UDP: protocol {ip.protocol}")
            offset += Ipv4Header.SIZE
            udp = UdpHeader.unpack(data[offset:])
            if udp.dst_port != ROCE_UDP_PORT:
                raise ParseError(f"not RoCE v2: UDP port {udp.dst_port}")
            offset += UdpHeader.SIZE
            bth = BthHeader.unpack(data[offset:])
            offset += BthHeader.SIZE
            reth = aeth = atomic_eth = atomic_ack = None
            if RoceOpcode.has_reth(bth.opcode):
                reth = RethHeader.unpack(data[offset:])
                offset += RethHeader.SIZE
            if RoceOpcode.has_aeth(bth.opcode):
                aeth = AethHeader.unpack(data[offset:])
                offset += AethHeader.SIZE
            if RoceOpcode.has_atomic_eth(bth.opcode):
                atomic_eth = AtomicEthHeader.unpack(data[offset:])
                offset += AtomicEthHeader.SIZE
            if bth.opcode == RoceOpcode.ATOMIC_ACKNOWLEDGE:
                atomic_ack = AtomicAckEthHeader.unpack(data[offset:])
                offset += AtomicAckEthHeader.SIZE
            trailer = EthernetHeader.SIZE + ip.total_length
            payload = data[offset : trailer - ICRC_SIZE]
            crc = int.from_bytes(data[trailer - ICRC_SIZE : trailer], "big")
        except ParseError:
            raise
        except ValueError as exc:
            raise ParseError(str(exc)) from exc
        transport_bytes = data[
            EthernetHeader.SIZE + Ipv4Header.SIZE + UdpHeader.SIZE : trailer - ICRC_SIZE
        ]
        if icrc32(transport_bytes) != crc:
            raise ParseError("ICRC mismatch")
        return cls(
            eth=eth, ip=ip, udp=udp, bth=bth, reth=reth, aeth=aeth,
            atomic_eth=atomic_eth, atomic_ack=atomic_ack, payload=bytes(payload),
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by the sniffer example)."""
        extra = ""
        if self.reth is not None:
            extra = f" reth(va={self.reth.vaddr:#x}, len={self.reth.dma_length})"
        if self.aeth is not None:
            kind = "NAK" if self.aeth.is_nak else "ACK"
            extra += f" aeth({kind}, msn={self.aeth.msn})"
        return (
            f"{RoceOpcode.name(self.bth.opcode)} qp={self.bth.dest_qp} "
            f"psn={self.bth.psn} len={self.payload_length}{extra}"
        )
