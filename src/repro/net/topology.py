"""Multi-switch fabrics: a 2-tier leaf/spine topology facade.

A single :class:`~repro.net.switch.Switch` models one ToR.  Data-center
RDMA runs across tiers, where congestion is *shared*: an incast at one
leaf backs up into the spines and PFC spreads the pressure to innocent
flows — behavior a single switch cannot exhibit.  This module wires
:class:`Switch` instances into the standard Clos shape:

* ``leaves[i]`` — edge switches; hosts attach round-robin (or to an
  explicit leaf).
* ``spines[j]`` — core tier; every leaf trunks to every spine.
* Leaf→spine traffic ECMP-hashes over the uplinks (deterministic CRC32
  of the flow identity, so one flow keeps one path and packet order).
* Spine→leaf traffic follows static routes installed at ``attach``.
* ``oversubscription`` scales the trunk line rate down relative to the
  host ports (an oversubscription of 4 gives each uplink a quarter of
  the edge bandwidth — the standard knob for provoking core congestion).

The facade re-exposes the single-switch management surface (attach,
kill/revive, partitions, counters, ``faults`` arming) by fanning out to
every member switch, so :class:`repro.cluster.FpgaCluster` and
:class:`repro.faults.FaultInjector` treat a fabric exactly like one
switch.  Aggregate counters *sum* over switches: a frame crossing three
hops counts three times in ``forwarded`` (hop count, not frame count).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .cmac import CMAC_BANDWIDTH, Cmac
from .headers import MacAddress
from .switch import SWITCH_LATENCY_NS, Switch, SwitchConfig

__all__ = ["LeafSpineTopology"]


class LeafSpineTopology:
    """A 2-tier Clos of :class:`Switch` instances behind one facade."""

    def __init__(
        self,
        env,
        leaves: int = 2,
        spines: int = 2,
        latency_ns: float = SWITCH_LATENCY_NS,
        config: Optional[SwitchConfig] = None,
        oversubscription: float = 1.0,
        host_line_rate: float = CMAC_BANDWIDTH,
    ):
        if leaves < 1 or spines < 1:
            raise ValueError("need at least one leaf and one spine")
        if oversubscription <= 0.0:
            raise ValueError("oversubscription must be positive")
        self.env = env
        self.latency_ns = latency_ns
        self.config = config if config is not None else SwitchConfig()
        self.leaves: List[Switch] = [
            Switch(env, latency_ns, self.config, name=f"leaf{i}")
            for i in range(leaves)
        ]
        self.spines: List[Switch] = [
            Switch(env, latency_ns, self.config, name=f"spine{j}")
            for j in range(spines)
        ]
        self.uplink_rate = host_line_rate / oversubscription
        #: (leaf index, spine index) -> (leaf-side key, spine-side key).
        self.trunks: Dict[Tuple[int, int], Tuple[object, object]] = {}
        for i, leaf in enumerate(self.leaves):
            for j, spine in enumerate(self.spines):
                self.trunks[(i, j)] = leaf.connect_trunk(
                    spine, line_rate=self.uplink_rate, ecmp_here=True
                )
        #: Host placement: mac -> owning leaf index.
        self.leaf_of: Dict[MacAddress, int] = {}
        self._next_leaf = 0

    @property
    def switches(self) -> List[Switch]:
        return self.leaves + self.spines

    # ------------------------------------------------------------ topology

    def attach(self, mac: MacAddress, cmac: Cmac, leaf: Optional[int] = None) -> int:
        """Attach a host to a leaf (round-robin when unspecified) and
        install spine→leaf return routes.  Returns the leaf index."""
        index = leaf if leaf is not None else self._next_leaf % len(self.leaves)
        if leaf is None:
            self._next_leaf += 1
        self.leaves[index].attach(mac, cmac)
        self.leaf_of[mac] = index
        for j, spine in enumerate(self.spines):
            _, spine_key = self.trunks[(index, j)]
            spine.add_route(mac, spine_key)
        return index

    def detach(self, mac: MacAddress) -> None:
        index = self.leaf_of.pop(mac, None)
        if index is None:
            raise ValueError(f"port {mac!r} is not attached")
        self.leaves[index].detach(mac)
        for spine in self.spines:
            spine.drop_route(mac)

    def egress_ports(self):
        """Every egress queue in the fabric, deterministically ordered."""
        ports = []
        for switch in self.switches:
            ports.extend(
                (f"{switch.name}.{label}", port)
                for label, port in switch.egress_ports()
            )
        return ports

    # --------------------------------------------- single-switch interface
    # (fan-out so FpgaCluster / FaultInjector treat the fabric as one)

    @property
    def faults(self):
        return self.leaves[0].faults

    @faults.setter
    def faults(self, injector) -> None:
        for switch in self.switches:
            switch.faults = injector

    @property
    def on_node_crash(self):
        return self.leaves[0].on_node_crash

    @on_node_crash.setter
    def on_node_crash(self, callback) -> None:
        for switch in self.switches:
            switch.on_node_crash = callback

    @property
    def on_pfc_storm(self):
        return self.leaves[0].on_pfc_storm

    @on_pfc_storm.setter
    def on_pfc_storm(self, callback: Optional[Callable]) -> None:
        for switch in self.switches:
            switch.on_pfc_storm = callback

    @property
    def pfc_storm_errors(self):
        errors = []
        for switch in self.switches:
            errors.extend(switch.pfc_storm_errors)
        return errors

    def kill_port(self, mac: MacAddress) -> None:
        for switch in self.switches:
            switch.kill_port(mac)

    def revive_port(self, mac: MacAddress) -> None:
        for switch in self.switches:
            switch.revive_port(mac)

    def is_dead(self, mac: MacAddress) -> bool:
        return any(switch.is_dead(mac) for switch in self.switches)

    def partition(self, a: MacAddress, b: MacAddress) -> None:
        for switch in self.switches:
            switch.partition(a, b)

    def heal_partition(self, a: MacAddress, b: MacAddress) -> bool:
        healed = False
        for switch in self.switches:
            healed = switch.heal_partition(a, b) or healed
        return healed

    def heal_all_partitions(self) -> int:
        # Report pairs, not pair×switch entries: every switch holds the
        # same partition set, so the max is the distinct-pair count.
        return max(switch.heal_all_partitions() for switch in self.switches)

    def is_partitioned(self, a: MacAddress, b: MacAddress) -> bool:
        return any(switch.is_partitioned(a, b) for switch in self.switches)

    def link_down(self, mac: MacAddress, duration_ns: Optional[float] = None) -> None:
        index = self.leaf_of.get(mac)
        targets = self.switches if index is None else [self.leaves[index]]
        for switch in targets:
            if duration_ns is None:
                switch.link_down(mac)
            else:
                switch.link_down(mac, duration_ns)

    def link_is_down(self, mac: MacAddress) -> bool:
        return any(switch.link_is_down(mac) for switch in self.switches)

    def counters(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for switch in self.switches:
            for key, value in switch.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def __getattr__(self, name: str):
        # Aggregate counter attributes (forwarded, dropped, ecn_marks, ...)
        # sum across member switches, mirroring the Switch attribute
        # surface telemetry and tests read directly.
        if name.startswith("_"):
            raise AttributeError(name)
        members = self.__dict__.get("leaves", []) + self.__dict__.get("spines", [])
        if members and isinstance(getattr(members[0], name, None), int):
            return sum(getattr(switch, name) for switch in members)
        raise AttributeError(name)
