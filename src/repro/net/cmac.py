"""100G CMAC model: the card's Ethernet MAC.

Serialises frames at 100 Gbit/s (12.5 bytes/ns) with the standard 20-byte
inter-frame overhead (preamble + IPG).  The sniffer service (paper §8)
inserts its filter between the network stacks and the CMAC, so the MAC
exposes TX/RX tap points.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from .packet import RocePacket

__all__ = ["Cmac", "CMAC_BANDWIDTH"]

#: 100 Gbit/s in bytes per nanosecond.
CMAC_BANDWIDTH = 12.5
#: Preamble + start delimiter + minimum inter-packet gap, in bytes.
FRAME_OVERHEAD_BYTES = 20


class Cmac:
    """One port of 100G Ethernet attached to the switch fabric."""

    def __init__(self, env: Environment, name: str = "cmac"):
        self.env = env
        self.name = name
        self._tx_port = Resource(env, capacity=1)
        self.rx_queue: Store = Store(env)
        self._wire: Optional[Callable[[RocePacket], None]] = None
        # Taps: the sniffer filter registers observers here.
        self.tx_taps: List[Callable[[float, RocePacket], None]] = []
        self.rx_taps: List[Callable[[float, RocePacket], None]] = []
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    def attach_wire(self, deliver: Callable[[RocePacket], None]) -> None:
        """Connect to the switch; ``deliver`` enqueues into the fabric."""
        self._wire = deliver

    def tx(self, packet: RocePacket) -> Generator:
        """Serialise one frame onto the wire."""
        if self._wire is None:
            raise RuntimeError(f"{self.name}: not attached to a wire")
        grant = self._tx_port.request()
        yield grant
        try:
            wire_bytes = packet.wire_length + FRAME_OVERHEAD_BYTES
            yield self.env.timeout(wire_bytes / CMAC_BANDWIDTH)
        finally:
            self._tx_port.release(grant)
        self.tx_frames += 1
        self.tx_bytes += packet.wire_length
        for tap in self.tx_taps:
            tap(self.env.now, packet)
        self._wire(packet)

    def deliver(self, packet: RocePacket) -> None:
        """Called by the switch when a frame arrives for this port."""
        self.rx_frames += 1
        self.rx_bytes += packet.wire_length
        for tap in self.rx_taps:
            tap(self.env.now, packet)
        self.rx_queue.put(packet)

    def rx(self) -> Generator:
        """Receive the next frame: ``pkt = yield from cmac.rx()``."""
        packet = yield self.rx_queue.get()
        return packet
