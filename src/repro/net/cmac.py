"""100G CMAC model: the card's Ethernet MAC.

Serialises frames at 100 Gbit/s (12.5 bytes/ns) with the standard 20-byte
inter-frame overhead (preamble + IPG).  The sniffer service (paper §8)
inserts its filter between the network stacks and the CMAC, so the MAC
exposes TX/RX tap points.

PFC (IEEE 802.1Qbb) is modelled on both faces of the MAC:

* **Honoring pause** — :meth:`pause` (called by the switch when this
  port's ingress buffer share crosses XOFF) gates :meth:`tx` until the
  hold timer expires, an explicit :meth:`resume` (XON) arrives, or the
  switch's storm watchdog breaks the pause with a typed
  ``PfcStormError`` delivered to every parked sender.
* **Asserting pause** — with ``rx_xoff_frames`` configured, a receive
  backlog past the watermark pauses the *link partner* (the switch
  egress port feeding this MAC), modelling a slow or wedged host NIC —
  the classic trigger of congestion spreading and PFC storms.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..sim.engine import Environment, Event
from ..sim.resources import Resource, Store
from .packet import RocePacket

__all__ = ["Cmac", "CMAC_BANDWIDTH", "PAUSE_QUANTA_NS"]

#: 100 Gbit/s in bytes per nanosecond.
CMAC_BANDWIDTH = 12.5
#: Preamble + start delimiter + minimum inter-packet gap, in bytes.
FRAME_OVERHEAD_BYTES = 20
#: How long one pause frame holds the transmitter.  Real PFC quanta are
#: 512 bit-times each; 10 µs approximates a near-full quanta field at
#: 100G.  The hold timer makes pause *leaky*: an unrefreshed pause
#: expires on its own, which is what keeps storm detection live.
PAUSE_QUANTA_NS = 10_000.0


class Cmac:
    """One port of 100G Ethernet attached to the switch fabric."""

    def __init__(
        self,
        env: Environment,
        name: str = "cmac",
        rx_xoff_frames: Optional[int] = None,
        rx_xon_frames: Optional[int] = None,
    ):
        self.env = env
        self.name = name
        self._tx_port = Resource(env, capacity=1)
        self.rx_queue: Store = Store(env)
        self._wire: Optional[Callable[[RocePacket], None]] = None
        # Taps: the sniffer filter registers observers here.
        self.tx_taps: List[Callable[[float, RocePacket], None]] = []
        self.rx_taps: List[Callable[[float, RocePacket], None]] = []
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        # -- PFC: honoring pause (transmit side) -------------------------
        self._paused_until = 0.0
        self._pause_evt: Optional[Event] = None
        self._pause_timer_active = False
        self.pause_frames_rx = 0  # XOFFs this MAC honored
        self.pause_resumes_rx = 0  # explicit XONs received
        # -- PFC: asserting pause (receive side) --------------------------
        #: Set by the switch at attach time: the egress port feeding this
        #: MAC, pausable when the receive backlog crosses the watermark.
        self.link_partner = None
        self.rx_xoff_frames = rx_xoff_frames
        self.rx_xon_frames = (
            rx_xon_frames
            if rx_xon_frames is not None
            else (max(0, rx_xoff_frames // 2) if rx_xoff_frames else None)
        )
        self._rx_pause_asserted = False
        self.pause_frames_tx = 0  # XOFFs this MAC sent upstream

    def attach_wire(self, deliver: Callable[[RocePacket], None]) -> None:
        """Connect to the switch; ``deliver`` enqueues into the fabric."""
        self._wire = deliver

    # ------------------------------------------------------ PFC honoring

    @property
    def paused(self) -> bool:
        return self.env.now < self._paused_until

    def pause(self, duration_ns: float = PAUSE_QUANTA_NS) -> None:
        """Honor a PFC XOFF: hold the transmitter for ``duration_ns``
        (refreshes extend the hold; the timer expiring resumes on its own)."""
        self.pause_frames_rx += 1
        until = self.env.now + duration_ns
        if until > self._paused_until:
            self._paused_until = until

    def resume(self) -> None:
        """Honor a PFC XON: release the transmitter immediately."""
        self.pause_resumes_rx += 1
        self._release_pause(None)

    def break_pause(self, exc: Exception) -> None:
        """Storm mitigation: tear the pause down, delivering ``exc`` (a
        typed ``PfcStormError``) to every sender parked on it."""
        self._release_pause(exc)

    def _release_pause(self, exc: Optional[Exception]) -> None:
        self._paused_until = self.env.now
        evt = self._pause_evt
        self._pause_evt = None
        if evt is None or evt.triggered:
            return
        if exc is None:
            evt.succeed()
        else:
            # Pre-defuse: the failure must reach parked senders without
            # crashing the loop if one abandoned the wait meanwhile.
            evt.defuse().fail(exc)

    def _pause_gate(self) -> Generator:
        """Park until the pause lifts; re-raises a storm break."""
        while self.env.now < self._paused_until:
            if self._pause_evt is None or self._pause_evt.triggered:
                self._pause_evt = Event(self.env)
            if not self._pause_timer_active:
                self._pause_timer_active = True
                self.env.process(self._pause_timer(), name=f"{self.name}-pfc-hold")
            yield self._pause_evt

    def _pause_timer(self) -> Generator:
        """Hold timer: wakes the gate when the (possibly refreshed) pause
        expires without an explicit XON."""
        try:
            while True:
                remaining = self._paused_until - self.env.now
                if remaining <= 0:
                    break
                yield self.env.timeout(remaining)
        finally:
            self._pause_timer_active = False
        evt = self._pause_evt
        self._pause_evt = None
        if evt is not None and not evt.triggered:
            evt.succeed()

    # ---------------------------------------------------------- datapath

    def tx(self, packet: RocePacket) -> Generator:
        """Serialise one frame onto the wire."""
        if self._wire is None:
            raise RuntimeError(f"{self.name}: not attached to a wire")
        if self.env.now < self._paused_until:
            yield from self._pause_gate()
        grant = self._tx_port.request()
        yield grant
        try:
            # The pause may have landed while we queued for the port.
            if self.env.now < self._paused_until:
                yield from self._pause_gate()
            wire_bytes = packet.wire_length + FRAME_OVERHEAD_BYTES
            yield self.env.timeout(wire_bytes / CMAC_BANDWIDTH)
        finally:
            self._tx_port.release(grant)
        self.tx_frames += 1
        self.tx_bytes += packet.wire_length
        for tap in self.tx_taps:
            tap(self.env.now, packet)
        self._wire(packet)

    def deliver(self, packet: RocePacket) -> None:
        """Called by the switch when a frame arrives for this port."""
        self.rx_frames += 1
        self.rx_bytes += packet.wire_length
        for tap in self.rx_taps:
            tap(self.env.now, packet)
        self.rx_queue.put(packet)
        if (
            self.rx_xoff_frames is not None
            and self.link_partner is not None
            and len(self.rx_queue) >= self.rx_xoff_frames
        ):
            # Receive backlog past the watermark: XOFF the switch egress
            # feeding us.  Every further delivery refreshes the pause, so
            # a wedged host keeps its uplink throttled (and, past the
            # storm threshold, trips the switch's watchdog).
            self._rx_pause_asserted = True
            self.pause_frames_tx += 1
            self.link_partner.pause()

    def rx(self) -> Generator:
        """Receive the next frame: ``pkt = yield from cmac.rx()``."""
        packet = yield self.rx_queue.get()
        if (
            self._rx_pause_asserted
            and self.link_partner is not None
            and len(self.rx_queue) <= (self.rx_xon_frames or 0)
        ):
            self._rx_pause_asserted = False
            self.link_partner.resume()
        return packet
