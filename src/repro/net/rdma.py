"""BALBOA: the RoCE v2 reliable-connection RDMA stack (paper §6.2).

Implements the requester and responder halves of IB RC verbs over the
simulated 100G CMAC: one-sided RDMA WRITE and READ plus two-sided SEND,
with go-back-N retransmission, NAK generation on PSN sequence errors and
cumulative ACKs.  Local buffer addresses are *virtual*: the stack calls
into the shell-injected translate/read/write callbacks, which route
through Coyote's MMU and the static layer — exactly the paper's layering
("the network stack ... operates on virtual memory addresses that are
translated using Coyote v2's internal MMU and TLB, before writing the data
to host memory through the static layer").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..sim.engine import Environment, Event
from ..sim.resources import Container, Store
from .cmac import CMAC_BANDWIDTH, FRAME_OVERHEAD_BYTES, Cmac
from .headers import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    AethHeader,
    BthHeader,
    MacAddress,
    RethHeader,
    RoceOpcode,
)
from .packet import RocePacket
from .qp import PSN_MOD, DcqcnState, QpEndpoint, QpState, QueuePair

__all__ = [
    "RdmaConfig",
    "DcqcnConfig",
    "RdmaStack",
    "Completion",
    "RdmaError",
    "QpStateError",
    "WrFlushError",
]

#: Lazily resolved ``repro.health.PfcStormError`` — the health package
#: imports this module at init, so the reverse import must be deferred.
_PFC_STORM_ERROR = None


def _pfc_storm_error():
    global _PFC_STORM_ERROR
    if _PFC_STORM_ERROR is None:
        from ..health.errors import PfcStormError

        _PFC_STORM_ERROR = PfcStormError
    return _PFC_STORM_ERROR


class RdmaError(Exception):
    """Unrecoverable QP error (e.g. verbs on an unconnected QP)."""


class QpStateError(RdmaError):
    """A verb was armed on a QP whose state cannot carry it (ERROR,
    SQ_ERROR, or simply never connected).  Raised at arm time instead of
    silently queueing work that can never complete."""

    def __init__(self, qpn: int, state: QpState, reason: str = ""):
        detail = f" ({reason})" if reason else ""
        super().__init__(f"QP {qpn} in state {state.value!r}{detail}")
        self.qpn = qpn
        self.state = state
        self.reason = reason


class WrFlushError(RdmaError):
    """An outstanding work request was flushed because its QP moved to
    ERROR (IB completion status ``IBV_WC_WR_FLUSH_ERR``).  Carries enough
    context for the caller to know *which* connection died and why."""

    def __init__(self, qpn: int, wr_id: int = 0, opcode: str = "", reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"QP {qpn} flushed {opcode or 'WR'} wr_id={wr_id}{detail}")
        self.qpn = qpn
        self.wr_id = wr_id
        self.opcode = opcode
        self.reason = reason


def psn_leq(a: int, b: int) -> bool:
    """True if PSN ``a`` <= ``b`` under 24-bit wraparound."""
    return (b - a) % PSN_MOD < PSN_MOD // 2


@dataclass(frozen=True)
class DcqcnConfig:
    """DCQCN (RoCE congestion control) endpoint parameters.

    Off by default: uncongested workloads pay nothing.  When enabled,
    data packets leave ECT(0)-marked, CE-marked arrivals are answered
    with per-QP rate-limited CNPs, and each QP paces its transmissions
    through a :class:`~repro.net.qp.DcqcnState` rate limiter.  Rates are
    bytes/ns; timing defaults follow the DCQCN paper's 55 µs timers
    scaled to the simulated 100G link.
    """

    enabled: bool = False
    #: Uncut rate (bytes/ns): the 100G line by default.
    line_rate: float = CMAC_BANDWIDTH
    #: Floor under multiplicative decrease (1 Gbit/s here).
    min_rate: float = 0.125
    #: EWMA gain for the congestion estimate alpha.
    alpha_g: float = 1.0 / 16.0
    #: Alpha decays once per this period without CNPs.
    alpha_update_ns: float = 55_000.0
    #: Rate-increase round length.
    rate_increase_ns: float = 55_000.0
    #: Fast-recovery rounds before additive increase.
    fast_recovery_rounds: int = 5
    #: Additive / hyper increase steps (bytes/ns per round): the DCQCN
    #: paper's 40 / 400 Mbit/s — gentle enough that the CNP cadence can
    #: hold the aggregate near the bottleneck rate.
    additive_increase: float = 0.005
    hyper_increase: float = 0.05
    #: Per-QP minimum spacing between generated CNPs.
    cnp_interval_ns: float = 50_000.0
    #: Rate a fresh QP starts at (the RPG initial rate knob hardware
    #: reaction points expose); ``0`` means start at line rate.
    initial_rate: float = 0.0

    def make_state(self) -> DcqcnState:
        return DcqcnState(
            line_rate=self.line_rate,
            min_rate=self.min_rate,
            alpha_g=self.alpha_g,
            alpha_update_ns=self.alpha_update_ns,
            rate_increase_ns=self.rate_increase_ns,
            fast_recovery_rounds=self.fast_recovery_rounds,
            additive_increase=self.additive_increase,
            hyper_increase=self.hyper_increase,
            initial_rate=self.initial_rate,
        )


@dataclass(frozen=True)
class RdmaConfig:
    """Stack parameters; MTU 4096 is the RoCE maximum and Coyote's default."""

    mtu: int = 4096
    max_outstanding: int = 64  # requester window, in packets
    retransmit_timeout_ns: float = 100_000.0
    per_packet_processing_ns: float = 30.0  # stack pipeline occupancy
    max_retries: int = 8
    dcqcn: DcqcnConfig = DcqcnConfig()


@dataclass
class Completion:
    """A work completion delivered to the CQ."""

    wr_id: int
    opcode: str
    length: int
    status: str = "success"


@dataclass
class _PendingMessage:
    last_psn: int
    event: Event
    wr_id: int
    opcode: str
    length: int


@dataclass
class _ResponderMsg:
    """Responder-side progress of an in-flight inbound WRITE."""

    vaddr: int = 0
    remaining: int = 0


class RdmaStack:
    """One node's RoCE v2 engine bound to a CMAC port."""

    def __init__(
        self,
        env: Environment,
        cmac: Cmac,
        mac: MacAddress,
        ip: int,
        config: RdmaConfig = RdmaConfig(),
        name: str = "rdma",
        rx_queue=None,
    ):
        self.env = env
        self.cmac = cmac
        #: Packet source: the raw CMAC queue, or a demuxed per-protocol
        #: queue when the shell runs several networking services at once.
        self._rx_queue = rx_queue if rx_queue is not None else cmac.rx_queue
        self.mac = mac
        self.ip = ip
        self.config = config
        self.name = name
        self.qps: Dict[int, QueuePair] = {}
        self.cq: Store = Store(env)
        # Shell-injected local memory access (virtual addresses).
        # Both are generator functions running in simulated time.
        self.read_local: Optional[Callable[[int, int], Generator]] = None
        self.write_local: Optional[Callable[[int, Optional[bytes], int], Generator]] = None
        # Per-QP overrides: each QP belongs to a cThread whose vFPGA MMU
        # must translate its addresses; the shell binds these per QP.
        self.qp_memory: Dict[int, Tuple[Callable, Callable]] = {}
        # Optional on-datapath offload per QP (paper: data routed through
        # the vFPGAs, enabling custom processing like SmartNICs/DPUs).
        self.rx_offloads: Dict[int, Callable[[bytes], bytes]] = {}
        # Requester state.
        self._window = Container(env, capacity=config.max_outstanding, init=config.max_outstanding)
        self._retransmit: Dict[int, Dict[int, RocePacket]] = {}  # qpn -> psn -> pkt
        self._pending: Dict[int, List[_PendingMessage]] = {}
        # Per-QP forward-progress clock: ACK arrival for that QP (or a
        # finished go-back-N round).  Per-QP, not stack-global — a dead
        # peer must exhaust its retry budget even while other QPs on the
        # same stack are making steady progress.
        self._last_progress: Dict[int, float] = {}
        self._timer_parked: Optional[Event] = None
        self._read_collect: Dict[int, dict] = {}  # qpn -> in-flight READ state
        self._atomic_pending: Dict[int, Dict[int, Event]] = {}  # qpn -> psn -> event
        self._recv_queues: Dict[int, Store] = {}
        self._responder_msg: Dict[int, _ResponderMsg] = {}
        self._nak_sent: Dict[int, bool] = {}
        #: Timer-driven go-back-N rounds without forward progress, per QP.
        #: Exceeding ``config.max_retries`` moves the QP to ERROR — the
        #: requester-side signal that the peer (or the path to it) is dead.
        self._retry_counts: Dict[int, int] = {}
        #: True after :meth:`halt` — the whole stack is down (node crash).
        self.halted = False
        #: Per-QP DCQCN reaction-point state (populated by ``create_qp``
        #: when ``config.dcqcn.enabled``).
        self.qp_rates: Dict[int, DcqcnState] = {}
        self._cnp_last_sent: Dict[int, float] = {}
        self.stats = {
            "tx_packets": 0,
            "rx_packets": 0,
            "retransmissions": 0,
            "naks_sent": 0,
            "naks_received": 0,
            "acks_sent": 0,
            "qp_errors": 0,
            "wr_flushes": 0,
            "ecn_ce_received": 0,
            "cnps_sent": 0,
            "cnps_received": 0,
            "pfc_storm_drops": 0,
        }
        #: Per-QP telemetry: completed verbs and payload bytes, the
        #: simulation's per-QP statistics registers.
        self.qp_stats: Dict[int, Dict[str, int]] = {}
        env.process(self._rx_loop(), name=f"{name}-rx")
        env.process(self._retransmit_timer(), name=f"{name}-timer")

    # ------------------------------------------------------------ plumbing

    def bind_memory(
        self,
        read_local: Callable[[int, int], Generator],
        write_local: Callable[[int, Optional[bytes], int], Generator],
    ) -> None:
        self.read_local = read_local
        self.write_local = write_local

    def bind_qp_memory(
        self,
        qpn: int,
        read_local: Callable[[int, int], Generator],
        write_local: Callable[[int, Optional[bytes], int], Generator],
    ) -> None:
        """Route this QP's local accesses through a specific MMU context."""
        self.qp_memory[qpn] = (read_local, write_local)

    def _mem_read(self, qpn: int) -> Callable[[int, int], Generator]:
        bound = self.qp_memory.get(qpn)
        fn = bound[0] if bound else self.read_local
        if fn is None:
            raise RdmaError("stack has no local memory binding")
        return fn

    def _mem_write(self, qpn: int) -> Callable[[int, Optional[bytes], int], Generator]:
        bound = self.qp_memory.get(qpn)
        fn = bound[1] if bound else self.write_local
        if fn is None:
            raise RdmaError("stack has no local memory binding")
        return fn

    def create_qp(self, qpn: int, psn: int = 0, buffer_vaddr: int = 0, buffer_len: int = 0) -> QueuePair:
        if qpn in self.qps:
            raise RdmaError(f"QP {qpn} already exists")
        endpoint = QpEndpoint(
            mac=self.mac, ip=self.ip, qpn=qpn, psn=psn,
            buffer_vaddr=buffer_vaddr, buffer_len=buffer_len,
        )
        qp = QueuePair(local=endpoint)
        self.qps[qpn] = qp
        self._retransmit[qpn] = {}
        self._pending[qpn] = []
        self._recv_queues[qpn] = Store(self.env)
        self._responder_msg[qpn] = _ResponderMsg()
        self._nak_sent[qpn] = False
        self._retry_counts[qpn] = 0
        self._last_progress[qpn] = self.env.now
        self.qp_stats[qpn] = {"ops": 0, "bytes": 0}
        if self.config.dcqcn.enabled:
            self.qp_rates[qpn] = self.config.dcqcn.make_state()
        return qp

    # --------------------------------------------------- QP error machinery

    def qp_error(self, qpn: int, reason: str = "error") -> int:
        """Move a QP to ERROR and flush every outstanding WR with a typed
        :class:`WrFlushError` (IB semantics: the SQ/RQ drain as flushed
        completions; nothing is left parked).  Window credits held by
        unacked packets are refunded so other QPs keep their bandwidth.
        Returns the number of flushed work requests.  Idempotent."""
        qp = self.qps.get(qpn)
        if qp is None:
            raise RdmaError(f"no such QP {qpn}")
        already = qp.state is QpState.ERROR
        qp.to_error(reason)
        if not already:
            self.stats["qp_errors"] += 1
        flushed = 0
        buffered = self._retransmit.get(qpn)
        if buffered:
            self._window.put(len(buffered))
            buffered.clear()
        for msg in self._pending.get(qpn, []):
            self._fail_event(msg.event, WrFlushError(qpn, msg.wr_id, msg.opcode, reason))
            flushed += 1
        self._pending[qpn] = []
        read_state = self._read_collect.pop(qpn, None)
        if read_state is not None:
            self._fail_event(read_state["event"], WrFlushError(qpn, 0, "READ", reason))
            flushed += 1
        atomics = self._atomic_pending.pop(qpn, None)
        if atomics:
            for psn in sorted(atomics):
                self._fail_event(atomics[psn], WrFlushError(qpn, 0, "ATOMIC", reason))
                flushed += 1
        queue = self._recv_queues.get(qpn)
        if queue is not None:
            # Posted receives with no data yet: flush the parked getters.
            while queue._getters:
                getter = queue._getters.popleft()
                if getter._abandoned or getter.triggered:
                    continue
                self._fail_event(getter, WrFlushError(qpn, 0, "RECV", reason))
                flushed += 1
        self.stats["wr_flushes"] += flushed
        return flushed

    @staticmethod
    def _fail_event(event: Event, exc: Exception) -> None:
        if event.triggered:
            return
        # Pre-defuse: a flush may hit an event nobody awaits yet (e.g. a
        # sender still parked on a window credit); an undefused failure
        # would otherwise crash the simulation loop.
        event.defuse().fail(exc)

    def reset_qp(self, qpn: int) -> QueuePair:
        """Flush and return the QP to RESET so recovery can re-connect
        (the verbs ``ERR → RESET → INIT → RTR → RTS`` recycle path)."""
        qp = self.qps.get(qpn)
        if qp is None:
            raise RdmaError(f"no such QP {qpn}")
        if not qp.in_error:
            qp.to_error("reset")
        self.qp_error(qpn, reason="reset")
        qp.reset()
        self._responder_msg[qpn] = _ResponderMsg()
        self._nak_sent[qpn] = False
        self._retry_counts[qpn] = 0
        self._last_progress[qpn] = self.env.now
        self._recv_queues[qpn].items.clear()
        if qpn in self.qp_rates:
            # A re-connecting QP starts its congestion history over.
            self.qp_rates[qpn] = self.config.dcqcn.make_state()
        self._cnp_last_sent.pop(qpn, None)
        return qp

    def destroy_qp(self, qpn: int) -> None:
        """Flush and forget a QP entirely (collective-mesh teardown)."""
        if qpn not in self.qps:
            raise RdmaError(f"no such QP {qpn}")
        self.qp_error(qpn, reason="destroyed")
        del self.qps[qpn]
        del self._retransmit[qpn]
        del self._pending[qpn]
        del self._recv_queues[qpn]
        del self._responder_msg[qpn]
        del self._nak_sent[qpn]
        del self._retry_counts[qpn]
        self._last_progress.pop(qpn, None)
        self._read_collect.pop(qpn, None)
        self._atomic_pending.pop(qpn, None)
        self.qp_rates.pop(qpn, None)
        self._cnp_last_sent.pop(qpn, None)

    def halt(self, reason: str = "node down") -> int:
        """Take the whole stack down (node crash): every QP to ERROR with
        its WRs flushed.  Clearing the retransmit buffers also parks the
        retransmit timer, so a crashed node cannot keep the simulation
        alive retrying into a dead port.  Returns total flushed WRs."""
        self.halted = True
        flushed = 0
        for qpn in sorted(self.qps):
            flushed += self.qp_error(qpn, reason=reason)
        return flushed

    def _complete_op(self, qpn: int, nbytes: int) -> None:
        per_qp = self.qp_stats.setdefault(qpn, {"ops": 0, "bytes": 0})
        per_qp["ops"] += 1
        per_qp["bytes"] += nbytes

    def _qp(self, qpn: int) -> QueuePair:
        qp = self.qps.get(qpn)
        if qp is None:
            raise RdmaError(f"no such QP {qpn}")
        if qp.in_error:
            raise QpStateError(qpn, qp.state, qp.error_reason)
        if not qp.connected:
            raise QpStateError(qpn, qp.state, "not connected")
        return qp

    def _check_sq(self, qpn: int, qp: QueuePair) -> None:
        """Mid-verb state re-check: a flush may land while a requester is
        parked on a window credit; erroring here (with the freshly granted
        credit refunded by the caller) beats transmitting into the void."""
        if qp.in_error:
            raise WrFlushError(qpn, 0, "SQ", qp.error_reason)

    def _segments(self, length: int) -> List[int]:
        mtu = self.config.mtu
        if length == 0:
            return [0]
        return [min(mtu, length - off) for off in range(0, length, mtu)]

    def _flow_port(self, qpn: int) -> int:
        """UDP source port carrying the flow's ECMP entropy: the RoCE v2
        convention of a per-QP value in the dynamic range, so a QP's
        packets always hash onto one fabric path (order-preserving)."""
        return 0xC000 | (qpn & 0x3FFF)

    def _data_ecn(self) -> int:
        """IP ECN codepoint for data packets: ECT(0) announces DCQCN."""
        return ECN_ECT0 if self.config.dcqcn.enabled else ECN_NOT_ECT

    def _send_packet(self, packet: RocePacket, qpn: Optional[int] = None) -> Generator:
        state = self.qp_rates.get(qpn) if qpn is not None else None
        if state is not None:
            gap = state.pacing_gap(
                self.env.now, packet.wire_length + FRAME_OVERHEAD_BYTES
            )
            if gap > 0.0:
                yield self.env.sleep(gap)
        # Pooled sleep: per-packet processing is the hottest delay in the
        # NIC and never composed, so it can reuse a recycled relay event.
        yield self.env.sleep(self.config.per_packet_processing_ns)
        try:
            yield from self.cmac.tx(packet)
        except _pfc_storm_error():
            # The switch's storm watchdog broke our pause: the frame is
            # treated as lost (the retransmit machinery re-drives tracked
            # PSNs once the fabric recovers) instead of parking forever.
            self.stats["pfc_storm_drops"] += 1
            return
        self.stats["tx_packets"] += 1

    # ----------------------------------------------------------- requester

    def rdma_write(
        self,
        qpn: int,
        local_vaddr: int,
        remote_vaddr: int,
        length: int,
        wr_id: int = 0,
    ) -> Generator:
        """One-sided RDMA WRITE; returns once the peer acked the last packet."""
        qp = self._qp(qpn)
        read_fn = self._mem_read(qpn)
        segments = self._segments(length)
        done = Event(self.env)
        # Prefetch pipeline: local-memory reads overlap wire serialisation,
        # as in the hardware datapath where the DMA engine runs ahead of
        # the MAC.  Depth 4 keeps at most 16 KB of staged data.
        staged: Store = Store(self.env, capacity=4)

        def _fetcher():
            position = 0
            for seg in segments:
                data = yield self.env.process(read_fn(local_vaddr + position, seg))
                yield staged.put(data)
                position += seg

        self.env.process(_fetcher(), name=f"{self.name}-wr-fetch")
        offset = 0
        for index, seg_len in enumerate(segments):
            first = index == 0
            last = index == len(segments) - 1
            if first and last:
                opcode = RoceOpcode.RDMA_WRITE_ONLY
            elif first:
                opcode = RoceOpcode.RDMA_WRITE_FIRST
            elif last:
                opcode = RoceOpcode.RDMA_WRITE_LAST
            else:
                opcode = RoceOpcode.RDMA_WRITE_MIDDLE
            # Stage first, then take the credit: with no yield between the
            # credit grant and _track(), a concurrent flush can account for
            # every held credit from the retransmit buffer alone.
            payload = yield staged.get()
            yield self._window.get(1)
            if qp.in_error:
                self._window.put(1)
                self._check_sq(qpn, qp)
            psn = qp.next_psn()
            packet = RocePacket.build(
                src_mac=self.mac,
                dst_mac=qp.remote.mac,
                src_ip=self.ip,
                dst_ip=qp.remote.ip,
                # Request an ack on every packet so the window drains
                # continuously; real responders coalesce these replies.
                bth=BthHeader(opcode=opcode, dest_qp=qp.remote.qpn, psn=psn, ack_request=True),
                reth=RethHeader(vaddr=remote_vaddr, rkey=qp.remote.rkey, dma_length=length)
                if RoceOpcode.has_reth(opcode)
                else None,
                payload=payload if isinstance(payload, (bytes, bytearray)) else None,
                payload_length=seg_len,
                src_port=self._flow_port(qpn),
                ecn=self._data_ecn(),
            )
            self._track(qpn, psn, packet)
            if last:
                self._pending[qpn].append(
                    _PendingMessage(last_psn=psn, event=done, wr_id=wr_id, opcode="WRITE", length=length)
                )
            yield from self._send_packet(packet, qpn)
            offset += seg_len
        yield done
        self._complete_op(qpn, length)
        completion = Completion(wr_id=wr_id, opcode="WRITE", length=length)
        self.cq.put(completion)
        return completion

    def rdma_read(
        self,
        qpn: int,
        local_vaddr: int,
        remote_vaddr: int,
        length: int,
        wr_id: int = 0,
    ) -> Generator:
        """One-sided RDMA READ; returns once the full response arrived."""
        qp = self._qp(qpn)
        nresp = len(self._segments(length))
        start_psn = qp.sq_psn
        # A READ request consumes one PSN per response packet, and one
        # window credit for the request (released when responses ack it).
        yield self._window.get(1)
        if qp.in_error:
            self._window.put(1)
            self._check_sq(qpn, qp)
        for _ in range(nresp):
            qp.next_psn()
        done = Event(self.env)
        self._read_collect[qpn] = {
            "event": done,
            "local_vaddr": local_vaddr,
            "received": 0,
            "length": length,
            "request": None,  # filled below for retransmission
        }
        packet = RocePacket.build(
            src_mac=self.mac,
            dst_mac=qp.remote.mac,
            src_ip=self.ip,
            dst_ip=qp.remote.ip,
            bth=BthHeader(
                opcode=RoceOpcode.RDMA_READ_REQUEST,
                dest_qp=qp.remote.qpn,
                psn=start_psn,
                ack_request=True,
            ),
            reth=RethHeader(vaddr=remote_vaddr, rkey=qp.remote.rkey, dma_length=length),
            src_port=self._flow_port(qpn),
        )
        self._read_collect[qpn]["request"] = packet
        self._track(qpn, start_psn, packet)
        yield from self._send_packet(packet, qpn)
        yield done
        self._complete_op(qpn, length)
        completion = Completion(wr_id=wr_id, opcode="READ", length=length)
        self.cq.put(completion)
        return completion

    def fetch_add(self, qpn: int, remote_vaddr: int, addend: int, wr_id: int = 0) -> Generator:
        """Atomic 64-bit FETCH_ADD at the peer; returns the original value."""
        result = yield from self._atomic(
            qpn, RoceOpcode.FETCH_ADD, remote_vaddr, swap_add=addend, wr_id=wr_id
        )
        return result

    def compare_swap(
        self, qpn: int, remote_vaddr: int, compare: int, swap: int, wr_id: int = 0
    ) -> Generator:
        """Atomic 64-bit CMP_SWAP at the peer; returns the original value
        (the swap happened iff original == compare)."""
        result = yield from self._atomic(
            qpn, RoceOpcode.COMPARE_SWAP, remote_vaddr,
            swap_add=swap, compare=compare, wr_id=wr_id,
        )
        return result

    def _atomic(
        self, qpn: int, opcode: int, remote_vaddr: int,
        swap_add: int, compare: int = 0, wr_id: int = 0,
    ) -> Generator:
        from .headers import AtomicEthHeader

        qp = self._qp(qpn)
        yield self._window.get(1)
        if qp.in_error:
            self._window.put(1)
            self._check_sq(qpn, qp)
        psn = qp.next_psn()
        done = Event(self.env)
        self._atomic_pending.setdefault(qpn, {})[psn] = done
        packet = RocePacket.build(
            src_mac=self.mac,
            dst_mac=qp.remote.mac,
            src_ip=self.ip,
            dst_ip=qp.remote.ip,
            bth=BthHeader(opcode=opcode, dest_qp=qp.remote.qpn, psn=psn, ack_request=True),
            atomic_eth=AtomicEthHeader(
                vaddr=remote_vaddr, rkey=qp.remote.rkey,
                swap_add=swap_add & 0xFFFFFFFFFFFFFFFF,
                compare=compare & 0xFFFFFFFFFFFFFFFF,
            ),
            src_port=self._flow_port(qpn),
        )
        self._track(qpn, psn, packet)
        yield from self._send_packet(packet, qpn)
        original = yield done
        self._complete_op(qpn, 8)
        self.cq.put(Completion(wr_id=wr_id, opcode=RoceOpcode.name(opcode), length=8))
        return original

    def send(self, qpn: int, payload: bytes, wr_id: int = 0) -> Generator:
        """Two-sided SEND of a single message."""
        qp = self._qp(qpn)
        segments = self._segments(len(payload))
        done = Event(self.env)
        offset = 0
        for index, seg_len in enumerate(segments):
            first = index == 0
            last = index == len(segments) - 1
            if first and last:
                opcode = RoceOpcode.SEND_ONLY
            elif first:
                opcode = RoceOpcode.SEND_FIRST
            elif last:
                opcode = RoceOpcode.SEND_LAST
            else:
                opcode = RoceOpcode.SEND_MIDDLE
            yield self._window.get(1)
            if qp.in_error:
                self._window.put(1)
                self._check_sq(qpn, qp)
            psn = qp.next_psn()
            packet = RocePacket.build(
                src_mac=self.mac,
                dst_mac=qp.remote.mac,
                src_ip=self.ip,
                dst_ip=qp.remote.ip,
                bth=BthHeader(opcode=opcode, dest_qp=qp.remote.qpn, psn=psn, ack_request=True),
                payload=payload[offset : offset + seg_len],
                src_port=self._flow_port(qpn),
                ecn=self._data_ecn(),
            )
            self._track(qpn, psn, packet)
            if last:
                self._pending[qpn].append(
                    _PendingMessage(last_psn=psn, event=done, wr_id=wr_id, opcode="SEND", length=len(payload))
                )
            yield from self._send_packet(packet, qpn)
            offset += seg_len
        yield done
        self._complete_op(qpn, len(payload))
        completion = Completion(wr_id=wr_id, opcode="SEND", length=len(payload))
        self.cq.put(completion)
        return completion

    def recv(self, qpn: int) -> Generator:
        """Blocking receive of one SEND message."""
        qp = self.qps.get(qpn)
        if qp is None:
            raise RdmaError(f"no such QP {qpn}")
        if qp.state is QpState.ERROR:
            # SQ_ERROR still delivers inbound work; full ERROR does not.
            raise QpStateError(qpn, qp.state, qp.error_reason)
        message = yield self._recv_queues[qpn].get()
        return message

    # ------------------------------------------------------------ receiver

    def _rx_loop(self) -> Generator:
        while True:
            packet = yield self._rx_queue.get()
            if not isinstance(packet, RocePacket):
                continue  # another protocol on the shared fabric
            self.stats["rx_packets"] += 1
            yield self.env.sleep(self.config.per_packet_processing_ns)
            if self.halted:
                continue  # a crashed node processes nothing
            qpn = packet.bth.dest_qp
            qp = self.qps.get(qpn)
            if qp is None or qp.remote is None:
                continue  # drop traffic for unknown QPs
            if qp.state is QpState.ERROR:
                continue  # ERROR silently discards inbound work (IB)
            if packet.ip.ecn == ECN_CE:
                # Congestion point marked this frame: we are the DCQCN
                # notification point — answer with a (rate-limited) CNP.
                self.stats["ecn_ce_received"] += 1
                self._maybe_send_cnp(qpn, qp)
            opcode = packet.bth.opcode
            if opcode == RoceOpcode.CNP:
                self.stats["cnps_received"] += 1
                state = self.qp_rates.get(qpn)
                if state is not None:
                    state.on_cnp(self.env.now)
            elif opcode == RoceOpcode.ACKNOWLEDGE:
                self._handle_ack(qpn, qp, packet)
            elif opcode == RoceOpcode.ATOMIC_ACKNOWLEDGE:
                self._handle_atomic_ack(qpn, qp, packet)
            elif RoceOpcode.RDMA_READ_RESPONSE_FIRST <= opcode <= RoceOpcode.RDMA_READ_RESPONSE_ONLY:
                yield from self._handle_read_response(qpn, qp, packet)
            elif opcode == RoceOpcode.RDMA_READ_REQUEST:
                yield from self._handle_read_request(qpn, qp, packet)
            elif RoceOpcode.has_atomic_eth(opcode):
                yield from self._handle_atomic_request(qpn, qp, packet)
            else:
                yield from self._handle_inbound_data(qpn, qp, packet)

    def _maybe_send_cnp(self, qpn: int, qp: QueuePair) -> None:
        """Generate a CNP toward the marked flow's sender, at most one
        per QP per ``cnp_interval_ns`` (the notification-point filter).
        Sent from a spawned process: the reverse path may itself be
        congested or paused, and the rx loop must keep draining."""
        interval = self.config.dcqcn.cnp_interval_ns
        last = self._cnp_last_sent.get(qpn)
        if last is not None and self.env.now - last < interval:
            return
        self._cnp_last_sent[qpn] = self.env.now
        cnp = RocePacket.build(
            src_mac=self.mac,
            dst_mac=qp.remote.mac,
            src_ip=self.ip,
            dst_ip=qp.remote.ip,
            bth=BthHeader(opcode=RoceOpcode.CNP, dest_qp=qp.remote.qpn, psn=0),
            src_port=self._flow_port(qp.local.qpn),
        )
        self.stats["cnps_sent"] += 1
        self.env.process(self._send_packet(cnp), name=f"{self.name}-cnp")

    def _ack(self, qp: QueuePair, psn: int, syndrome: int = 0) -> Generator:
        packet = RocePacket.build(
            src_mac=self.mac,
            dst_mac=qp.remote.mac,
            src_ip=self.ip,
            dst_ip=qp.remote.ip,
            bth=BthHeader(opcode=RoceOpcode.ACKNOWLEDGE, dest_qp=qp.remote.qpn, psn=psn),
            aeth=AethHeader(syndrome=syndrome, msn=qp.msn),
            src_port=self._flow_port(qp.local.qpn),
        )
        if syndrome:
            self.stats["naks_sent"] += 1
        else:
            self.stats["acks_sent"] += 1
        yield from self._send_packet(packet)

    def _handle_inbound_data(self, qpn: int, qp: QueuePair, packet: RocePacket) -> Generator:
        """WRITE_* and SEND_* packets at the responder."""
        psn = packet.bth.psn
        if psn != qp.epsn:
            if psn_leq(psn, (qp.epsn - 1) % PSN_MOD):
                # Duplicate from a go-back-N rewind: re-ack, drop.
                yield from self._ack(qp, (qp.epsn - 1) % PSN_MOD)
            elif not self._nak_sent[qpn]:
                # Sequence gap: NAK once with the expected PSN.
                self._nak_sent[qpn] = True
                yield from self._ack(qp, qp.epsn, syndrome=AethHeader.NAK_PSN_SEQUENCE_ERROR)
            return
        self._nak_sent[qpn] = False
        qp.epsn = (qp.epsn + 1) % PSN_MOD
        opcode = packet.bth.opcode
        payload = packet.payload
        offload = self.rx_offloads.get(qpn)
        if offload is not None and payload is not None:
            payload = offload(payload)
        state = self._responder_msg[qpn]
        if opcode in (RoceOpcode.RDMA_WRITE_FIRST, RoceOpcode.RDMA_WRITE_ONLY):
            state.vaddr = packet.reth.vaddr
            state.remaining = packet.reth.dma_length
        if opcode in (
            RoceOpcode.RDMA_WRITE_FIRST,
            RoceOpcode.RDMA_WRITE_MIDDLE,
            RoceOpcode.RDMA_WRITE_LAST,
            RoceOpcode.RDMA_WRITE_ONLY,
        ):
            yield self.env.process(
                self._mem_write(qpn)(state.vaddr, payload, packet.payload_length)
            )
            state.vaddr += packet.payload_length
            state.remaining -= packet.payload_length
            if opcode in (RoceOpcode.RDMA_WRITE_LAST, RoceOpcode.RDMA_WRITE_ONLY):
                qp.msn = (qp.msn + 1) % PSN_MOD
        else:  # SEND family
            buf = self._recv_queues[qpn]
            key = "_send_parts"
            parts = getattr(buf, key, [])
            parts.append(payload or bytes(packet.payload_length))
            setattr(buf, key, parts)
            if opcode in (RoceOpcode.SEND_LAST, RoceOpcode.SEND_ONLY):
                qp.msn = (qp.msn + 1) % PSN_MOD
                buf.put(b"".join(parts))
                setattr(buf, key, [])
        if packet.bth.ack_request:
            yield from self._ack(qp, psn)

    def _handle_atomic_request(self, qpn: int, qp: QueuePair, packet: RocePacket) -> Generator:
        """Responder side of FETCH_ADD / CMP_SWAP: read-modify-write the
        8-byte target atomically (the rx loop serialises us) and return
        the original value in an ATOMIC_ACKNOWLEDGE."""
        from .headers import AtomicAckEthHeader

        psn = packet.bth.psn
        if psn != qp.epsn:
            if not self._nak_sent[qpn]:
                self._nak_sent[qpn] = True
                yield from self._ack(qp, qp.epsn, syndrome=AethHeader.NAK_PSN_SEQUENCE_ERROR)
            return
        self._nak_sent[qpn] = False
        qp.epsn = (qp.epsn + 1) % PSN_MOD
        qp.msn = (qp.msn + 1) % PSN_MOD
        ath = packet.atomic_eth
        raw = yield self.env.process(self._mem_read(qpn)(ath.vaddr, 8))
        original = int.from_bytes(raw, "little") if raw is not None else 0
        if packet.bth.opcode == RoceOpcode.FETCH_ADD:
            updated = (original + ath.swap_add) & 0xFFFFFFFFFFFFFFFF
        else:  # COMPARE_SWAP
            updated = ath.swap_add if original == ath.compare else original
        yield self.env.process(
            self._mem_write(qpn)(ath.vaddr, updated.to_bytes(8, "little"), 8)
        )
        response = RocePacket.build(
            src_mac=self.mac,
            dst_mac=qp.remote.mac,
            src_ip=self.ip,
            dst_ip=qp.remote.ip,
            bth=BthHeader(opcode=RoceOpcode.ATOMIC_ACKNOWLEDGE, dest_qp=qp.remote.qpn, psn=psn),
            aeth=AethHeader(syndrome=0, msn=qp.msn),
            atomic_ack=AtomicAckEthHeader(original=original),
        )
        yield from self._send_packet(response)

    def _handle_atomic_ack(self, qpn: int, qp: QueuePair, packet: RocePacket) -> None:
        """Requester side: the response both acks the PSN and carries the
        original value back to the waiting verb."""
        self._progress_ack(qpn, qp, packet.bth.psn)
        waiter = self._atomic_pending.get(qpn, {}).pop(packet.bth.psn, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(packet.atomic_ack.original)

    def _handle_read_request(self, qpn: int, qp: QueuePair, packet: RocePacket) -> Generator:
        psn = packet.bth.psn
        if psn != qp.epsn:
            if not self._nak_sent[qpn]:
                self._nak_sent[qpn] = True
                yield from self._ack(qp, qp.epsn, syndrome=AethHeader.NAK_PSN_SEQUENCE_ERROR)
            return
        self._nak_sent[qpn] = False
        read_fn = self._mem_read(qpn)
        length = packet.reth.dma_length
        vaddr = packet.reth.vaddr
        segments = self._segments(length)
        qp.epsn = (qp.epsn + len(segments)) % PSN_MOD
        qp.msn = (qp.msn + 1) % PSN_MOD
        offset = 0
        for index, seg_len in enumerate(segments):
            first = index == 0
            last = index == len(segments) - 1
            if first and last:
                opcode = RoceOpcode.RDMA_READ_RESPONSE_ONLY
            elif first:
                opcode = RoceOpcode.RDMA_READ_RESPONSE_FIRST
            elif last:
                opcode = RoceOpcode.RDMA_READ_RESPONSE_LAST
            else:
                opcode = RoceOpcode.RDMA_READ_RESPONSE_MIDDLE
            payload = yield self.env.process(read_fn(vaddr + offset, seg_len))
            response = RocePacket.build(
                src_mac=self.mac,
                dst_mac=qp.remote.mac,
                src_ip=self.ip,
                dst_ip=qp.remote.ip,
                bth=BthHeader(
                    opcode=opcode,
                    dest_qp=qp.remote.qpn,
                    psn=(psn + index) % PSN_MOD,
                ),
                aeth=AethHeader(syndrome=0, msn=qp.msn) if RoceOpcode.has_aeth(opcode) else None,
                payload=payload if isinstance(payload, (bytes, bytearray)) else None,
                payload_length=seg_len,
                src_port=self._flow_port(qpn),
                ecn=self._data_ecn(),
            )
            yield from self._send_packet(response, qpn)
            offset += seg_len

    def _handle_read_response(self, qpn: int, qp: QueuePair, packet: RocePacket) -> Generator:
        state = self._read_collect.get(qpn)
        if state is None:
            return
        # Responses double as acks for the consumed PSNs.
        self._progress_ack(qpn, qp, packet.bth.psn)
        yield self.env.process(
            self._mem_write(qpn)(
                state["local_vaddr"] + state["received"],
                packet.payload,
                packet.payload_length,
            )
        )
        state["received"] += packet.payload_length
        if state["received"] >= state["length"]:
            del self._read_collect[qpn]
            state["event"].succeed()

    # ----------------------------------------------------- ack processing

    def _progress_ack(self, qpn: int, qp: QueuePair, psn: int) -> None:
        """Cumulative acknowledgement of every PSN <= psn."""
        self._last_progress[qpn] = self.env.now
        self._retry_counts[qpn] = 0
        buffered = self._retransmit[qpn]
        released = [p for p in buffered if psn_leq(p, psn)]
        for p in released:
            del buffered[p]
        if released:
            self._window.put(len(released))
        if psn_leq(qp.acked_psn % PSN_MOD, psn):
            qp.acked_psn = psn
        pending = self._pending[qpn]
        finished = [m for m in pending if psn_leq(m.last_psn, psn)]
        self._pending[qpn] = [m for m in pending if not psn_leq(m.last_psn, psn)]
        for msg in finished:
            msg.event.succeed()

    def _handle_ack(self, qpn: int, qp: QueuePair, packet: RocePacket) -> None:
        aeth = packet.aeth
        if aeth is not None and aeth.is_nak:
            self.stats["naks_received"] += 1
            # Go-back-N: retransmit everything from the NAK'ed PSN.
            self.env.process(self._go_back_n(qpn, packet.bth.psn))
            return
        self._progress_ack(qpn, qp, packet.bth.psn)

    def _go_back_n(self, qpn: int, from_psn: int) -> Generator:
        buffered = self._retransmit[qpn]
        ordered = sorted(
            (p for p in buffered if psn_leq(from_psn, p)),
            key=lambda p: (p - from_psn) % PSN_MOD,
        )
        for psn in ordered:
            packet = buffered.get(psn)
            if packet is None:
                continue  # acked while we were retransmitting earlier PSNs
            self.stats["retransmissions"] += 1
            yield from self._send_packet(packet, qpn)
        self._last_progress[qpn] = self.env.now

    def _track(self, qpn: int, psn: int, packet: RocePacket) -> None:
        """Buffer an unacked packet and wake the retransmit timer."""
        if not self._retransmit[qpn]:
            # First outstanding packet after an idle spell starts the
            # progress clock; the timer fires one full timeout later.
            self._last_progress[qpn] = self.env.now
        self._retransmit[qpn][psn] = packet
        if self._timer_parked is not None and not self._timer_parked.triggered:
            self._timer_parked.succeed()

    def _retransmit_timer(self) -> Generator:
        timeout = self.config.retransmit_timeout_ns
        while True:
            if not any(self._retransmit[q] for q in self._retransmit):
                # Park: an idle requester must not keep the simulation
                # alive forever; _track() kicks us on the next packet.
                self._timer_parked = Event(self.env)
                yield self._timer_parked
                self._timer_parked = None
                continue
            yield self.env.sleep(timeout)
            outstanding = any(self._retransmit[q] for q in self._retransmit)
            if not outstanding:
                continue
            for qpn in list(self._retransmit):
                buffered = self._retransmit[qpn]
                if not buffered:
                    continue
                if self.env.now - self._last_progress.get(qpn, 0.0) < timeout:
                    continue
                self._retry_counts[qpn] = self._retry_counts.get(qpn, 0) + 1
                if self._retry_counts[qpn] > self.config.max_retries:
                    # Retry budget exhausted: the peer (or the path) is
                    # gone.  ERROR the QP; flushed WRs tell the requester.
                    self.qp_error(qpn, reason="retry exhausted")
                    continue
                oldest = min(
                    buffered, key=lambda p: (p - self.qps[qpn].acked_psn) % PSN_MOD
                )
                yield self.env.process(self._go_back_n(qpn, oldest))
