"""Paper-reproduction experiments: one runner per table/figure + ablations."""

from .ablations import (
    run_ablation_credits,
    run_ablation_transport,
    run_ablation_packet_size,
    run_ablation_page_size,
    run_ablation_striping,
    run_ablation_writeback,
)
from .appbench import hll_throughput, run_fig11, run_fig12
from .common import ExperimentResult, format_series, format_table
from .macrobench import (
    cbc_throughput,
    multitenant_ecb_rates,
    run_fig8,
    run_fig10a,
    run_fig10b,
)
from .microbench import hbm_throughput, run_fig7a, run_fig7b
from .tables import TABLE3_SCENARIOS, run_table1, run_table2, run_table3

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_series",
    "run_table1",
    "run_table2",
    "run_table3",
    "TABLE3_SCENARIOS",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig10a",
    "run_fig10b",
    "run_fig11",
    "run_fig12",
    "hbm_throughput",
    "multitenant_ecb_rates",
    "cbc_throughput",
    "hll_throughput",
    "run_ablation_packet_size",
    "run_ablation_page_size",
    "run_ablation_credits",
    "run_ablation_striping",
    "run_ablation_writeback",
    "run_ablation_transport",
]
