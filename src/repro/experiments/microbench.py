"""Micro-benchmarks: Figure 7(a) HBM scaling and Figure 7(b) build flows."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.cthread import CThread
from ..core.credit import CreditConfig
from ..core.dynamic_layer import ServiceConfig
from ..core.interfaces import LocalSg, Oper, SgEntry, StreamType
from ..core.movers import MoverConfig
from ..core.shell import Shell, ShellConfig
from ..core.vfpga import VFpgaConfig
from ..apps.passthrough import PassThroughApp
from ..driver.driver import Driver
from ..sim.engine import AllOf, Environment
from ..synth.flow import BuildFlow
from .common import ExperimentResult
from .tables import TABLE3_SCENARIOS

__all__ = ["hbm_throughput", "run_fig7a", "run_fig7b"]


def hbm_throughput(
    num_channels: int,
    transfer_mb: int = 2,
    mmu_bypass: bool = False,
    trials: int = 1,
    warmup: int = 1,
) -> float:
    """Throughput (GB/s, read+write) of a card pass-through using
    ``num_channels`` parallel card streams in one vFPGA."""
    from ..mem.mmu import MmuConfig

    mmu = MmuConfig(xlat_stations=10_000) if mmu_bypass else MmuConfig()
    env = Environment()
    services = ServiceConfig(mover=MoverConfig(carry_data=False), mmu=mmu)
    shell = Shell(
        env,
        ShellConfig(
            num_vfpgas=1,
            services=services,
            vfpga=VFpgaConfig(num_card_streams=max(num_channels, 3)),
        ),
    )
    driver = Driver(env, shell)
    shell.load_app(
        0, PassThroughApp(num_streams=max(num_channels, 1), stream=StreamType.CARD)
    )
    samples: List[float] = []

    def client():
        ct = CThread(driver, 0, pid=1)
        size = transfer_mb * 1024 * 1024
        per_stream = size // num_channels
        src = yield from ct.get_mem(size)
        dst = yield from ct.get_mem(size)
        # Pre-stage both buffers in card memory (as the paper's kernel
        # does: it consumes from and stores back to HBM).
        yield from ct.invoke(
            Oper.LOCAL_OFFLOAD, SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=size))
        )
        yield from ct.invoke(
            Oper.LOCAL_OFFLOAD, SgEntry(local=LocalSg(src_addr=dst.vaddr, src_len=size))
        )
        for trial in range(warmup + trials):
            start = env.now
            procs = []
            for chan in range(num_channels):
                sg = SgEntry(
                    local=LocalSg(
                        src_addr=src.vaddr + chan * per_stream,
                        src_len=per_stream,
                        dst_addr=dst.vaddr + chan * per_stream,
                        dst_len=per_stream,
                        src_stream=StreamType.CARD,
                        dst_stream=StreamType.CARD,
                        src_dest=chan,
                        dst_dest=chan,
                    )
                )
                procs.append(ct.invoke_async(Oper.LOCAL_TRANSFER, sg))
            yield AllOf(env, procs)
            if trial >= warmup:
                samples.append(2 * size / (env.now - start))

    env.run(env.process(client()))
    return sum(samples) / len(samples)


def run_fig7a(
    channels: Sequence[int] = (1, 2, 4, 8, 12, 16, 24, 32),
    transfer_mb: int = 2,
) -> ExperimentResult:
    """Figure 7(a): throughput scaling with HBM channels in one vFPGA."""
    result = ExperimentResult(
        "Figure 7a", "HBM throughput scaling with channels per vFPGA"
    )
    single = None
    for nchan in channels:
        gbps = hbm_throughput(nchan, transfer_mb=transfer_mb)
        if single is None:
            single = gbps
        result.add_row(
            channels=nchan,
            throughput_gbps=round(gbps, 1),
            scaling=round(gbps / single, 2),
            linear_ideal=nchan,
        )
    result.notes.append(
        "linear at low channel counts, tapering off as the shared MMU "
        "translation pipeline (memory-virtualization overhead) saturates"
    )
    return result


def run_fig7b() -> ExperimentResult:
    """Figure 7(b): shell flow vs app flow build times on the 3 configs."""
    result = ExperimentResult(
        "Figure 7b", "Synthesis + implementation time, shell vs app flow (U250)"
    )
    flow = BuildFlow("u250")
    labels = ["pass-through (host only)", "vadd (card memory)", "RDMA + AES"]
    for label, (_, services, apps) in zip(labels, TABLE3_SCENARIOS):
        shell = flow.shell_flow(services, apps)
        app = flow.app_flow(shell.checkpoint, apps)
        result.add_row(
            config=label,
            shell_flow_min=round(shell.seconds / 60, 1),
            app_flow_min=round(app.seconds / 60, 1),
            savings_pct=round(100 * (1 - app.seconds / shell.seconds), 1),
            paper_savings="15-20%",
        )
    return result
