"""Shared infrastructure for the paper-reproduction experiments.

Each ``repro.experiments.*`` module reproduces one table or figure: it
returns structured results and can render them as the rows/series the
paper reports.  The ``benchmarks/`` tree wraps these runners with
pytest-benchmark; ``EXPERIMENTS.md`` records their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "format_series"]


@dataclass
class ExperimentResult:
    """One experiment's outcome: identity, series/rows, and the claim."""

    experiment: str  # e.g. "Figure 8"
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def render(self) -> str:
        header = f"== {self.experiment}: {self.title} =="
        body = format_table(self.rows) if self.rows else "(no rows)"
        notes = "\n".join(f"  note: {n}" for n in self.notes)
        return "\n".join(filter(None, [header, body, notes]))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in cells)) for i in range(len(columns))
    ]
    out = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_series(xs: Iterable[Any], ys: Iterable[Any], xlabel: str, ylabel: str) -> str:
    rows = [{xlabel: x, ylabel: y} for x, y in zip(xs, ys)]
    return format_table(rows)
