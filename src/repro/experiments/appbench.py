"""Application benchmarks: Figure 11 (HyperLogLog) and Figure 12 (NN)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api.cthread import CThread
from ..apps.hll import HllApp
from ..baselines.coyote_v1 import CoyoteV1Shell
from ..baselines.pynq import PynqVitisOverlay
from ..core.dynamic_layer import ServiceConfig
from ..core.floorplan import DEVICES
from ..core.interfaces import LocalSg, Oper, SgEntry
from ..core.movers import MoverConfig
from ..core.reconfig import COYOTE_ICAP
from ..core.shell import Shell, ShellConfig
from ..driver.driver import Driver
from ..ml.compiler import config_from_model, convert_model, intrusion_detection_model
from ..ml.overlay import CoyoteOverlay
from ..sim.engine import Environment
from ..synth.flow import BuildFlow, LockedShellCheckpoint
from ..synth.netlist import get_module, modules_for_services
from .common import ExperimentResult

__all__ = ["hll_throughput", "run_fig11", "run_fig12"]


def _timing_only() -> ServiceConfig:
    return ServiceConfig(en_memory=False, mover=MoverConfig(carry_data=False))


def hll_throughput(shell: Shell, driver: Driver, data_mb: int = 4) -> float:
    """Stream ``data_mb`` of 32-bit items through the HLL kernel; GB/s."""
    env = shell.env
    shell.load_app(0, HllApp())
    rate = [0.0]

    def client():
        ct = CThread(driver, 0, pid=42)
        size = data_mb * 1024 * 1024
        src = yield from ct.get_mem(size)
        start = env.now
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=size))
        yield from ct.invoke(Oper.LOCAL_READ, sg)
        rate[0] = size / (env.now - start)

    env.run(env.process(client()))
    return rate[0]


def run_fig11(data_mb: int = 4) -> ExperimentResult:
    """Figure 11: HLL on Coyote v2 vs Coyote v1 + on-demand PR load."""
    result = ExperimentResult(
        "Figure 11", "HyperLogLog throughput and resources, Coyote v2 vs v1"
    )
    device = DEVICES["u55c"]
    # -- Coyote v2
    env2 = Environment()
    shell2 = Shell(env2, ShellConfig(num_vfpgas=1, services=_timing_only()))
    driver2 = Driver(env2, shell2)
    v2_gbps = hll_throughput(shell2, driver2, data_mb)
    v2_resources = get_module("dyn_base").resources + get_module("mmu_2m").resources
    v2_resources = v2_resources + get_module("hll").resources
    # -- Coyote v1 (single-stream datapath, static services)
    env1 = Environment()
    shell1 = CoyoteV1Shell(env1, num_vfpgas=1, services=_timing_only())
    driver1 = Driver(env1, shell1)
    v1_gbps = hll_throughput(shell1, driver1, data_mb)
    v1_resources = shell1.shell_resources(["hll"])
    for name, gbps, resources in [
        ("Coyote v2", v2_gbps, v2_resources),
        ("Coyote v1", v1_gbps, v1_resources),
    ]:
        result.add_row(
            system=name,
            throughput_gbps=round(gbps, 2),
            lut_pct=round(100 * resources.fraction_of(device)["luts"], 1),
            bram_pct=round(100 * resources.fraction_of(device)["brams"], 1),
        )
    # -- on-demand partial reconfiguration of the HLL kernel (§9.6: 57 ms)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        device="u55c",
        services=shell2.config.services,
        shell_id=shell2.shell_id,
        used_luts=sum(m.luts for m in modules_for_services(shell2.config.services)),
    )
    app_bs = flow.app_flow(checkpoint, ["hll"]).bitstream
    # Daemon mode: the bitstream is kept in memory, so only the
    # copy-to-kernel and the ICAP programming are on the critical path.
    copy_ns = app_bs.size_bytes / 1e6 / 300.0 * 1e9  # kernel copy at 300 MB/s
    pr_ms = (COYOTE_ICAP.program_time_ns(app_bs.size_bytes) + copy_ns) / 1e6
    result.notes.append(
        f"on-demand HLL kernel load via partial reconfiguration: "
        f"{pr_ms:.1f} ms (paper: 57 ms)"
    )
    result.notes.append(
        "comparable throughput, slightly higher utilisation for v2 "
        "(richer interfaces), total ~10% of the device"
    )
    return result


def run_fig12(
    samples: int = 4096, batch_size: int = 1024, seed: int = 3
) -> ExperimentResult:
    """Figure 12: NN inference, CoyoteAccelerator vs PYNQ + Vitis."""
    result = ExperimentResult(
        "Figure 12", "hls4ml inference: Coyote v2 backend vs PYNQ/Vitis"
    )
    device = DEVICES["u55c"]
    model = intrusion_detection_model()
    hls = convert_model(model, config_from_model(model), backend="CoyoteAccelerator")
    hls.compile()
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, model.input_width))
    # -- Coyote v2 backend
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    overlay = CoyoteOverlay(driver, hls)

    def coyote_run():
        yield env.process(overlay.program_fpga())
        start = env.now
        preds = yield from overlay.predict(x, batch_size=batch_size)
        return preds, env.now - start

    coyote_preds, coyote_ns = env.run(env.process(coyote_run()))
    # -- PYNQ/Vitis baseline
    env_b = Environment()
    pynq = PynqVitisOverlay(env_b, hls.build())

    def pynq_run():
        start = env_b.now
        preds = yield from pynq.predict(x, batch_size=batch_size)
        return preds, env_b.now - start

    pynq_preds, pynq_ns = env_b.run(env_b.process(pynq_run()))
    assert np.array_equal(coyote_preds, pynq_preds), "backends must agree"
    for name, elapsed_ns, resources in [
        ("CoyoteAccelerator", coyote_ns, overlay.total_resources()),
        ("PYNQ + Vitis", pynq_ns, pynq.total_resources()),
    ]:
        result.add_row(
            backend=name,
            latency_ms=round(elapsed_ns / 1e6, 3),
            samples_per_sec=round(samples / (elapsed_ns / 1e9)),
            lut_pct=round(100 * resources.fraction_of(device)["luts"], 1),
            dsp_pct=round(100 * resources.fraction_of(device)["dsps"], 1),
        )
    result.notes.append(
        f"speedup {pynq_ns / coyote_ns:.1f}x (paper: order of magnitude), "
        "identical predictions, comparable resource utilisation"
    )
    return result
