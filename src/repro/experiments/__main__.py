"""Run every paper-reproduction experiment and print the results.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig8 fig10b table3   # a selection

This is what regenerates the numbers recorded in EXPERIMENTS.md; the
pytest-benchmark wrappers in ``benchmarks/`` additionally assert the
paper's claims on each result.
"""

from __future__ import annotations

import sys
import time

from . import (
    run_ablation_credits,
    run_ablation_packet_size,
    run_ablation_page_size,
    run_ablation_transport,
    run_ablation_striping,
    run_ablation_writeback,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig10a,
    run_fig10b,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
    run_table3,
)

RUNNERS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8": run_fig8,
    "fig10a": run_fig10a,
    "fig10b": run_fig10b,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "ablation-packet": run_ablation_packet_size,
    "ablation-page": run_ablation_page_size,
    "ablation-credits": run_ablation_credits,
    "ablation-striping": run_ablation_striping,
    "ablation-writeback": run_ablation_writeback,
    "ablation-transport": run_ablation_transport,
}


def main(argv) -> int:
    names = argv or list(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(RUNNERS)}")
        return 2
    for name in names:
        started = time.time()  # repro: allow[DET001] operator-facing wall time, printed only — never enters the sim
        result = RUNNERS[name]()
        print(result.render())
        print(f"[{name}: {time.time() - started:.1f}s wall]\n")  # repro: allow[DET001] operator-facing wall time, printed only — never enters the sim
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
