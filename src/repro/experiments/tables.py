"""Tables 1-3: feature matrix, reconfiguration throughput and latency."""

from __future__ import annotations

from typing import List, Tuple

from ..baselines.features import FEATURE_MATRIX, render_table
from ..core.bitstream import Bitstream, BitstreamKind
from ..core.dynamic_layer import ServiceConfig
from ..core.reconfig import (
    AXI_HWICAP,
    COYOTE_ICAP,
    MCAP,
    PCAP,
    IcapController,
    VivadoHwManager,
)
from ..mem.mmu import MmuConfig
from ..mem.tlb import PAGE_1G, TlbConfig
from ..sim.engine import Environment
from ..sim.tracing import mean_std
from ..synth.flow import BuildFlow
from .common import ExperimentResult

__all__ = ["run_table1", "run_table2", "run_table3", "TABLE3_SCENARIOS"]


def run_table1() -> ExperimentResult:
    """Table 1: the feature comparison (static data, rendered)."""
    result = ExperimentResult("Table 1", "Feature comparison of FPGA shells")
    for shell in FEATURE_MATRIX:
        result.add_row(
            shell=shell.name,
            services=shell.services.symbol,
            service_reconfig=shell.service_reconfig.symbol,
            svm=shell.shared_virtual_memory.symbol,
            multi_app=shell.multiple_reconfigurable_apps.symbol,
            multi_thread=shell.multi_threading.symbol,
            interface=shell.app_interface,
            interrupts=shell.interrupts.symbol,
            open_source=shell.open_source.symbol,
        )
    result.notes.append("full rendering:\n" + render_table())
    return result


def run_table2(bitstream_mb: float = 16.0) -> ExperimentResult:
    """Table 2: stream one partial bitstream through each config port."""
    result = ExperimentResult("Table 2", "Reconfiguration throughput comparison")
    size = int(bitstream_mb * 1e6)
    bitstream = Bitstream(
        kind=BitstreamKind.APP, target_region="vfpga0", size_bytes=size
    )
    for port in (AXI_HWICAP, PCAP, MCAP, COYOTE_ICAP):
        env = Environment()
        icap = IcapController(env, port=port)

        def proc(controller=icap):
            yield env.process(controller.program(bitstream, from_host=False))
            return env.now

        elapsed_ns = env.run(env.process(proc()))
        measured = size / (elapsed_ns / 1e3) if elapsed_ns else 0.0  # MB/s
        result.add_row(
            application=port.name,
            max_throughput_mbps=round(measured, 1),
            interface=port.interface,
            paper_mbps=port.throughput_mbps,
        )
    return result


#: The three reconfiguration scenarios of §9.3 (the *target* shells).
TABLE3_SCENARIOS: List[Tuple[str, ServiceConfig, List[str]]] = [
    (
        "#1 pass-through, MMU 2MB -> 1GB pages",
        ServiceConfig(en_memory=False, mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G))),
        ["passthrough"],
    ),
    (
        "#2 RDMA+kernel -> two numerical kernels, no network",
        ServiceConfig(en_memory=True),
        ["vadd", "vmul"],
    ),
    (
        "#3 RDMA+sniffer -> RDMA only",
        ServiceConfig(en_memory=True, en_rdma=True),
        ["aes_cbc"],
    ),
]


def run_table3(trials: int = 5) -> ExperimentResult:
    """Table 3: shell reconfiguration latency for the three scenarios."""
    result = ExperimentResult("Table 3", "Reconfiguration latency per shell config")
    flow = BuildFlow("u55c")
    paper = {
        0: (51.6, 536.2, 55_922.5),
        1: (72.3, 709.0, 63_045.2),
        2: (85.5, 929.1, 71_417.9),
    }
    for index, (label, services, apps) in enumerate(TABLE3_SCENARIOS):
        shell_bs = flow.shell_flow(services, apps).bitstream
        full_bs = flow.full_flow(services, apps).bitstream
        kernel_samples = []
        total_samples = []
        vivado_samples = []
        for _ in range(trials):
            env = Environment()
            icap = IcapController(env)

            def reconfigure():
                yield env.timeout(IcapController.host_overhead_ns(shell_bs))
                start_kernel = env.now
                yield env.process(icap.program(shell_bs, from_host=False))
                return start_kernel

            start_kernel = env.run(env.process(reconfigure()))
            total_samples.append(env.now / 1e6)
            kernel_samples.append((env.now - start_kernel) / 1e6)
            vivado_samples.append(VivadoHwManager(env).program_time_ns(full_bs) / 1e6)
        k_mean, k_std = mean_std(kernel_samples)
        t_mean, t_std = mean_std(total_samples)
        v_mean, _ = mean_std(vivado_samples)
        result.add_row(
            scenario=label,
            kernel_ms=round(k_mean, 1),
            kernel_std=round(k_std, 2),
            total_ms=round(t_mean, 1),
            total_std=round(t_std, 2),
            vivado_ms=round(v_mean, 1),
            paper_kernel_ms=paper[index][0],
            paper_total_ms=paper[index][1],
            paper_vivado_ms=paper[index][2],
        )
    result.notes.append(
        "Coyote v2 shell reconfiguration is an order of magnitude faster "
        "than full reprogramming via Vivado Hardware Manager."
    )
    return result
