"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these quantify *why* the shell is built the
way it is: packetization granularity, TLB page size, credit depth,
striping, and completion writeback.
"""

from __future__ import annotations

from typing import Sequence

from ..api.cthread import CThread
from ..apps.passthrough import PassThroughApp
from ..core.credit import CreditConfig
from ..core.dynamic_layer import ServiceConfig
from ..core.interfaces import LocalSg, Oper, SgEntry, StreamType
from ..core.movers import MoverConfig
from ..core.shell import Shell, ShellConfig
from ..core.vfpga import VFpgaConfig
from ..driver.driver import Driver
from ..mem.hbm import HbmConfig
from ..mem.mmu import MmuConfig
from ..mem.tlb import PAGE_1G, PAGE_2M, TlbConfig
from ..sim.engine import AllOf, Environment
from .common import ExperimentResult
from .macrobench import multitenant_ecb_rates

__all__ = [
    "run_ablation_packet_size",
    "run_ablation_page_size",
    "run_ablation_credits",
    "run_ablation_striping",
    "run_ablation_writeback",
    "run_ablation_transport",
]


def _passthrough_rate(services: ServiceConfig, transfer_mb: int = 1, messages: int = 3,
                      vfpga: VFpgaConfig = VFpgaConfig()) -> float:
    """Host pass-through throughput (GB/s) under a given service config."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=services, vfpga=vfpga))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    rate = [0.0]

    def client():
        ct = CThread(driver, 0, pid=9)
        size = transfer_mb * 1024 * 1024
        src = yield from ct.get_mem(size)
        dst = yield from ct.get_mem(size)
        start = env.now
        for _ in range(messages):
            sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=size,
                                       dst_addr=dst.vaddr, dst_len=size))
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        rate[0] = messages * size / (env.now - start)

    env.run(env.process(client()))
    return rate[0]


def run_ablation_packet_size(
    sizes: Sequence[int] = (512, 1024, 2048, 4096, 8192, 16384)
) -> ExperimentResult:
    """Packetizer chunk size vs throughput and fairness granularity."""
    result = ExperimentResult(
        "Ablation: packetization", "chunk size vs throughput (host pass-through)"
    )
    for chunk in sizes:
        services = ServiceConfig(mover=MoverConfig(packet_bytes=chunk, carry_data=False))
        gbps = _passthrough_rate(services)
        result.add_row(packet_bytes=chunk, throughput_gbps=round(gbps, 2))
    result.notes.append(
        "small packets lose bandwidth to per-packet overheads; huge packets "
        "coarsen fairness — 2 KB is the sweet spot the shell defaults to "
        "(MoverConfig.packet_bytes)"
    )
    return result


def run_ablation_page_size() -> ExperimentResult:
    """TLB page size vs fault count and effective migration volume."""
    result = ExperimentResult(
        "Ablation: page size", "2 MB vs 1 GB pages for a 64 MB working set"
    )
    for page, label in [(PAGE_2M, "2MB"), (PAGE_1G, "1GB")]:
        env = Environment()
        services = ServiceConfig(
            mmu=MmuConfig(tlb=TlbConfig(page_size=page)),
            hbm=HbmConfig(),
            mover=MoverConfig(carry_data=False),
        )
        shell = Shell(env, ShellConfig(num_vfpgas=1, services=services))
        driver = Driver(env, shell)
        shell.load_app(0, PassThroughApp(stream=StreamType.CARD))
        stats = {}

        def client():
            from ..mem.allocator import AllocType

            alloc_type = AllocType.HPF if page == PAGE_2M else AllocType.HPF1G
            ct = CThread(driver, 0, pid=5)
            size = 64 * 1024 * 1024
            src = yield from ct.get_mem(size, alloc_type)
            start = env.now
            # Touch the whole buffer on the card: faults + migrations.
            yield from ct.invoke(
                Oper.LOCAL_OFFLOAD, SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=size))
            )
            stats["faults"] = driver.page_faults
            stats["migrate_ms"] = (env.now - start) / 1e6

        env.run(env.process(client()))
        result.add_row(
            page_size=label,
            page_faults=stats["faults"],
            migration_ms=round(stats["migrate_ms"], 2),
        )
    result.notes.append(
        "1 GB huge pages minimise page faults for large working sets (§6.1)"
    )
    return result


def run_ablation_credits(
    depths: Sequence[int] = (2, 4, 8, 16, 32)
) -> ExperimentResult:
    """Host credit depth vs throughput."""
    result = ExperimentResult("Ablation: credits", "host credit depth vs throughput")
    for depth in depths:
        services = ServiceConfig(mover=MoverConfig(carry_data=False))
        vfpga = VFpgaConfig(credits=CreditConfig(host_credits=depth))
        gbps = _passthrough_rate(services, vfpga=vfpga)
        result.add_row(credits=depth, throughput_gbps=round(gbps, 2))
    result.notes.append(
        "too few credits cannot cover the request-to-consume round trip; "
        "beyond that, deeper queues buy nothing (they only add on-chip RAM)"
    )
    return result


def run_ablation_striping() -> ExperimentResult:
    """Striping on/off for a multi-channel card access pattern."""
    from .microbench import hbm_throughput

    result = ExperimentResult(
        "Ablation: striping", "HBM striping vs single-channel placement"
    )
    striped = hbm_throughput(num_channels=8, transfer_mb=2)
    # Without striping each buffer sits in one channel: model by running
    # the same workload with 1 effective channel per stream group.
    unstriped = hbm_throughput(num_channels=1, transfer_mb=2) * 1.0
    result.add_row(mode="striped (8 streams)", throughput_gbps=round(striped, 1))
    result.add_row(mode="single channel", throughput_gbps=round(unstriped, 1))
    result.notes.append("striping is what converts channel count into bandwidth")
    return result


def run_ablation_writeback() -> ExperimentResult:
    """Completion writeback vs PCIe polling (the utility-channel feature)."""
    result = ExperimentResult(
        "Ablation: writeback", "completion tracking: writeback vs MMIO polling"
    )
    for writeback, label in [(True, "writeback"), (False, "MMIO polling")]:
        services = ServiceConfig(mover=MoverConfig(carry_data=False, writeback=writeback))
        # Small transfers stress per-completion overheads.
        env = Environment()
        shell = Shell(env, ShellConfig(num_vfpgas=1, services=services))
        driver = Driver(env, shell)
        shell.load_app(0, PassThroughApp())
        elapsed = [0.0]

        def client():
            ct = CThread(driver, 0, pid=3)
            src = yield from ct.get_mem(4096)
            dst = yield from ct.get_mem(4096)
            start = env.now
            for _ in range(32):
                sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                           dst_addr=dst.vaddr, dst_len=4096))
                yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
            elapsed[0] = (env.now - start) / 32

        env.run(env.process(client()))
        result.add_row(mode=label, latency_per_4k_transfer_us=round(elapsed[0] / 1e3, 2))
    result.notes.append(
        "writeback frees PCIe bandwidth and cuts per-transfer latency (§5.1)"
    )
    return result


def run_ablation_transport(transfer_kb: int = 256) -> ExperimentResult:
    """TCP/IP offload vs RoCE v2 RDMA on the same 100G fabric.

    The comparison behind Requirement 1's service swap: the RDMA WRITE is
    one-sided (no receiver CPU, 4 KB MTU, credit-windowed), while the TCP
    byte stream pays per-segment acknowledgements and receive-window
    round trips.
    """
    from ..net.headers import MacAddress
    from ..net.switch import Switch
    from ..core.interfaces import RdmaSg
    from ..core.shell import Shell, ShellConfig
    from ..driver.driver import Driver
    from ..api.cthread import CThread

    result = ExperimentResult(
        "Ablation: transport", "TCP offload vs RDMA on the shared fabric"
    )
    nbytes = transfer_kb * 1024

    # -- RDMA path (through the full shell + MMU)
    env = Environment()
    switch = Switch(env)
    services = ServiceConfig(en_memory=True, en_rdma=True)
    shell_a = Shell(env, ShellConfig(num_vfpgas=1, services=services),
                    switch=switch, mac=MacAddress(0x02_AB_01), ip=1)
    shell_b = Shell(env, ShellConfig(num_vfpgas=1, services=services),
                    switch=switch, mac=MacAddress(0x02_AB_02), ip=2)
    driver_a, driver_b = Driver(env, shell_a), Driver(env, shell_b)
    ct_a, ct_b = CThread(driver_a, 0, pid=1), CThread(driver_b, 0, pid=2)
    qa, qb = ct_a.create_qp(1, psn=1), ct_b.create_qp(2, psn=2)
    qa.connect(qb.local)
    qb.connect(qa.local)
    elapsed = {}

    def rdma_flow():
        src = yield from ct_a.get_mem(nbytes)
        dst = yield from ct_b.get_mem(nbytes)
        start = env.now
        yield from ct_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=nbytes, qpn=1)),
        )
        elapsed["rdma"] = env.now - start

    env.run(env.process(rdma_flow()))

    # -- TCP path (same fabric, TCP service)
    env2 = Environment()
    switch2 = Switch(env2)
    tcp_services = ServiceConfig(en_memory=False, en_tcp=True)
    shell_c = Shell(env2, ShellConfig(num_vfpgas=1, services=tcp_services),
                    switch=switch2, mac=MacAddress(0x02_AB_03), ip=3)
    shell_d = Shell(env2, ShellConfig(num_vfpgas=1, services=tcp_services),
                    switch=switch2, mac=MacAddress(0x02_AB_04), ip=4)
    shell_d.dynamic.tcp.listen(80)

    def tcp_server():
        conn = yield from shell_d.dynamic.tcp.accept(80)
        yield from conn.recv(nbytes)

    def tcp_client():
        conn = yield from shell_c.dynamic.tcp.connect(
            MacAddress(0x02_AB_04), 4, 80, 5000
        )
        start = env2.now
        yield from conn.send(bytes(nbytes))
        elapsed["tcp"] = env2.now - start

    server = env2.process(tcp_server())
    client = env2.process(tcp_client())
    env2.run(AllOf(env2, [server, client]))

    for name in ("rdma", "tcp"):
        result.add_row(
            transport=name,
            latency_us=round(elapsed[name] / 1e3, 1),
            goodput_gbps=round(nbytes / elapsed[name], 2),
        )
    result.notes.append(
        "one-sided RDMA wins on the same wire; the gap is per-segment "
        "protocol overhead, not bandwidth"
    )
    return result
