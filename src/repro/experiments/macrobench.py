"""Macro-benchmarks: Figure 8 (multi-tenant ECB) and Figure 10 (CBC)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..api.cthread import CThread
from ..apps.aes import AesCbcApp, AesEcbApp
from ..core.dynamic_layer import ServiceConfig
from ..core.interfaces import LocalSg, Oper, SgEntry
from ..core.movers import MoverConfig
from ..core.shell import Shell, ShellConfig
from ..core.vfpga import VFpgaConfig
from ..driver.driver import Driver
from ..sim.engine import AllOf, Environment
from .common import ExperimentResult

__all__ = [
    "multitenant_ecb_rates",
    "run_fig8",
    "cbc_throughput",
    "run_fig10a",
    "run_fig10b",
]


def _timing_only_services() -> ServiceConfig:
    return ServiceConfig(mover=MoverConfig(carry_data=False))


def multitenant_ecb_rates(
    ntenants: int, transfer_mb: int = 1, messages: int = 3
) -> List[float]:
    """Per-tenant AES ECB throughput (GB/s) with ``ntenants`` vFPGAs."""
    env = Environment()
    shell = Shell(
        env, ShellConfig(num_vfpgas=ntenants, services=_timing_only_services())
    )
    driver = Driver(env, shell)
    rates: List[float] = []

    def client(vfpga_id: int):
        ct = CThread(driver, vfpga_id, pid=100 + vfpga_id)
        shell.load_app(vfpga_id, AesEcbApp(num_streams=1))
        size = transfer_mb * 1024 * 1024
        src = yield from ct.get_mem(size)
        dst = yield from ct.get_mem(size)
        start = env.now
        for _ in range(messages):
            sg = SgEntry(
                local=LocalSg(
                    src_addr=src.vaddr, src_len=size, dst_addr=dst.vaddr, dst_len=size
                )
            )
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        rates.append(size * messages / (env.now - start))

    procs = [env.process(client(v)) for v in range(ntenants)]
    env.run(AllOf(env, procs))
    return rates


def run_fig8(max_tenants: int = 4) -> ExperimentResult:
    """Figure 8: AES ECB bandwidth sharing across vFPGAs."""
    result = ExperimentResult("Figure 8", "AES ECB bandwidth sharing across vFPGAs")
    for ntenants in range(1, max_tenants + 1):
        rates = multitenant_ecb_rates(ntenants)
        result.add_row(
            vfpgas=ntenants,
            per_tenant_gbps=[round(r, 2) for r in rates],
            cumulative_gbps=round(sum(rates), 2),
            fairness=round(min(rates) / max(rates), 3),
        )
    result.notes.append(
        "bandwidth fairly distributed; cumulative throughput constant "
        "(~12 GB/s host link) => no arbitration/packetization overhead"
    )
    return result


def cbc_throughput(
    nthreads: int,
    message_kb: int,
    messages: int = 6,
    pipeline_streams: int = 10,
) -> float:
    """AES CBC throughput (MB/s) with ``nthreads`` cThreads on one vFPGA."""
    env = Environment()
    shell = Shell(
        env,
        ShellConfig(
            num_vfpgas=1,
            services=_timing_only_services(),
            vfpga=VFpgaConfig(num_host_streams=pipeline_streams),
        ),
    )
    driver = Driver(env, shell)
    shell.load_app(0, AesCbcApp(num_streams=pipeline_streams))
    done_bytes = [0]

    def client(thread_id: int):
        ct = CThread(driver, 0, pid=500 + thread_id, stream_dest=thread_id)
        size = message_kb * 1024
        src = yield from ct.get_mem(size)
        dst = yield from ct.get_mem(size)
        for _ in range(messages):
            sg = SgEntry(
                local=LocalSg(
                    src_addr=src.vaddr, src_len=size,
                    dst_addr=dst.vaddr, dst_len=size,
                    src_dest=thread_id, dst_dest=thread_id,
                )
            )
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
            done_bytes[0] += size

    procs = [env.process(client(t)) for t in range(nthreads)]
    env.run(AllOf(env, procs))
    return done_bytes[0] / env.now * 1000.0  # MB/s


def run_fig10a(
    message_kb: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> ExperimentResult:
    """Figure 10(a): single-thread CBC throughput vs message size."""
    result = ExperimentResult(
        "Figure 10a", "AES CBC throughput vs message size (1 cThread)"
    )
    for kb in message_kb:
        mbps = cbc_throughput(nthreads=1, message_kb=kb)
        result.add_row(message_kb=kb, throughput_mbps=round(mbps, 1))
    result.notes.append(
        "throughput saturates around 32 KB messages at the chain-limited "
        "rate of the 10-stage pipeline (~350-400 MB/s; paper: ~280 MB/s)"
    )
    return result


def run_fig10b(threads: Sequence[int] = tuple(range(1, 11))) -> ExperimentResult:
    """Figure 10(b): CBC throughput scaling with cThreads (32 KB msgs)."""
    result = ExperimentResult(
        "Figure 10b", "AES CBC throughput vs number of cThreads (32 KB messages)"
    )
    single = None
    for nthreads in threads:
        mbps = cbc_throughput(nthreads=nthreads, message_kb=32)
        if single is None:
            single = mbps
        result.add_row(
            threads=nthreads,
            throughput_mbps=round(mbps, 1),
            speedup=round(mbps / single, 2),
        )
    result.notes.append(
        "linear scaling while threads fill the 10 idle pipeline stages "
        "(paper Figure 9): ~7x reduction of hardware idle time"
    )
    return result
