"""EVT001 / EVT002 / DLK001 — whole-program event-flow rules.

These run on the :class:`~repro.analysis.flow.ProjectIndex`, not on one
module, because the bugs they catch live *between* functions:

* **EVT001 (lost wakeup)** — an event symbol that is awaited somewhere
  but has **no** reachable ``succeed()``/``fail()`` producer anywhere in
  the project.  The waiter parks forever; at runtime this is exactly
  what the stuck-at-drain sanitizer ledger reports.  The rule is
  deliberately escape-sensitive: any use the index cannot classify
  (passing the event to a call, storing it in a container, returning
  it) assumes a producer exists, so only *provably* orphaned waits fire.
* **EVT002 (succeed after defuse)** — ``defuse()`` declares an event's
  failure handled out-of-band; the engine's sanctioned chain is
  ``ev.defuse().fail(exc)``.  A ``succeed()`` reachable after the
  defuse contradicts the handoff (the waiter was promised a failure
  path): flagged intraprocedurally by statement order, and one hop
  through same-class helper methods called after the defuse.
* **DLK001 (static wait-for cycle)** — generator process A awaits an
  event attribute only ever set by generator B, while B awaits one only
  set by A.  Neither can make progress; the edge-triggered scheduler
  turns this from "slow" into "silently parked forever".  Edges are
  added only when the producer set of an awaited symbol is a singleton,
  so a second independent producer breaks the cycle statically too.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .findings import Finding, make_finding
from .flow import FunctionInfo, ProjectIndex

__all__ = ["check_evt001", "check_evt002", "check_dlk001"]


def _flow_scoped(fn: FunctionInfo) -> bool:
    """Event rules only fire in modules that schedule events — the same
    scope gate DET002/SIM001 use."""
    return fn.module.schedules_events


# ---------------------------------------------------------------- EVT001


def check_evt001(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    # Attribute symbols: project-wide by attribute name.
    for attr in sorted(index.attr_events):
        uses = index.attr_events[attr]
        if not any(u.kind == "def" and _flow_scoped(u.function) for u in uses):
            continue
        kinds = {u.kind for u in uses}
        if "await" not in kinds:
            continue
        if kinds & {"produce", "escape", "defuse"}:
            continue
        first_await = min(
            (u for u in uses if u.kind == "await"),
            key=lambda u: (u.function.module.display_path, u.line),
        )
        findings.append(
            make_finding(
                first_await.function.module.display_path,
                first_await.line,
                "EVT001",
                f"event attribute `.{attr}` is awaited here but no "
                "succeed()/fail() producer is reachable anywhere in the "
                "project (lost wakeup)",
            )
        )
    # Local event variables: intra-function, escape-sensitive.
    for fn in index.functions:
        if not _flow_scoped(fn):
            continue
        for var in sorted(fn.event_locals):
            uses = index.classify_local_event_uses(fn, var)
            kinds = {u.kind for u in uses}
            if "await" not in kinds:
                continue
            if kinds & {"produce", "escape", "defuse"}:
                continue
            first_await = min(
                (u for u in uses if u.kind == "await"), key=lambda u: u.line
            )
            findings.append(
                make_finding(
                    fn.module.display_path,
                    first_await.line,
                    "EVT001",
                    f"local event `{var}` is awaited in `{fn.qualname}` but "
                    "never passed out and never succeeded/failed (lost "
                    "wakeup)",
                )
            )
    return findings


# ---------------------------------------------------------------- EVT002


def _produce_lines(fn: FunctionInfo, receiver: str, attr: str) -> List[int]:
    """Lines in ``fn`` where ``<receiver>.succeed(...)`` is called."""
    out = []
    for node in fn.own_nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
            and ast.unparse(node.func.value) == receiver
        ):
            out.append(node.lineno)
    return out


def check_evt002(index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for fn in index.functions:
        if not _flow_scoped(fn):
            continue
        defuses: List[Tuple[int, str]] = []
        for node in fn.own_nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "defuse"
            ):
                defuses.append((node.lineno, ast.unparse(node.func.value)))
        if not defuses:
            continue
        for defuse_line, receiver in defuses:
            # Intraprocedural: a succeed() on the same receiver text at a
            # later line than the defuse.
            for line in _produce_lines(fn, receiver, "succeed"):
                if line > defuse_line:
                    findings.append(
                        make_finding(
                            fn.module.display_path,
                            line,
                            "EVT002",
                            f"`{receiver}.succeed()` is reachable after "
                            f"`{receiver}.defuse()` (line {defuse_line}) "
                            "declared its failure handled out-of-band",
                        )
                    )
            # One hop: a same-class helper called after the defuse that
            # succeeds the same self-attribute.
            if not receiver.startswith("self."):
                continue
            for call, callee in fn.resolved_calls:
                if call.lineno <= defuse_line:
                    continue
                if callee.class_name != fn.class_name or callee is fn:
                    continue
                for line in _produce_lines(callee, receiver, "succeed"):
                    findings.append(
                        make_finding(
                            fn.module.display_path,
                            call.lineno,
                            "EVT002",
                            f"`{callee.qualname}()` called here succeeds "
                            f"`{receiver}` (line {line}) after "
                            f"`{receiver}.defuse()` (line {defuse_line}) "
                            "declared its failure handled out-of-band",
                        )
                    )
    return findings


# ---------------------------------------------------------------- DLK001


def _await_produce_maps(
    index: ProjectIndex,
) -> Tuple[Dict[FunctionInfo, Set[str]], Dict[str, Set[FunctionInfo]]]:
    awaits: Dict[FunctionInfo, Set[str]] = {}
    producers: Dict[str, Set[FunctionInfo]] = {}
    for attr, uses in index.attr_events.items():
        for use in uses:
            if use.kind == "await" and use.function.is_generator:
                awaits.setdefault(use.function, set()).add(attr)
            elif use.kind == "produce":
                producers.setdefault(attr, set()).add(use.function)
    return awaits, producers


def check_dlk001(index: ProjectIndex) -> List[Finding]:
    awaits, producers = _await_produce_maps(index)
    # Build the singleton-producer wait-for graph between generators.
    edges: Dict[FunctionInfo, Dict[FunctionInfo, str]] = {}
    for waiter, symbols in awaits.items():
        if not _flow_scoped(waiter):
            continue
        for symbol in sorted(symbols):
            prods = producers.get(symbol, set())
            if len(prods) != 1:
                continue
            producer = next(iter(prods))
            if producer is waiter or not producer.is_generator:
                continue
            edges.setdefault(waiter, {})[producer] = symbol
    # Find cycles with a bounded DFS over the (tiny) graph.
    findings: List[Finding] = []
    reported: Set[frozenset] = set()
    order = sorted(edges, key=lambda f: (f.module.display_path, f.node.lineno))
    for start in order:
        path: List[FunctionInfo] = []

        def dfs(fn: FunctionInfo) -> None:
            path.append(fn)
            for nxt in sorted(
                edges.get(fn, {}),
                key=lambda f: (f.module.display_path, f.node.lineno),
            ):
                if nxt is start and len(path) > 1:
                    members = frozenset(id(p) for p in path)
                    if members in reported:
                        continue
                    reported.add(members)
                    findings.append(_cycle_finding(index, path, edges))
                elif nxt not in path and len(path) < 8:
                    dfs(nxt)
            path.pop()

        dfs(start)
    return findings


def _cycle_finding(
    index: ProjectIndex,
    path: List[FunctionInfo],
    edges: Dict[FunctionInfo, Dict[FunctionInfo, str]],
) -> Finding:
    hops = []
    for i, fn in enumerate(path):
        nxt = path[(i + 1) % len(path)]
        symbol = edges[fn][nxt]
        hops.append(f"`{fn.qualname}` awaits `.{symbol}` set only by `{nxt.qualname}`")
    anchor = path[0]
    # Anchor the finding at the first awaiting yield of the first member.
    line = anchor.node.lineno
    symbol = edges[anchor][path[1 % len(path)]]
    for use in index.attr_events.get(symbol, []):
        if use.function is anchor and use.kind == "await":
            line = use.line
            break
    return make_finding(
        anchor.module.display_path,
        line,
        "DLK001",
        "static wait-for cycle between generator processes: "
        + "; ".join(hops),
    )
