"""RES001 — credit acquire/release pairing.

The crediting protocol (paper §7.2, ``repro.core.credit``) contains
back-pressure only while every acquired credit is eventually released —
the exception-path leak class the ``app.wedge_credit`` chaos site probes
dynamically.  This rule proves the *lexical* half: inside one function,
a ``<credit-ish>.acquire()`` must either

* sit inside (or immediately before) a ``try`` whose ``finally`` block
  releases the same receiver, or
* be waived — the sanctioned waiver case is *split-phase* crediting,
  where the release deliberately happens in another process (the vFPGA
  releases a read credit when it consumes the deposited flit).

"Credit-ish" means the receiver expression mentions ``credit`` or
``guard`` (``vfpga.rd_credits[...]``, ``crediter``, ``CreditGuard``
instances); arbitrary unrelated ``.acquire()`` APIs (e.g. thread locks
in host-side tooling) are not this rule's business.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from .findings import Finding, make_finding
from .modules import SourceModule

__all__ = ["check_res001"]

_RECEIVER_MARKERS = ("credit", "guard")


def _is_credit_receiver(expr: ast.expr) -> bool:
    text = ast.unparse(expr).lower()
    return any(marker in text for marker in _RECEIVER_MARKERS)


def _calls_with_attr(scope_nodes, attr: str) -> List[ast.Call]:
    return [
        node
        for node in scope_nodes
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
        and _is_credit_receiver(node.func.value)
    ]


def _own_nodes(func: ast.AST):
    out = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
    return out


def _contains(node: ast.AST, target: ast.AST) -> bool:
    return any(candidate is target for candidate in ast.walk(node))


def _finally_releases(try_node: ast.Try, receiver_text: str) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("release", "release_all")
                and _is_credit_receiver(node.func.value)
            ):
                released = ast.unparse(node.func.value)
                if released == receiver_text or receiver_text == "":
                    return True
    return False


def _statement_blocks(func: ast.AST):
    """Yield every statement list in the function (bodies of ifs, loops,
    trys, withs, ...), so sibling order can be inspected."""
    for node in ast.walk(func):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _guarded_by_finally(func: ast.AST, acquire: ast.Call, receiver_text: str) -> bool:
    """Acquire is safe when a try/finally releasing its receiver either
    encloses it or is the immediately following sibling statement."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        if not _finally_releases(node, receiver_text) and not _finally_releases(node, ""):
            continue
        if any(_contains(stmt, acquire) for stmt in node.body):
            return True
    for block in _statement_blocks(func):
        for index, stmt in enumerate(block[:-1]):
            if not _contains(stmt, acquire):
                continue
            follower = block[index + 1]
            if (
                isinstance(follower, ast.Try)
                and follower.finalbody
                and (
                    _finally_releases(follower, receiver_text)
                    or _finally_releases(follower, "")
                )
            ):
                return True
    return False


def check_res001(module: SourceModule) -> List[Finding]:
    findings: List[Finding] = []
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        own = _own_nodes(func)
        acquires = _calls_with_attr(own, "acquire")
        if not acquires:
            continue
        releases = _calls_with_attr(own, "release") + _calls_with_attr(
            own, "release_all"
        )
        for acquire in acquires:
            receiver_text = ast.unparse(acquire.func.value)
            if not releases:
                findings.append(
                    make_finding(
                        module.display_path,
                        acquire.lineno,
                        "RES001",
                        f"`{receiver_text}.acquire()` has no release() in "
                        f"`{func.name}` (split-phase crediting must be waived "
                        "with its releasing counterpart named)",
                    )
                )
                continue
            if not _guarded_by_finally(func, acquire, receiver_text):
                findings.append(
                    make_finding(
                        module.display_path,
                        acquire.lineno,
                        "RES001",
                        f"release() for `{receiver_text}.acquire()` in "
                        f"`{func.name}` is not guaranteed on exception paths",
                    )
                )
    return findings
