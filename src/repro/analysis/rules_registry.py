"""FLT001 / TEL001 — string-keyed registry hygiene.

Two registries in this repo are addressed by string literals, and a typo
in either fails *silently*: a misspelled fault site never fires (the
injector only validates sites it is asked to arm), and a misspelled
metric name creates a parallel register nobody reads.  These rules
cross-check every literal at lint time:

* **FLT001** — literals passed to ``.fires(...)``, ``FaultRule(site=...)``
  and ``FaultPlan.build(site_name=...)`` kwargs must exist in the
  ``FAULT_SITES`` registry.  The registry is extracted *statically* from
  ``repro/faults/plan.py`` (no import of the target tree), so the
  analyzer works on a broken checkout too.
* **TEL001** — literals passed to ``registry.counter/gauge/histogram``
  must follow the ``component.metric`` convention from DESIGN.md: at
  least two dot-separated lowercase segments.

Misses come with a nearest-match suggestion (``difflib``) so the fix is
one keystroke away.
"""

from __future__ import annotations

import ast
import difflib
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

from .findings import Finding, make_finding
from .modules import SourceModule

__all__ = [
    "check_flt001",
    "check_tel001",
    "load_fault_registry",
    "find_fault_registry_path",
]

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_METRIC_METHODS = ("counter", "gauge", "histogram")


def find_fault_registry_path(roots: List[Path]) -> Optional[Path]:
    """Locate ``faults/plan.py`` under the analyzed roots, falling back
    to the conventional ``src/repro/faults/plan.py`` below the cwd."""
    for root in roots:
        base = root if root.is_dir() else root.parent
        for candidate in sorted(base.rglob("plan.py")):
            if candidate.parent.name == "faults":
                return candidate
    fallback = Path("src/repro/faults/plan.py")
    return fallback if fallback.exists() else None


def load_fault_registry(plan_path: Path) -> Dict[str, Tuple[str, str]]:
    """Extract ``site -> (model, effect)`` from ``FAULT_SITE_DOCS`` (and
    bare string constants feeding ``FAULT_SITES``) without importing."""
    tree = ast.parse(plan_path.read_text(encoding="utf-8"))
    constants: Dict[str, str] = {}
    docs: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            constants[target.id] = node.value.value
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or target.id != "FAULT_SITE_DOCS":
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                site = key.value
            elif isinstance(key, ast.Name) and key.id in constants:
                site = constants[key.id]
            else:
                continue
            model = effect = ""
            if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                parts = [
                    e.value if isinstance(e, ast.Constant) else ""
                    for e in value.elts
                ]
                model, effect = str(parts[0]), str(parts[1])
            docs[site] = (model, effect)
    if docs:
        return docs
    # Pre-FAULT_SITE_DOCS fallback: every dotted string constant.
    return {
        value: ("", "")
        for value in constants.values()
        if re.fullmatch(r"[a-z]+\.[a-z_]+", value)
    }


def _suggest(name: str, known: FrozenSet[str]) -> str:
    close = difflib.get_close_matches(name, sorted(known), n=1)
    return f"; did you mean {close[0]!r}?" if close else ""


def _literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def check_flt001(module: SourceModule, sites: FrozenSet[str]) -> List[Finding]:
    if not sites:
        return []
    findings: List[Finding] = []

    def flag(node: ast.AST, literal: str, context: str) -> None:
        findings.append(
            make_finding(
                module.display_path,
                node.lineno,
                "FLT001",
                f"{context} {literal!r} is not a registered fault site"
                f"{_suggest(literal, sites)}",
            )
        )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # injector.fires("site", ...)
        if isinstance(func, ast.Attribute) and func.attr == "fires" and node.args:
            literal = _literal(node.args[0])
            if literal is not None and literal not in sites:
                flag(node, literal, "fault site")
        # FaultRule(site="...") / FaultRule("...")
        callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if callee == "FaultRule":
            site_arg = None
            if node.args:
                site_arg = _literal(node.args[0])
            for kw in node.keywords:
                if kw.arg == "site":
                    site_arg = _literal(kw.value)
            if site_arg is not None and site_arg not in sites:
                flag(node, site_arg, "FaultRule site")
        # FaultPlan.build(seed=..., net_drop=0.05): kwarg -> site name.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "build"
            and "faultplan" in ast.unparse(func.value).lower()
        ):
            for kw in node.keywords:
                if kw.arg is None or kw.arg == "seed":
                    continue
                site = kw.arg.replace("_", ".", 1)
                if site not in sites:
                    flag(node, site, f"FaultPlan.build kwarg `{kw.arg}` maps to")
    return findings


def check_tel001(module: SourceModule) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
            continue
        if not node.args:
            continue
        literal = _literal(node.args[0])
        if literal is None:
            continue
        if not _METRIC_NAME_RE.fullmatch(literal):
            findings.append(
                make_finding(
                    module.display_path,
                    node.lineno,
                    "TEL001",
                    f"metric name {literal!r} does not follow the "
                    "`component.metric` convention (>=2 lowercase "
                    "dot-separated segments)",
                )
            )
    return findings
