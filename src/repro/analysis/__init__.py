"""``repro.analysis`` — correctness tooling for the reproduction.

Two halves (DESIGN.md "Correctness tooling"):

* a **static analyzer** (``python -m repro.analysis src tests
  benchmarks``) with repo-specific AST rules — determinism (DET001/2,
  SIM001), credit pairing (RES001), string-registry hygiene
  (FLT001/TEL001) and generated-doc drift (DOC001) — each waivable with
  ``# repro: allow[RULE] justification``;
* a **runtime SimSanitizer** (``REPRO_SANITIZE=1``) asserting event-time
  monotonicity, credit conservation and telemetry type stability — the
  dynamic invariants the AST cannot prove.

Stdlib-``ast`` only; the analyzer never imports the tree it checks.
"""

from .analyzer import AnalysisResult, run_paths
from .findings import Finding, RULE_CATALOG
from .sanitizer import (
    SanitizerError,
    SimSanitizer,
    Violation,
    activate,
    current,
    deactivate,
    enabled,
)

__all__ = [
    "AnalysisResult",
    "run_paths",
    "Finding",
    "RULE_CATALOG",
    "SimSanitizer",
    "SanitizerError",
    "Violation",
    "activate",
    "current",
    "deactivate",
    "enabled",
]
