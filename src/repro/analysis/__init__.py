"""``repro.analysis`` — correctness tooling for the reproduction.

Two halves (DESIGN.md "Correctness tooling"):

* a **static analyzer** (``python -m repro.analysis src tests
  benchmarks``) with repo-specific AST rules — determinism (DET001/2,
  SIM001), credit pairing (RES001 lexically, RES002 across helper
  boundaries), whole-program event flow (EVT001 lost wakeups, EVT002
  succeed-after-defuse, DLK001 static wait-for cycles), QP protocol
  conformance (STM001 against the declared ``QP_PROTOCOL`` table),
  string-registry hygiene (FLT001/TEL001) and generated-doc drift
  (DOC001) — each waivable with ``# repro: allow[RULE] justification``
  (optionally ``until=YYYY-MM-DD``; WAI003 flags expiry);
* a **runtime SimSanitizer** (``REPRO_SANITIZE=1``) asserting event-time
  monotonicity, credit conservation, telemetry type stability and — at
  drain — a *stuck-at-drain ledger* of processes parked on events no
  producer can ever trigger (the dynamic face of EVT001).

The interprocedural rules run on a :class:`~repro.analysis.flow.
ProjectIndex` folding every module into one call graph with def-site
resolution for events, credit guards and queue pairs.  ``--format
sarif`` renders findings as SARIF 2.1.0 for CI annotations.

Stdlib-``ast`` only; the analyzer never imports the tree it checks.
"""

from .analyzer import AnalysisResult, run_paths
from .findings import Finding, RULE_CATALOG
from .flow import ProjectIndex
from .sanitizer import (
    SanitizerError,
    SimSanitizer,
    StuckWaiter,
    Violation,
    activate,
    current,
    deactivate,
    enabled,
)
from .sarif import render_sarif

__all__ = [
    "AnalysisResult",
    "run_paths",
    "Finding",
    "RULE_CATALOG",
    "ProjectIndex",
    "render_sarif",
    "SimSanitizer",
    "SanitizerError",
    "StuckWaiter",
    "Violation",
    "activate",
    "current",
    "deactivate",
    "enabled",
]
