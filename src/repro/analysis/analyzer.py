"""Analyzer orchestration: load modules, run rules, apply waivers.

``run_paths(roots)`` is the single entry point the CLI and the test
suite share.  Findings come back sorted ``(path, line, code)`` so the
report — and therefore CI output — is deterministic, which is only
fitting for a determinism linter.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

from .fault_table import check_fault_table
from .findings import Finding, make_finding
from .modules import SourceModule, iter_python_files, load_module
from .rules_determinism import check_det001, check_det002, check_sim001
from .rules_registry import (
    check_flt001,
    check_tel001,
    find_fault_registry_path,
    load_fault_registry,
)
from .rules_resources import check_res001

__all__ = ["AnalysisResult", "run_paths"]


class AnalysisResult:
    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.files_checked = 0
        self.waivers_honoured = 0
        self.errors: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {err}" for err in self.errors)
        tally = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({self.waivers_honoured} waiver(s) honoured)"
        )
        lines.append(tally)
        return "\n".join(lines)


def _module_findings(
    module: SourceModule, sites: FrozenSet[str]
) -> Tuple[List[Finding], int]:
    raw: List[Finding] = []
    raw += check_det001(module)
    raw += check_det002(module)
    raw += check_sim001(module)
    raw += check_res001(module)
    raw += check_flt001(module, sites)
    raw += check_tel001(module)
    kept = [f for f in raw if not module.waivers.suppresses(f)]
    waived = len(raw) - len(kept)
    kept += module.waivers.hygiene_findings()
    return kept, waived


def run_paths(
    roots: List[Path],
    design_doc: Optional[Path] = None,
    fault_registry: Optional[Path] = None,
) -> AnalysisResult:
    result = AnalysisResult()
    registry_path = fault_registry or find_fault_registry_path(roots)
    docs: Dict[str, Tuple[str, str]] = {}
    if registry_path is not None:
        try:
            docs = load_fault_registry(registry_path)
        except (OSError, SyntaxError) as exc:
            result.errors.append(f"cannot read fault registry {registry_path}: {exc}")
    sites = frozenset(docs)
    for path in iter_python_files(roots):
        try:
            module = load_module(path)
        except SyntaxError as exc:
            result.errors.append(f"cannot parse {path}: {exc}")
            continue
        result.files_checked += 1
        findings, waived = _module_findings(module, sites)
        result.waivers_honoured += waived
        result.findings.extend(findings)
    doc_path = design_doc if design_doc is not None else Path("DESIGN.md")
    if docs and doc_path.exists():
        result.findings.extend(check_fault_table(doc_path, docs))
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    return result
