"""Analyzer orchestration: load modules, run rules, apply waivers.

``run_paths(roots)`` is the single entry point the CLI and the test
suite share.  It runs in two phases:

1. **per-module** — every file gets the PR 4 lexical rules (DET*,
   SIM001, RES001, FLT001, TEL001);
2. **whole-program** — all parsed modules are folded into one
   :class:`~repro.analysis.flow.ProjectIndex` and the interprocedural
   ``flow`` rule families run on it: EVT001/EVT002 (event producer
   reachability), DLK001 (static wait-for cycles), STM001 (QP protocol
   conformance against the declared ``QP_PROTOCOL`` table) and RES002
   (credit pairing across helper boundaries).

Waivers are applied *after* both phases so a project-level finding can
be waived at its anchor line like any lexical one, and waiver hygiene
(WAI001/WAI002 and — when the caller supplies ``today`` — WAI003
expiry) still sees every suppression.  Findings come back sorted
``(path, line, code)`` so the report — and therefore CI output — is
deterministic, which is only fitting for a determinism linter.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

from .fault_table import check_fault_table
from .findings import Finding
from .flow import ProjectIndex
from .modules import SourceModule, iter_python_files, load_module
from .rules_determinism import check_det001, check_det002, check_sim001
from .rules_events import check_dlk001, check_evt001, check_evt002
from .rules_protocol import (
    check_res002,
    check_stm001,
    find_qp_protocol_path,
    load_qp_protocol,
)
from .rules_registry import (
    check_flt001,
    check_tel001,
    find_fault_registry_path,
    load_fault_registry,
)
from .rules_resources import check_res001

__all__ = ["AnalysisResult", "run_paths"]


class AnalysisResult:
    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.files_checked = 0
        self.waivers_honoured = 0
        self.errors: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {err}" for err in self.errors)
        tally = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({self.waivers_honoured} waiver(s) honoured)"
        )
        lines.append(tally)
        return "\n".join(lines)


def _module_findings(module: SourceModule, sites: FrozenSet[str]) -> List[Finding]:
    raw: List[Finding] = []
    raw += check_det001(module)
    raw += check_det002(module)
    raw += check_sim001(module)
    raw += check_res001(module)
    raw += check_flt001(module, sites)
    raw += check_tel001(module)
    return raw


def _project_findings(
    modules: List[SourceModule],
    roots: List[Path],
    qp_protocol: Optional[Path],
) -> List[Finding]:
    index = ProjectIndex(modules)
    raw: List[Finding] = []
    raw += check_evt001(index)
    raw += check_evt002(index)
    raw += check_dlk001(index)
    raw += check_res002(index)
    protocol_path = qp_protocol or find_qp_protocol_path(roots)
    if protocol_path is not None and protocol_path.exists():
        raw += check_stm001(index, load_qp_protocol(protocol_path))
    return raw


def run_paths(
    roots: List[Path],
    design_doc: Optional[Path] = None,
    fault_registry: Optional[Path] = None,
    qp_protocol: Optional[Path] = None,
    today: str = "",
) -> AnalysisResult:
    result = AnalysisResult()
    registry_path = fault_registry or find_fault_registry_path(roots)
    docs: Dict[str, Tuple[str, str]] = {}
    if registry_path is not None:
        try:
            docs = load_fault_registry(registry_path)
        except (OSError, SyntaxError) as exc:
            result.errors.append(f"cannot read fault registry {registry_path}: {exc}")
    sites = frozenset(docs)
    modules: List[SourceModule] = []
    by_path: Dict[str, SourceModule] = {}
    raw: List[Finding] = []
    for path in iter_python_files(roots):
        try:
            module = load_module(path)
        except SyntaxError as exc:
            result.errors.append(f"cannot parse {path}: {exc}")
            continue
        result.files_checked += 1
        modules.append(module)
        by_path[module.display_path] = module
        raw.extend(_module_findings(module, sites))
    raw.extend(_project_findings(modules, roots, qp_protocol))
    # Waivers last: project-level findings are waivable at their anchor
    # line exactly like lexical ones, and use-tracking stays accurate.
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.waivers.suppresses(finding):
            result.waivers_honoured += 1
            continue
        result.findings.append(finding)
    for module in modules:
        result.findings.extend(module.waivers.hygiene_findings(today))
    doc_path = design_doc if design_doc is not None else Path("DESIGN.md")
    if docs and doc_path.exists():
        result.findings.extend(check_fault_table(doc_path, docs))
    result.findings.sort(key=lambda f: (f.path, f.line, f.code))
    return result
