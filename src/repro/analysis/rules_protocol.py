"""STM001 / RES002 — protocol-conformance rules on the project index.

* **STM001** — QP method-call sequences are checked against the
  *declared* ``modify_qp`` ladder (``QP_PROTOCOL`` in
  ``repro/net/qp.py``, extracted statically the same way FLT001 reads
  the fault registry).  A tiny abstract interpreter walks each function
  body tracking the state of every QP-ish receiver: straight-line
  sequences are checked exactly; branches fork and re-merge (diverging
  states collapse to *unknown*); loops, ``try`` bodies and anything
  inside ``pytest.raises(...)`` reset to unknown, so the rule only
  reports transitions that are wrong on *every* path that reaches them.
* **RES002** — RES001 across helper boundaries.  A helper that acquires
  a credit and neither releases it locally nor carries a waiver leaves
  an *obligation* on its callers; a call site that neither wraps the
  call in a releasing ``try``/``finally`` nor releases anywhere in the
  caller fires, and the obligation keeps propagating up the (resolved)
  call graph until someone discharges it.  Waived acquires — the
  sanctioned split-phase pattern, released in another process — do not
  propagate: the waiver's justification owns that contract.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .findings import Finding, make_finding
from .flow import FunctionInfo, ProjectIndex
from .rules_resources import _guarded_by_finally, _is_credit_receiver

__all__ = [
    "check_stm001",
    "check_res002",
    "load_qp_protocol",
    "find_qp_protocol_path",
]

#: method -> (allowed predecessor states, resulting state)
QpProtocol = Dict[str, Tuple[Tuple[str, ...], str]]

#: Methods distinctive enough to mark any receiver as a QP.
_DISTINCTIVE = frozenset({"to_rtr", "to_rts", "to_sq_error"})

_UNKNOWN = None


def find_qp_protocol_path(roots: List[Path]) -> Optional[Path]:
    """Locate ``net/qp.py`` under the analyzed roots, falling back to the
    conventional ``src/repro/net/qp.py`` below the cwd."""
    for root in roots:
        base = root if root.is_dir() else root.parent
        for candidate in sorted(base.rglob("qp.py")):
            if candidate.parent.name == "net":
                return candidate
    fallback = Path("src/repro/net/qp.py")
    return fallback if fallback.exists() else None


def load_qp_protocol(qp_path: Path) -> QpProtocol:
    """Extract the ``QP_PROTOCOL`` literal without importing the tree."""
    tree = ast.parse(qp_path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "QP_PROTOCOL"
        ):
            table = ast.literal_eval(node.value)
            return {
                method: (tuple(allowed), result)
                for method, (allowed, result) in table.items()
            }
    return {}


# ---------------------------------------------------------------- STM001


def _qp_receivers(fn: FunctionInfo, protocol: QpProtocol) -> set:
    """Receiver texts treated as QueuePairs in this function: explicit
    ``QueuePair(...)`` assignments, names that look like a qp, and any
    receiver a distinctive ladder method is called on."""
    receivers = set(fn.qp_locals)
    for node in fn.own_nodes:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in protocol
        ):
            continue
        text = ast.unparse(node.func.value)
        last = text.rsplit(".", 1)[-1].lower()
        if (
            node.func.attr in _DISTINCTIVE
            or last.startswith("qp")
            or last.endswith("qp")
        ):
            receivers.add(text)
    return receivers


def _is_raises_block(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and "raises" in ast.unparse(expr.func):
            return True
    return False


class _StmInterp:
    """Abstract interpreter over one function body for STM001."""

    def __init__(self, fn: FunctionInfo, protocol: QpProtocol, receivers: set):
        self.fn = fn
        self.protocol = protocol
        self.receivers = receivers
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        states: Dict[str, Optional[str]] = {}
        self._block(getattr(self.fn.node, "body", []), states, check=True)
        return self.findings

    # -- statement dispatch ------------------------------------------------

    def _block(self, stmts, states: Dict[str, Optional[str]], check: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, states, check)

    def _stmt(self, stmt: ast.stmt, states, check: bool) -> None:
        if isinstance(stmt, ast.If):
            fork = dict(states)
            self._block(stmt.body, states, check)
            self._block(stmt.orelse, fork, check)
            for key in set(states) | set(fork):
                if states.get(key) != fork.get(key):
                    states[key] = _UNKNOWN
            return
        if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
            # Loop bodies re-execute: interpret with unknown entry states
            # (no false fires) and leave everything touched unknown.
            fork = {key: _UNKNOWN for key in states}
            self._block(stmt.body, fork, check)
            self._block(stmt.orelse, fork, check)
            for key in fork:
                states[key] = _UNKNOWN
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, states, check)
            for handler in stmt.handlers:
                fork = {key: _UNKNOWN for key in states}
                self._block(handler.body, fork, check)
            self._block(stmt.finalbody, states, check=check)
            for key in states:
                states[key] = _UNKNOWN
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if isinstance(stmt, ast.With) and _is_raises_block(stmt):
                # A deliberate illegal-transition probe: skip checking,
                # and assume nothing about the state afterwards.
                fork = dict(states)
                self._block(stmt.body, fork, check=False)
                for key in fork:
                    states[key] = _UNKNOWN
                return
            self._block(stmt.body, states, check)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        self._calls_in(stmt, states, check)

    def _calls_in(self, stmt: ast.stmt, states, check: bool) -> None:
        calls = [
            node
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self.protocol
            and ast.unparse(node.func.value) in self.receivers
        ]
        for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
            receiver = ast.unparse(call.func.value)
            method = call.func.attr
            allowed, result = self.protocol[method]
            state = states.get(receiver, _UNKNOWN)
            if (
                check
                and state is not _UNKNOWN
                and "*" not in allowed
                and state not in allowed
            ):
                self.findings.append(
                    make_finding(
                        self.fn.module.display_path,
                        call.lineno,
                        "STM001",
                        f"`{receiver}.{method}()` called in state "
                        f"'{state}' but the declared QP protocol allows it "
                        f"only from {', '.join(repr(a) for a in allowed)}",
                    )
                )
            states[receiver] = result
        # A ``qp = QueuePair(...)`` construction (re)sets the abstract
        # state to the dataclass default.
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id in self.fn.qp_locals
            and isinstance(stmt.value, ast.Call)
        ):
            func = stmt.value.func
            name = func.id if isinstance(func, ast.Name) else ""
            dotted = self.fn.module.from_imports.get(name, name)
            if dotted.rpartition(".")[2] == "QueuePair" or name == "QueuePair":
                states[stmt.targets[0].id] = _ctor_state(stmt.value)


def _ctor_state(call: ast.Call) -> Optional[str]:
    """Abstract state after ``QueuePair(...)``: the dataclass default,
    unless an explicit ``state=QpState.X`` keyword overrides it (member
    names map onto the protocol's state strings)."""
    for keyword in call.keywords:
        if keyword.arg != "state":
            continue
        value = keyword.value
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            if value.value.id == "QpState":
                return value.attr.lower()
        return _UNKNOWN
    return "init"


def check_stm001(index: ProjectIndex, protocol: QpProtocol) -> List[Finding]:
    if not protocol:
        return []
    findings: List[Finding] = []
    for fn in index.functions:
        receivers = _qp_receivers(fn, protocol)
        if not receivers:
            continue
        findings.extend(_StmInterp(fn, protocol, receivers).run())
    return findings


# ---------------------------------------------------------------- RES002


def _own_credit_acquires(fn: FunctionInfo) -> List[ast.Call]:
    return [
        node
        for node in fn.own_nodes
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
        and _is_credit_receiver(node.func.value)
    ]


def _has_credit_release(fn: FunctionInfo) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("release", "release_all")
        and _is_credit_receiver(node.func.value)
        for node in fn.own_nodes
    )


def check_res002(index: ProjectIndex) -> List[Finding]:
    # Per-function summary: does calling this function (transitively)
    # acquire a credit that nothing on the path has released?
    opens: Dict[int, bool] = {}
    visiting: set = set()

    def opens_credit(fn: FunctionInfo) -> bool:
        key = id(fn)
        if key in opens:
            return opens[key]
        if key in visiting:  # recursion: optimistically balanced
            return False
        visiting.add(key)
        result = False
        if not _has_credit_release(fn):
            for acquire in _own_credit_acquires(fn):
                if fn.module.waivers.covers(
                    acquire.lineno, ("RES001", "RES002")
                ):
                    continue  # sanctioned split-phase: contract lives there
                result = True
                break
            if not result:
                for call, callee in fn.resolved_calls:
                    if callee is fn:
                        continue
                    if opens_credit(callee) and not _guarded_by_finally(
                        fn.node, call, ""
                    ):
                        result = True
                        break
        visiting.discard(key)
        opens[key] = result
        return result

    findings: List[Finding] = []
    for fn in index.functions:
        if _has_credit_release(fn):
            continue  # the caller discharges obligations lexically
        for call, callee in fn.resolved_calls:
            if callee is fn or not opens_credit(callee):
                continue
            if _guarded_by_finally(fn.node, call, ""):
                continue
            findings.append(
                make_finding(
                    fn.module.display_path,
                    call.lineno,
                    "RES002",
                    f"call to `{callee.qualname}` acquires credit(s) with "
                    f"no release guaranteed in `{fn.qualname}` or below "
                    "(interprocedural RES001)",
                )
            )
    return findings
