"""Waiver comments: ``# repro: allow[RULE] justification``.

A waiver suppresses matching findings on its own line; a waiver on a
comment-only line covers the next source line (so it can sit above the
offending statement).  Several codes may share one waiver:
``# repro: allow[DET001,DET002] reason``.  A file-scope waiver —
``# repro: allow-file[RULE] reason`` anywhere in the file — covers every
line, for files whose whole purpose is exempt (e.g. a wall-clock CLI).

Waiver hygiene is itself checked: a waiver without a justification is a
WAI001 finding and a waiver that suppressed nothing is WAI002, so stale
escapes cannot silently accumulate as the tree evolves.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .findings import Finding, is_known_rule, make_finding

__all__ = ["Waiver", "WaiverSet", "parse_waivers"]

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\s*"
    r"\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"[ \t]*(?P<why>.*)$"
)


@dataclass
class Waiver:
    """One parsed waiver comment."""

    path: str
    line: int               # line the waiver comment sits on (1-based)
    codes: Tuple[str, ...]
    justification: str
    file_scope: bool = False
    covers_line: int = 0    # line whose findings it suppresses (0 = whole file)
    used: bool = field(default=False, compare=False)


def parse_waivers(path: str, lines: Sequence[str]) -> List[Waiver]:
    """Extract waivers from *comment tokens only* — a waiver example in a
    docstring (like the ones in this module) must not register."""
    waivers: List[Waiver] = []
    source = "\n".join(lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return waivers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _WAIVER_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        codes = tuple(c.strip() for c in match.group("codes").split(","))
        file_scope = match.group("scope") is not None
        before = lines[lineno - 1][: tok.start[1]].strip()
        covers = 0 if file_scope else (lineno if before else lineno + 1)
        waivers.append(
            Waiver(
                path=path,
                line=lineno,
                codes=codes,
                justification=match.group("why").strip(),
                file_scope=file_scope,
                covers_line=covers,
            )
        )
    return waivers


class WaiverSet:
    """Waivers of one file, with use tracking for WAI002."""

    def __init__(self, path: str, lines: Sequence[str]):
        self.path = path
        self.waivers = parse_waivers(path, lines)
        self._by_line: Dict[int, List[Waiver]] = {}
        self._file_scope: List[Waiver] = []
        for waiver in self.waivers:
            if waiver.file_scope:
                self._file_scope.append(waiver)
            else:
                self._by_line.setdefault(waiver.covers_line, []).append(waiver)

    def suppresses(self, finding: Finding) -> bool:
        for waiver in self._by_line.get(finding.line, []):
            if finding.code in waiver.codes:
                waiver.used = True
                return True
        for waiver in self._file_scope:
            if finding.code in waiver.codes:
                waiver.used = True
                return True
        return False

    def hygiene_findings(self) -> List[Finding]:
        """WAI001 (no justification), WAI002 (unused), unknown codes."""
        out: List[Finding] = []
        for waiver in self.waivers:
            unknown = [c for c in waiver.codes if not is_known_rule(c)]
            if unknown:
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI002",
                        f"waiver names unknown rule(s) {', '.join(unknown)}",
                    )
                )
                continue
            if not waiver.justification:
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI001",
                        f"waiver for {', '.join(waiver.codes)} has no justification",
                    )
                )
            if not waiver.used:
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI002",
                        f"waiver for {', '.join(waiver.codes)} suppressed no finding",
                    )
                )
        return out
