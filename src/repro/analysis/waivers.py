"""Waiver comments: ``# repro: allow[RULE] justification``.

A waiver suppresses matching findings on its own line; a waiver on a
comment-only line covers the next source line (so it can sit above the
offending statement).  Several codes may share one waiver:
``# repro: allow[DET001,DET002] reason``.  A file-scope waiver —
``# repro: allow-file[RULE] reason`` anywhere in the file — covers every
line, for files whose whole purpose is exempt (e.g. a wall-clock CLI).

Waiver hygiene is itself checked: a waiver without a justification is a
WAI001 finding and a waiver that suppressed nothing is WAI002, so stale
escapes cannot silently accumulate as the tree evolves.

A waiver may carry an expiry in its justification —
``# repro: allow[RULE] until=2026-12-31 reason`` — and once that date
has passed the waiver *still suppresses* (so one stale date never
avalanches into every underlying finding at once) but becomes a WAI003
finding of its own.  Expiry is only evaluated when the caller supplies
``today``: the CLI passes the wall clock, library callers (and the sim)
pass nothing and stay clock-free.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .findings import Finding, is_known_rule, make_finding

__all__ = ["Waiver", "WaiverSet", "parse_waivers"]

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\s*"
    r"\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"[ \t]*(?P<why>.*)$"
)

#: ``until=YYYY-MM-DD`` anywhere in the justification text.
_UNTIL_RE = re.compile(r"\buntil=(?P<date>\S+)")

#: The only accepted expiry-date shape (lexicographic compare works).
_DATE_RE = re.compile(r"\d{4}-\d{2}-\d{2}$")


@dataclass
class Waiver:
    """One parsed waiver comment."""

    path: str
    line: int               # line the waiver comment sits on (1-based)
    codes: Tuple[str, ...]
    justification: str
    file_scope: bool = False
    covers_line: int = 0    # line whose findings it suppresses (0 = whole file)
    expires: str = ""       # ISO date from ``until=``, "" when undated
    used: bool = field(default=False, compare=False)


def parse_waivers(path: str, lines: Sequence[str]) -> List[Waiver]:
    """Extract waivers from *comment tokens only* — a waiver example in a
    docstring (like the ones in this module) must not register."""
    waivers: List[Waiver] = []
    source = "\n".join(lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return waivers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _WAIVER_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        codes = tuple(c.strip() for c in match.group("codes").split(","))
        file_scope = match.group("scope") is not None
        before = lines[lineno - 1][: tok.start[1]].strip()
        covers = 0 if file_scope else (lineno if before else lineno + 1)
        why = match.group("why").strip()
        until = _UNTIL_RE.search(why)
        waivers.append(
            Waiver(
                path=path,
                line=lineno,
                codes=codes,
                justification=why,
                file_scope=file_scope,
                covers_line=covers,
                expires=until.group("date") if until else "",
            )
        )
    return waivers


class WaiverSet:
    """Waivers of one file, with use tracking for WAI002."""

    def __init__(self, path: str, lines: Sequence[str]):
        self.path = path
        self.waivers = parse_waivers(path, lines)
        self._by_line: Dict[int, List[Waiver]] = {}
        self._file_scope: List[Waiver] = []
        for waiver in self.waivers:
            if waiver.file_scope:
                self._file_scope.append(waiver)
            else:
                self._by_line.setdefault(waiver.covers_line, []).append(waiver)

    def suppresses(self, finding: Finding) -> bool:
        for waiver in self._by_line.get(finding.line, []):
            if finding.code in waiver.codes:
                waiver.used = True
                return True
        for waiver in self._file_scope:
            if finding.code in waiver.codes:
                waiver.used = True
                return True
        return False

    def covers(self, line: int, codes) -> bool:
        """Non-marking query: is any of ``codes`` waived on ``line``?

        Used by interprocedural summaries (RES002) that must consult
        waivers without claiming them as *used* — a summary probe is not
        a suppressed finding, and must not mask WAI002.
        """
        for waiver in self._by_line.get(line, []) + self._file_scope:
            if any(code in waiver.codes for code in codes):
                return True
        return False

    def hygiene_findings(self, today: str = "") -> List[Finding]:
        """WAI001 (no justification), WAI002 (unused), unknown codes and —
        only when the caller supplies ``today`` (ISO date) — WAI003 for
        expired or unparseable ``until=`` dates."""
        out: List[Finding] = []
        for waiver in self.waivers:
            unknown = [c for c in waiver.codes if not is_known_rule(c)]
            if unknown:
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI002",
                        f"waiver names unknown rule(s) {', '.join(unknown)}",
                    )
                )
                continue
            if not _UNTIL_RE.sub("", waiver.justification).strip():
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI001",
                        f"waiver for {', '.join(waiver.codes)} has no justification",
                    )
                )
            if not waiver.used:
                out.append(
                    make_finding(
                        self.path,
                        waiver.line,
                        "WAI002",
                        f"waiver for {', '.join(waiver.codes)} suppressed no finding",
                    )
                )
            if today and waiver.expires:
                if not _DATE_RE.fullmatch(waiver.expires):
                    out.append(
                        make_finding(
                            self.path,
                            waiver.line,
                            "WAI003",
                            f"waiver until={waiver.expires!r} is not a "
                            "YYYY-MM-DD date",
                        )
                    )
                elif waiver.expires < today:
                    out.append(
                        make_finding(
                            self.path,
                            waiver.line,
                            "WAI003",
                            f"waiver for {', '.join(waiver.codes)} expired on "
                            f"{waiver.expires}",
                        )
                    )
        return out
