"""SimSanitizer: the dynamic half the AST rules cannot prove.

The static rules show the *code* is well-formed; the sanitizer checks
the *run* upholds the invariants the shell's guarantees rest on:

* **event-time monotonicity** — the engine never dispatches an event
  earlier than the clock, and nothing schedules into the past;
* **credit conservation** — credits are never created (a release into a
  full pool without a reset reclaim is a double release) and, at a clean
  drain, never destroyed: every pool is back at capacity except for
  deliberately wedged credits (``Crediter.wedge``, the
  ``app.wedge_credit`` chaos site);
* **telemetry type stability** — one metric name maps to one metric
  kind across *every* registry in the process (the per-registry
  ``TypeError`` cannot see a counter-vs-gauge clash between two nodes
  whose registries merge later) plus the ``component.metric`` naming
  convention, enforced at runtime for dynamically built names the
  TEL001 literal check cannot reach.

* **stuck-at-drain ledger** — when a run drains (no events left) while
  generator processes are still parked on untriggered events, those
  waiters can never resume: the static face of this bug is EVT001's
  lost-wakeup rule, and the ledger is its dynamic witness.  Each orphan
  is attributed to the *creation site* of the event it waits on (file
  and line, captured at ``Event()`` construction while sanitizing).
  Daemon loops legitimately park at drain (a Store.get feeding a mover),
  so the ledger is a *query* (:meth:`SimSanitizer.stuck_ledger`) plus an
  explicit assertion (:meth:`SimSanitizer.check_stuck_at_drain`) for
  workloads known to quiesce — it is deliberately not folded into the
  autouse test gate.  Ledger rendering is deterministic: identical
  seeded runs produce byte-identical reports.

Opt-in: set ``REPRO_SANITIZE=1`` and every ``Environment`` attaches the
process-wide sanitizer (``current()``); tests' conftest fails any test
that accumulated violations.  Detached cost is one ``is None`` branch
per engine step — the same zero-overhead pattern as the profiler and
the fault injector.

Violations are *recorded*, not raised, so a chaos workload runs to
completion and the report names every offending guard; ``strict=True``
flips to fail-fast for debugging.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "SimSanitizer",
    "SanitizerError",
    "StuckWaiter",
    "Violation",
    "current",
    "activate",
    "deactivate",
    "enabled",
    "observe_metric",
]

#: Simulated-time comparison slack (float ns arithmetic).
_TIME_EPS = 1e-9


class SanitizerError(AssertionError):
    """Raised in strict mode, and by ``raise_if_violations``."""


def _creation_site() -> str:
    """``dir/file.py:line`` of the nearest caller outside the engine and
    the sanitizer — the frame that actually asked for the event.  Only
    the trailing two path components are kept so the string (and hence
    the ledger) is stable across checkouts and runs."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        base = os.path.basename(filename)
        if base not in ("engine.py", "sanitizer.py", "resources.py"):
            tail = filename.replace(os.sep, "/").rsplit("/", 2)[-2:]
            return "/".join(tail) + f":{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass(frozen=True)
class StuckWaiter:
    """One orphaned waiter in the stuck-at-drain ledger."""

    process: str     # Process.name of the parked generator
    origin: str      # creation site of the event it waits on
    time_ns: float   # simulated clock at drain

    def render(self) -> str:
        return (
            f"process {self.process!r} parked at drain (t={self.time_ns:.1f}ns) "
            f"on an untriggered event created at {self.origin}"
        )


@dataclass(frozen=True)
class Violation:
    kind: str        # "monotonicity" | "credit.leak" | "credit.double_release" | "telemetry.type" | "telemetry.name"
    message: str
    time_ns: float = 0.0

    def render(self) -> str:
        return f"[{self.kind}] t={self.time_ns:.1f}ns {self.message}"


class SimSanitizer:
    """Collects invariant violations from engine/credit/telemetry hooks."""

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[Violation] = []
        self._crediters: List[Any] = []
        self._metric_kinds: Dict[str, str] = {}
        self._processes: List[Any] = []

    # ------------------------------------------------------------- plumbing

    def _violate(self, kind: str, message: str, time_ns: float = 0.0) -> None:
        violation = Violation(kind=kind, message=message, time_ns=time_ns)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation.render())

    def report(self) -> str:
        if not self.violations:
            return "sanitizer: clean"
        lines = [f"sanitizer: {len(self.violations)} violation(s)"]
        lines.extend("  " + violation.render() for violation in self.violations)
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise SanitizerError(self.report())

    def reset(self) -> None:
        """Forget accumulated state (between tests: violations AND the
        cross-registry kind map, which is per-card-lifetime, not global)."""
        self.violations.clear()
        self._metric_kinds.clear()
        self._crediters.clear()
        self._processes.clear()

    # --------------------------------------------------------- engine hooks

    def on_schedule(self, env: Any, delay: float) -> None:
        if delay < 0:
            self._violate(
                "monotonicity",
                f"event scheduled {-delay:.1f}ns into the past",
                env.now,
            )

    def on_step(self, env: Any, when: float) -> None:
        if when + _TIME_EPS < env.now:
            self._violate(
                "monotonicity",
                f"event dispatched at t={when:.1f}ns after clock reached "
                f"t={env.now:.1f}ns",
                env.now,
            )

    def on_event_created(self, event: Any) -> None:
        """Stamp the event with its creation site (engine hook, called
        only while a sanitizer is attached — zero cost otherwise)."""
        event._origin = _creation_site()

    def on_process_created(self, process: Any) -> None:
        self._processes.append(process)

    # ------------------------------------------------- stuck-at-drain ledger

    def stuck_ledger(self, env: Any) -> List[StuckWaiter]:
        """Every live process of ``env`` parked on an event that nothing
        can trigger any more (the queue holds no producer for it).  Call
        at drain; entries are sorted so the ledger renders byte-identical
        across identically seeded runs.  Daemon waiters (a Store.get
        feeding an idle mover) legitimately appear here — it is
        :meth:`check_stuck_at_drain`, not this query, that asserts."""
        scheduled = {id(event) for event in env._queue}
        entries = []
        for process in self._processes:
            if process.env is not env or not process.is_alive:
                continue
            target = process._target
            if target is None or target.triggered:
                continue
            if id(target) in scheduled:
                continue  # a producer (the queue itself) remains
            entries.append(
                StuckWaiter(
                    process=process.name,
                    origin=getattr(target, "_origin", "<untracked>"),
                    time_ns=env.now,
                )
            )
        entries.sort(key=lambda e: (e.process, e.origin))
        return entries

    def check_stuck_at_drain(self, env: Any) -> None:
        """Assert no orphaned waiters at drain — for workloads known to
        quiesce completely (regression tests around EVT001-style lost
        wakeups).  Records one violation per ledger entry."""
        for entry in self.stuck_ledger(env):
            self._violate("event.stuck_at_drain", entry.render(), entry.time_ns)

    # --------------------------------------------------------- credit hooks

    def register_crediter(self, crediter: Any) -> None:
        self._crediters.append(crediter)

    def on_double_release(self, crediter: Any) -> None:
        self._violate(
            "credit.double_release",
            f"guard {crediter.name!r}: release into a full pool with no "
            "reset reclaim outstanding (credit created from nothing)",
            crediter.env.now,
        )

    def check_drain(self, env: Any) -> None:
        """Conservation at a clean drain: every pool of this environment
        is back at capacity, minus deliberately wedged credits.  Call
        when the workload is known to have quiesced (the engine calls it
        from ``run(until=None)``\\ 's exhaustion path is deliberately NOT
        done: hung-tenant chaos runs legitimately drain with credits
        parked behind un-consumed FIFO flits)."""
        for crediter in self._crediters:
            if crediter.env is not env:
                continue
            outstanding = crediter.capacity - crediter.available
            if outstanding != crediter.wedged:
                self._violate(
                    "credit.leak",
                    f"guard {crediter.name!r}: {outstanding} credit(s) "
                    f"outstanding at drain, {crediter.wedged} wedged — "
                    f"{outstanding - crediter.wedged} leaked",
                    env.now,
                )

    # ------------------------------------------------------ telemetry hooks

    def on_metric(self, name: str, kind: str) -> None:
        from .rules_registry import _METRIC_NAME_RE

        previous = self._metric_kinds.setdefault(name, kind)
        if previous != kind:
            self._violate(
                "telemetry.type",
                f"metric {name!r} registered as {kind} but a registry in "
                f"this process already holds it as {previous} (merge would "
                "fail)",
            )
        if not _METRIC_NAME_RE.fullmatch(name):
            self._violate(
                "telemetry.name",
                f"metric {name!r} violates the component.metric convention",
            )


# -------------------------------------------------------------- process-wide

_active: Optional[SimSanitizer] = None


def enabled() -> bool:
    return bool(os.environ.get("REPRO_SANITIZE"))


def current() -> Optional[SimSanitizer]:
    """The process-wide sanitizer: created on first use when
    ``REPRO_SANITIZE`` is set, else whatever ``activate()`` installed."""
    global _active
    if _active is None and enabled():
        _active = SimSanitizer()
    return _active


def activate(sanitizer: Optional[SimSanitizer] = None) -> SimSanitizer:
    """Explicitly install a process-wide sanitizer (tests)."""
    global _active
    _active = sanitizer if sanitizer is not None else SimSanitizer()
    return _active


def deactivate() -> None:
    global _active
    _active = None


def observe_metric(name: str, kind: str) -> None:
    """Telemetry's cheap entry point: no-op unless a sanitizer is live."""
    sanitizer = current()
    if sanitizer is not None:
        sanitizer.on_metric(name, kind)
