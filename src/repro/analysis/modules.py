"""Source loading and scope classification for the analyzer.

Rules are scoped so they fire where the invariant actually matters:

* *sim-reachable* (``is_sim_scope``): the file lives under a ``src``
  directory — the simulator package itself.  Wall-clock and entropy are
  banned here (DET001) because anything the engine can reach feeds the
  deterministic event stream.  Benchmarks and tests measure wall time
  legitimately, so they are out of DET001 scope by construction.
* *event-scheduling* (``schedules_events``): the module imports the sim
  engine (``repro.sim`` or a relative ``.sim``/``..sim`` form) or calls
  ``env.process(...)`` / ``env.timeout(...)``.  Set-iteration order
  (DET002) and blocking calls in generators (SIM001) only matter in
  these modules.

Import tracking resolves local aliases (``import time as t``,
``from random import randint``) so the determinism rules match on what
a name *is*, not what it is spelled as.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .waivers import WaiverSet

__all__ = ["SourceModule", "load_module", "iter_python_files"]

_SIM_MODULE_MARKERS = ("repro.sim", ".sim", "sim.engine")


@dataclass
class SourceModule:
    path: Path
    display_path: str
    tree: ast.Module
    lines: List[str]
    waivers: WaiverSet
    #: local name -> dotted module path, for ``import x``/``import x as y``
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> "module.attr", for ``from x import y [as z]``
    from_imports: Dict[str, str] = field(default_factory=dict)
    is_sim_scope: bool = False
    schedules_events: bool = False

    def resolves_to(self, node: ast.expr, dotted: str) -> bool:
        """Does ``node`` (a call's ``func``) denote ``dotted``, e.g.
        ``time.monotonic``, through any local import alias?"""
        want_module, _, want_attr = dotted.rpartition(".")
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            module = self.module_aliases.get(node.value.id)
            return module == want_module and node.attr == want_attr
        if isinstance(node, ast.Name):
            return self.from_imports.get(node.id) == dotted
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
            # e.g. datetime.datetime.now: outer attr chain
            inner = node.value
            if isinstance(inner.value, ast.Name):
                module = self.module_aliases.get(inner.value.id)
                if module is not None:
                    return f"{module}.{inner.attr}.{node.attr}" == dotted
            local = self.from_imports.get(getattr(inner.value, "id", ""), None)
            if local is not None:
                return f"{local}.{inner.attr}.{node.attr}" == dotted
        return False


def _collect_imports(module: SourceModule) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            source = "." * node.level + (node.module or "")
            for alias in node.names:
                module.from_imports[alias.asname or alias.name] = (
                    f"{node.module or ''}.{alias.name}".lstrip(".")
                )
            if any(marker in source for marker in _SIM_MODULE_MARKERS):
                module.schedules_events = True
            if source.endswith("sim") or source == "..sim" or source == ".sim":
                module.schedules_events = True


def _detect_scheduling_calls(module: SourceModule) -> None:
    if module.schedules_events:
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("process", "timeout")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("env", "environment")
        ):
            module.schedules_events = True
            return
        if isinstance(node, ast.Name) and node.id == "Environment":
            module.schedules_events = True
            return


def load_module(path: Path, display_path: Optional[str] = None) -> Optional[SourceModule]:
    """Parse one file; returns None for unparsable sources (reported by
    the caller as a hard error, not a finding)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    lines = text.splitlines()
    display = display_path or str(path)
    module = SourceModule(
        path=path,
        display_path=display,
        tree=tree,
        lines=lines,
        waivers=WaiverSet(display, lines),
        is_sim_scope="src" in path.parts,
    )
    _collect_imports(module)
    _detect_scheduling_calls(module)
    return module


def iter_python_files(roots: List[Path]) -> List[Path]:
    """Every ``.py`` under the given files/directories, sorted for a
    deterministic report order."""
    seen = set()
    out: List[Path] = []
    for root in roots:
        candidates = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out
