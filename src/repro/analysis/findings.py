"""Finding records and the rule catalogue for ``repro.analysis``.

Every rule has a stable code (grep-able, waivable), a one-line summary
and a *fix-it* hint that tells the author what the repo-idiomatic repair
looks like.  The catalogue is the single source of truth: the CLI help,
DESIGN.md's rule table and the waiver validator all read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["Finding", "RuleInfo", "RULE_CATALOG", "is_known_rule"]


@dataclass(frozen=True)
class RuleInfo:
    """Static description of one analyzer rule."""

    code: str
    summary: str
    fixit: str


#: code -> rule description.  Codes are grouped by invariant family:
#: DET* determinism, RES* resource pairing, FLT*/TEL* registry hygiene,
#: SIM* simulation purity, DOC* generated-doc drift, WAI* waiver hygiene.
RULE_CATALOG: Dict[str, RuleInfo] = {
    info.code: info
    for info in (
        RuleInfo(
            "DET001",
            "wall-clock or ambient entropy in sim-reachable code",
            "route time through Environment.now / repro.sim.clock and "
            "randomness through a seeded random.Random substream",
        ),
        RuleInfo(
            "DET002",
            "iteration over a set/frozenset in a module that schedules events",
            "iterate sorted(...) or an ordered container so event order "
            "cannot depend on hash seeding",
        ),
        RuleInfo(
            "SIM001",
            "blocking host call inside a simulation generator",
            "model latency with env.timeout(...) instead of blocking the "
            "host process",
        ),
        RuleInfo(
            "RES001",
            "credit acquire() without a release() guaranteed on all paths",
            "pair acquire with try/finally release (or waive split-phase "
            "destination-queue crediting with a justification)",
        ),
        RuleInfo(
            "FLT001",
            "fault-site string not present in the FAULT_SITES registry",
            "use a site constant from repro.faults.plan, or register the "
            "new site in FAULT_SITE_DOCS",
        ),
        RuleInfo(
            "TEL001",
            "telemetry metric name violates the component.metric convention",
            "use a lowercase dot-separated 'domain.metric' path (see "
            "DESIGN.md 'Metric naming')",
        ),
        RuleInfo(
            "DOC001",
            "generated FAULT_SITES table in DESIGN.md drifted from the registry",
            "run `python -m repro.analysis --write-fault-table DESIGN.md`",
        ),
        RuleInfo(
            "WAI001",
            "waiver without a one-line justification",
            "append the reason after the bracket: "
            "`# repro: allow[RULE] why this is safe`",
        ),
        RuleInfo(
            "WAI002",
            "waiver that suppressed nothing (stale or misplaced)",
            "delete the waiver, or move it onto the offending line",
        ),
    )
}


def is_known_rule(code: str) -> bool:
    return code in RULE_CATALOG


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, printable as ``file:line CODE message``."""

    path: str
    line: int
    code: str
    message: str
    fixit: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line} {self.code} {self.message}"
        if self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text


def make_finding(path: str, line: int, code: str, message: str) -> Finding:
    info = RULE_CATALOG[code]
    return Finding(path=path, line=line, code=code, message=message, fixit=info.fixit)
