"""Finding records and the rule catalogue for ``repro.analysis``.

Every rule has a stable code (grep-able, waivable), a one-line summary
and a *fix-it* hint that tells the author what the repo-idiomatic repair
looks like.  The catalogue is the single source of truth: the CLI help,
DESIGN.md's rule table and the waiver validator all read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["Finding", "RuleInfo", "RULE_CATALOG", "is_known_rule"]


@dataclass(frozen=True)
class RuleInfo:
    """Static description of one analyzer rule."""

    code: str
    summary: str
    fixit: str


#: code -> rule description.  Codes are grouped by invariant family:
#: DET* determinism, RES* resource pairing, FLT*/TEL* registry hygiene,
#: SIM* simulation purity, DOC* generated-doc drift, WAI* waiver hygiene,
#: EVT*/DLK*/STM* whole-program concurrency (the ``flow`` pass).
RULE_CATALOG: Dict[str, RuleInfo] = {
    info.code: info
    for info in (
        RuleInfo(
            "DET001",
            "wall-clock or ambient entropy in sim-reachable code",
            "route time through Environment.now / repro.sim.clock and "
            "randomness through a seeded random.Random substream",
        ),
        RuleInfo(
            "DET002",
            "iteration over a set/frozenset in a module that schedules events",
            "iterate sorted(...) or an ordered container so event order "
            "cannot depend on hash seeding",
        ),
        RuleInfo(
            "SIM001",
            "blocking host call inside a simulation generator",
            "model latency with env.timeout(...) instead of blocking the "
            "host process",
        ),
        RuleInfo(
            "RES001",
            "credit acquire() without a release() guaranteed on all paths",
            "pair acquire with try/finally release (or waive split-phase "
            "destination-queue crediting with a justification)",
        ),
        RuleInfo(
            "FLT001",
            "fault-site string not present in the FAULT_SITES registry",
            "use a site constant from repro.faults.plan, or register the "
            "new site in FAULT_SITE_DOCS",
        ),
        RuleInfo(
            "TEL001",
            "telemetry metric name violates the component.metric convention",
            "use a lowercase dot-separated 'domain.metric' path (see "
            "DESIGN.md 'Metric naming')",
        ),
        RuleInfo(
            "DOC001",
            "generated FAULT_SITES table in DESIGN.md drifted from the registry",
            "run `python -m repro.analysis --write-fault-table DESIGN.md`",
        ),
        RuleInfo(
            "RES002",
            "helper call acquires credit(s) with no release guaranteed in "
            "the caller (interprocedural RES001)",
            "wrap the helper call in try/finally releasing the credit, or "
            "waive the call site naming the releasing counterpart",
        ),
        RuleInfo(
            "EVT001",
            "event awaited but no reachable succeed()/fail() producer "
            "anywhere in the project (lost wakeup)",
            "add the producer, or let the event escape to the code that "
            "triggers it (pass/store/return it)",
        ),
        RuleInfo(
            "EVT002",
            "succeed() reachable after defuse() marked the event's failure "
            "handled out-of-band",
            "pick one outcome: defuse()+fail(exc) is the sanctioned "
            "chain; succeeding a defused event contradicts the handoff",
        ),
        RuleInfo(
            "DLK001",
            "static wait-for cycle between generator processes (each awaits "
            "an event only the other can set)",
            "break the cycle: add an independent producer/timeout for one "
            "of the events, or merge the processes",
        ),
        RuleInfo(
            "STM001",
            "QP method-call sequence violates the declared modify_qp "
            "transition ladder (QP_PROTOCOL in repro/net/qp.py)",
            "follow RESET→INIT→RTR→RTS (connect() walks it); reset()/"
            "to_error() are legal from any state",
        ),
        RuleInfo(
            "WAI001",
            "waiver without a one-line justification",
            "append the reason after the bracket: "
            "`# repro: allow[RULE] why this is safe`",
        ),
        RuleInfo(
            "WAI002",
            "waiver that suppressed nothing (stale or misplaced)",
            "delete the waiver, or move it onto the offending line",
        ),
        RuleInfo(
            "WAI003",
            "waiver expired (its until=YYYY-MM-DD date has passed) or "
            "carries an unparseable until= date",
            "fix the underlying finding, or renew the date with a fresh "
            "justification: `# repro: allow[RULE] until=YYYY-MM-DD why`",
        ),
    )
}


def is_known_rule(code: str) -> bool:
    return code in RULE_CATALOG


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, printable as ``file:line CODE message``."""

    path: str
    line: int
    code: str
    message: str
    fixit: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line} {self.code} {self.message}"
        if self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text


def make_finding(path: str, line: int, code: str, message: str) -> Finding:
    info = RULE_CATALOG[code]
    return Finding(path=path, line=line, code=code, message=message, fixit=info.fixit)
