"""DET001 / DET002 / SIM001 — the determinism family.

The simulation's contract (DESIGN.md "Determinism contract") is that a
run is a pure function of ``(workload, seed, plan)``.  Three ways code
breaks that in practice, each with its own rule:

* **DET001** — wall-clock or ambient entropy (``time.time``,
  ``datetime.now``, module-level ``random.*``, ``os.urandom``,
  ``secrets``/``uuid4``) in sim-reachable code.  Seeded
  ``random.Random(...)`` instances are the sanctioned substream idiom
  and never flagged.
* **DET002** — ``for``/comprehension iteration over a ``set`` in a
  module that schedules events: hash-seed-dependent order becomes
  event-queue order.  ``sorted(...)`` over a set is the fix and is
  recognised as safe.
* **SIM001** — blocking host calls (``time.sleep``, subprocess, socket
  I/O) inside a simulation generator: they stall the entire event loop
  and leak wall-clock into simulated behaviour.
"""

from __future__ import annotations

import ast
from typing import List

from .findings import Finding, make_finding
from .modules import SourceModule

__all__ = ["check_det001", "check_det002", "check_sim001"]

#: Entropy / wall-clock sources banned in sim-reachable code.
_DET001_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
)

#: Module-level ``random`` functions (the shared, unseeded global RNG).
#: ``random.Random``/``random.SystemRandom`` are constructors, not draws.
_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "getrandbits", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate", "seed",
    }
)

_SIM001_CALLS = (
    "time.sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.socket",
    "select.select",
)


def _is_global_random_call(module: SourceModule, func: ast.expr) -> bool:
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and module.module_aliases.get(func.value.id) == "random"
    ):
        return func.attr in _RANDOM_FUNCS
    if isinstance(func, ast.Name):
        return module.from_imports.get(func.id) in {
            f"random.{name}" for name in _RANDOM_FUNCS
        }
    return False


def check_det001(module: SourceModule) -> List[Finding]:
    if not module.is_sim_scope:
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        for dotted in _DET001_CALLS:
            if module.resolves_to(node.func, dotted):
                findings.append(
                    make_finding(
                        module.display_path,
                        node.lineno,
                        "DET001",
                        f"call to {dotted}() leaks wall-clock/entropy into "
                        "sim-reachable code",
                    )
                )
                break
        else:
            if _is_global_random_call(module, node.func):
                name = ast.unparse(node.func)
                findings.append(
                    make_finding(
                        module.display_path,
                        node.lineno,
                        "DET001",
                        f"{name}() draws from the unseeded global RNG",
                    )
                )
    return findings


def _obviously_set(node: ast.expr, local_sets: set) -> bool:
    """Conservative: flag only expressions that are certainly sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _obviously_set(node.left, local_sets) or _obviously_set(
            node.right, local_sets
        )
    return False


def _local_set_names(scope: ast.AST) -> set:
    """Names assigned an obviously-set value anywhere in this scope."""
    names: set = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _obviously_set(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_det002(module: SourceModule) -> List[Finding]:
    if not module.schedules_events:
        return []
    findings: List[Finding] = []
    scopes = [module.tree] + [
        n
        for n in ast.walk(module.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    flagged = set()
    for scope in scopes:
        local_sets = _local_set_names(scope)
        iterations = []
        for node in ast.walk(scope):
            if isinstance(node, ast.For):
                iterations.append((node.lineno, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    iterations.append((node.lineno, gen.iter))
        for lineno, it in iterations:
            if _obviously_set(it, local_sets) and (module.display_path, lineno) not in flagged:
                flagged.add((module.display_path, lineno))
                findings.append(
                    make_finding(
                        module.display_path,
                        lineno,
                        "DET002",
                        f"iteration over unordered set `{ast.unparse(it)}` in "
                        "an event-scheduling module",
                    )
                )
    return findings


def _own_nodes(func: ast.AST) -> List[ast.AST]:
    """Nodes of a function body excluding nested function scopes."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
    return out


def check_sim001(module: SourceModule) -> List[Finding]:
    if not module.schedules_events:
        return []
    findings: List[Finding] = []
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # A generator: yields in its own body (nested defs excluded).
        own_nodes = _own_nodes(func)
        if not any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes):
            continue
        for node in own_nodes:
            if not isinstance(node, ast.Call):
                continue
            for dotted in _SIM001_CALLS:
                if module.resolves_to(node.func, dotted):
                    findings.append(
                        make_finding(
                            module.display_path,
                            node.lineno,
                            "SIM001",
                            f"blocking call {dotted}() inside simulation "
                            f"generator `{func.name}`",
                        )
                    )
                    break
    return findings
