"""CLI: ``python -m repro.analysis src tests benchmarks``.

Exit status is the CI contract: 0 when the tree is clean, 1 when any
finding or parse error survives waivers.  ``--explain CODE`` prints one
rule's catalogue entry; ``--write-fault-table DESIGN.md`` regenerates
the fault-site table from the registry (see ``fault_table.py``);
``--format sarif`` emits SARIF 2.1.0 for CI annotation upload.

This module is the only place the wall clock is consulted: waiver
expiry (WAI003) compares ``until=`` dates against ``--today``, which
defaults to the real date *here* and nowhere else — simulation and
analysis library code stay clock-free so results are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from datetime import date
from pathlib import Path

from .analyzer import run_paths
from .fault_table import write_fault_table
from .findings import RULE_CATALOG
from .rules_registry import find_fault_registry_path, load_fault_registry
from .sarif import render_sarif


def _explain(code: str) -> int:
    info = RULE_CATALOG.get(code.upper())
    if info is None:
        print(f"unknown rule {code!r}; known: {', '.join(sorted(RULE_CATALOG))}")
        return 1
    print(f"{info.code}: {info.summary}")
    print(f"  fix: {info.fixit}")
    print(f"  waive: # repro: allow[{info.code}] <one-line justification>")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analyzer: determinism, credit "
        "pairing, event flow and registry hygiene (see DESIGN.md "
        "'Correctness tooling').",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories")
    parser.add_argument("--explain", metavar="CODE", help="describe one rule and exit")
    parser.add_argument(
        "--write-fault-table",
        metavar="DOC",
        type=Path,
        help="regenerate the FAULT_SITES table between markers in DOC",
    )
    parser.add_argument(
        "--design-doc",
        type=Path,
        default=None,
        help="DESIGN.md to drift-check (default: ./DESIGN.md when present)",
    )
    parser.add_argument(
        "--fault-registry",
        type=Path,
        default=None,
        help="plan.py to read FAULT_SITE_DOCS from (default: auto-locate)",
    )
    parser.add_argument(
        "--qp-protocol",
        type=Path,
        default=None,
        help="qp.py to read QP_PROTOCOL from for STM001 (default: auto-locate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--today",
        default=date.today().isoformat(),
        metavar="YYYY-MM-DD",
        help="clock for waiver expiry (WAI003); defaults to the real date",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    if args.write_fault_table is not None:
        registry = args.fault_registry or find_fault_registry_path(
            args.paths or [Path("src")]
        )
        if registry is None:
            print("error: cannot locate faults/plan.py registry", file=sys.stderr)
            return 1
        docs = load_fault_registry(registry)
        if not write_fault_table(args.write_fault_table, docs):
            print(
                f"error: {args.write_fault_table} lacks the FAULT_SITES "
                "marker comments",
                file=sys.stderr,
            )
            return 1
        print(f"fault-site table refreshed in {args.write_fault_table}")
        if not args.paths:
            return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests benchmarks)")

    result = run_paths(
        args.paths,
        design_doc=args.design_doc,
        fault_registry=args.fault_registry,
        qp_protocol=args.qp_protocol,
        today=args.today,
    )
    report = render_sarif(result) if args.format == "sarif" else result.render()
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
        if args.format == "text":
            print(f"report written to {args.output}")
    else:
        print(report)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
