"""CLI: ``python -m repro.analysis src tests benchmarks``.

Exit status is the CI contract: 0 when the tree is clean, 1 when any
finding or parse error survives waivers.  ``--explain CODE`` prints one
rule's catalogue entry; ``--write-fault-table DESIGN.md`` regenerates
the fault-site table from the registry (see ``fault_table.py``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analyzer import run_paths
from .fault_table import write_fault_table
from .findings import RULE_CATALOG
from .rules_registry import find_fault_registry_path, load_fault_registry


def _explain(code: str) -> int:
    info = RULE_CATALOG.get(code.upper())
    if info is None:
        print(f"unknown rule {code!r}; known: {', '.join(sorted(RULE_CATALOG))}")
        return 1
    print(f"{info.code}: {info.summary}")
    print(f"  fix: {info.fixit}")
    print(f"  waive: # repro: allow[{info.code}] <one-line justification>")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analyzer: determinism, credit "
        "pairing and registry hygiene (see DESIGN.md 'Correctness tooling').",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories")
    parser.add_argument("--explain", metavar="CODE", help="describe one rule and exit")
    parser.add_argument(
        "--write-fault-table",
        metavar="DOC",
        type=Path,
        help="regenerate the FAULT_SITES table between markers in DOC",
    )
    parser.add_argument(
        "--design-doc",
        type=Path,
        default=None,
        help="DESIGN.md to drift-check (default: ./DESIGN.md when present)",
    )
    parser.add_argument(
        "--fault-registry",
        type=Path,
        default=None,
        help="plan.py to read FAULT_SITE_DOCS from (default: auto-locate)",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    if args.write_fault_table is not None:
        registry = args.fault_registry or find_fault_registry_path(
            args.paths or [Path("src")]
        )
        if registry is None:
            print("error: cannot locate faults/plan.py registry", file=sys.stderr)
            return 1
        docs = load_fault_registry(registry)
        if not write_fault_table(args.write_fault_table, docs):
            print(
                f"error: {args.write_fault_table} lacks the FAULT_SITES "
                "marker comments",
                file=sys.stderr,
            )
            return 1
        print(f"fault-site table refreshed in {args.write_fault_table}")
        if not args.paths:
            return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests benchmarks)")

    result = run_paths(
        args.paths, design_doc=args.design_doc, fault_registry=args.fault_registry
    )
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
