"""Whole-program project index for the interprocedural ``flow`` pass.

The PR 4 rules see one file at a time; the bug classes that actually bit
this repo — lost wakeups, events succeeded after ``defuse()``, credit
leaks hidden behind helper calls, illegal QP ladders — span function and
module boundaries.  :class:`ProjectIndex` loads every analyzed module
into one structure the flow rules (``rules_events``/``rules_protocol``)
query:

* a **function table** over every ``def`` (with class membership and
  generator-ness), plus resolution of call sites back into the table
  (bare names, ``self.method(...)``, ``module.func(...)`` via import
  aliases) — the static call graph;
* **def-site resolution** for the three value kinds the rules care
  about — :class:`~repro.sim.engine.Event` (``env.event()`` /
  ``Event(env)``), :class:`~repro.core.credit.CreditGuard`
  (``crediter.guard()`` / ``CreditGuard(...)``) and
  :class:`~repro.net.qp.QueuePair` constructions;
* per-symbol **usage classification** for event values: *await*
  (``yield ev``), *produce* (``ev.succeed()`` / ``ev.fail()``),
  *defuse*, and *escape* (any other read — passed, stored, returned,
  composed into a condition).  Escapes make the rules conservative: an
  event that leaves the indexed view is assumed to have a producer.

Everything is stdlib-``ast``; the index never imports the tree it
analyses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .modules import SourceModule

__all__ = ["ProjectIndex", "FunctionInfo", "EventUse", "build_index"]

#: Receiver-attribute names that create an Event-like value.
_EVENT_FACTORY_ATTRS = frozenset({"event"})
#: ``from repro.sim import Event`` style constructor names.
_EVENT_CTOR_NAMES = frozenset({"Event"})
_GUARD_FACTORY_ATTRS = frozenset({"guard"})
_GUARD_CTOR_NAMES = frozenset({"CreditGuard"})
_QP_CTOR_NAMES = frozenset({"QueuePair"})

#: Event-producing / consuming method names.
_PRODUCE_ATTRS = frozenset({"succeed", "fail"})
_DEFUSE_ATTR = "defuse"


def _is_env_receiver(expr: ast.expr) -> bool:
    """``env`` / ``self.env`` / ``self._env`` / ``node.env`` — anything
    whose final component names an environment."""
    tail = expr
    while isinstance(tail, ast.Attribute):
        if tail.attr in ("env", "_env", "environment"):
            return True
        tail = tail.value
    return isinstance(tail, ast.Name) and tail.id in ("env", "_env", "environment")


@dataclass
class EventUse:
    """One classified use of an event symbol."""

    kind: str  # "def" | "await" | "produce" | "defuse" | "escape"
    line: int
    function: "FunctionInfo"


@dataclass(eq=False)  # identity semantics: used as dict keys in the rules
class FunctionInfo:
    """One indexed function/method and the facts the rules need."""

    name: str
    class_name: Optional[str]
    module: SourceModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    own_nodes: List[ast.AST] = field(default_factory=list)
    is_generator: bool = False
    #: Call sites resolvable inside the project: (call node, callee).
    resolved_calls: List[Tuple[ast.Call, "FunctionInfo"]] = field(
        default_factory=list
    )
    #: Local names assigned a QueuePair(...) construction.
    qp_locals: Set[str] = field(default_factory=set)
    #: Local names assigned an event construction.
    event_locals: Set[str] = field(default_factory=set)

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def display(self) -> str:
        return f"{self.module.display_path}:{self.qualname}"


class ProjectIndex:
    """All analyzed modules folded into one queryable structure."""

    def __init__(self, modules: Iterable[SourceModule]):
        self.modules: List[SourceModule] = list(modules)
        self.functions: List[FunctionInfo] = []
        #: (module display path, class or "", name) -> FunctionInfo
        self._by_key: Dict[Tuple[str, str, str], FunctionInfo] = {}
        #: bare function name -> every FunctionInfo carrying it
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: child AST node -> parent, per module (for use classification)
        self._parents: Dict[int, ast.AST] = {}
        #: attribute event symbols: attr name -> uses across the project
        self.attr_events: Dict[str, List[EventUse]] = {}
        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._resolve_calls(module)
        self._classify_attr_events()

    # ------------------------------------------------------------ building

    def _index_module(self, module: SourceModule) -> None:
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, child, class_name)
                    visit(child, None)  # nested defs lose the class
                else:
                    visit(child, class_name)

        visit(module.tree, None)

    def _add_function(
        self, module: SourceModule, node: ast.AST, class_name: Optional[str]
    ) -> None:
        info = FunctionInfo(
            name=node.name, class_name=class_name, module=module, node=node
        )
        info.own_nodes = _own_nodes(node)
        info.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in info.own_nodes
        )
        for n in info.own_nodes:
            if isinstance(n, ast.Assign) and len(n.targets) == 1:
                target = n.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_event_ctor(module, n.value):
                        info.event_locals.add(target.id)
                    elif self._is_ctor(module, n.value, _QP_CTOR_NAMES):
                        info.qp_locals.add(target.id)
        self.functions.append(info)
        key = (module.display_path, class_name or "", node.name)
        self._by_key[key] = info
        self.by_name.setdefault(node.name, []).append(info)

    @staticmethod
    def _is_ctor(module: SourceModule, expr: ast.expr, names: frozenset) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in names:
                return True
            dotted = module.from_imports.get(func.id, "")
            return dotted.rpartition(".")[2] in names
        return False

    def _is_event_ctor(self, module: SourceModule, expr: ast.expr) -> bool:
        if self._is_ctor(module, expr, _EVENT_CTOR_NAMES):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _EVENT_FACTORY_ATTRS
            and _is_env_receiver(expr.func.value)
        )

    def is_guard_ctor(self, module: SourceModule, expr: ast.expr) -> bool:
        """``crediter.guard()`` or ``CreditGuard(...)``."""
        if self._is_ctor(module, expr, _GUARD_CTOR_NAMES):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _GUARD_FACTORY_ATTRS
        )

    # ----------------------------------------------------- call resolution

    def _resolve_calls(self, module: SourceModule) -> None:
        for info in self.functions:
            if info.module is not module:
                continue
            for node in info.own_nodes:
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(module, info, node)
                if callee is not None:
                    info.resolved_calls.append((node, callee))

    def _resolve_call(
        self, module: SourceModule, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            # Same-module module-level function first, then a project
            # function reached through ``from x import f``.
            local = self._by_key.get((module.display_path, "", func.id))
            if local is not None:
                return local
            dotted = module.from_imports.get(func.id)
            if dotted:
                return self._find_by_dotted(dotted)
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                if func.value.id == "self" and caller.class_name:
                    return self._by_key.get(
                        (module.display_path, caller.class_name, func.attr)
                    )
                alias = module.module_aliases.get(func.value.id)
                if alias:
                    return self._find_by_dotted(f"{alias}.{func.attr}")
        return None

    def _find_by_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Match ``pkg.mod.func`` against indexed modules by path suffix."""
        module_path, _, name = dotted.rpartition(".")
        if not module_path:
            return None
        suffix = module_path.replace(".", "/") + ".py"
        candidates = [
            fn
            for fn in self.by_name.get(name, [])
            if fn.class_name is None
            and (
                fn.module.display_path.endswith(suffix)
                or fn.module.display_path.endswith(
                    module_path.replace(".", "/") + "/__init__.py"
                )
            )
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ---------------------------------------------- event use classification

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def classify_attr_use(
        self, attr_node: ast.Attribute
    ) -> str:
        """How is this ``<expr>.X`` attribute read used?  One of
        ``produce`` / ``defuse`` / ``await`` / ``escape`` / ``store``."""
        parent = self.parent(attr_node)
        if isinstance(parent, ast.Attribute):
            grand = self.parent(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                if parent.attr in _PRODUCE_ATTRS:
                    return "produce"
                if parent.attr == _DEFUSE_ATTR:
                    return "defuse"
                # some other method (.triggered is a property, but e.g.
                # ``ev.callbacks.append`` routes here): treat as escape.
                return "escape"
            return "escape"
        if isinstance(parent, ast.Yield) and parent.value is attr_node:
            return "await"
        if isinstance(parent, ast.Assign) and attr_node in parent.targets:
            return "store"
        return "escape"

    def _classify_attr_events(self) -> None:
        # Pass 1: which self-attributes are assigned fresh events anywhere?
        defined: Set[str] = set()
        for fn in self.functions:
            for node in fn.own_nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and self._is_event_ctor(fn.module, node.value)
                    ):
                        defined.add(target.attr)
                        self.attr_events.setdefault(target.attr, []).append(
                            EventUse("def", node.lineno, fn)
                        )
        if not defined:
            return
        # Pass 2: classify every other read of those attribute names,
        # project-wide (attribute identity is by name: `a.done` in one
        # module and `b.done` in another conservatively share a symbol).
        for fn in self.functions:
            for node in fn.own_nodes:
                if not isinstance(node, ast.Attribute) or node.attr not in defined:
                    continue
                parent = self.parent(node)
                if isinstance(parent, ast.Assign) and node in parent.targets:
                    # Assignment target: fresh-event def-sites were taken
                    # in pass 1; a plain ``= None`` reset is neutral; any
                    # other value aliases the symbol -> escape.
                    if self._is_event_ctor(fn.module, parent.value):
                        continue
                    if not (
                        isinstance(parent.value, ast.Constant)
                        and parent.value.value is None
                    ):
                        self.attr_events[node.attr].append(
                            EventUse("escape", node.lineno, fn)
                        )
                    continue
                kind = self.classify_attr_use(node)
                if kind == "store":
                    kind = "escape"
                self.attr_events[node.attr].append(
                    EventUse(kind, node.lineno, fn)
                )

    # -------------------------------------------------------- local events

    def classify_local_event_uses(
        self, fn: FunctionInfo, var: str
    ) -> List[EventUse]:
        """Classified uses of a local event variable inside ``fn``."""
        uses: List[EventUse] = []
        for node in fn.own_nodes:
            if not isinstance(node, ast.Name) or node.id != var:
                continue
            parent = self.parent(node)
            if isinstance(parent, ast.Assign) and node in parent.targets:
                continue  # the def-site (or a rebind: handled by caller)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                grand = self.parent(parent)
                if isinstance(grand, ast.Call) and grand.func is parent:
                    if parent.attr in _PRODUCE_ATTRS:
                        uses.append(EventUse("produce", node.lineno, fn))
                        continue
                    if parent.attr == _DEFUSE_ATTR:
                        uses.append(EventUse("defuse", node.lineno, fn))
                        continue
                uses.append(EventUse("escape", node.lineno, fn))
                continue
            if isinstance(parent, ast.Yield) and parent.value is node:
                uses.append(EventUse("await", node.lineno, fn))
                continue
            uses.append(EventUse("escape", node.lineno, fn))
        return uses


def _own_nodes(func: ast.AST) -> List[ast.AST]:
    """Every node in the function body excluding nested function scopes."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
    return out


def build_index(modules: Iterable[SourceModule]) -> ProjectIndex:
    return ProjectIndex(modules)
