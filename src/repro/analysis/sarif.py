"""Minimal SARIF 2.1.0 rendering of an :class:`AnalysisResult`.

Just enough of the schema for GitHub code scanning to place inline
annotations: one ``run`` with a ``tool.driver`` describing every rule in
the catalogue, one ``result`` per finding, and a ``toolExecutionNotes``
entry per parse error.  Output is ``json.dumps(..., sort_keys=True)``
over findings that ``run_paths`` already sorted, so the document is
byte-stable across runs — CI can diff it.
"""

from __future__ import annotations

import json

from .analyzer import AnalysisResult
from .findings import RULE_CATALOG

__all__ = ["render_sarif"]

_TOOL_NAME = "repro-analysis"
_INFO_URI = "https://github.com/paper-repro/repro/blob/main/DESIGN.md"


def render_sarif(result: AnalysisResult) -> str:
    rules = [
        {
            "id": info.code,
            "shortDescription": {"text": info.summary},
            "help": {"text": f"fix: {info.fixit}"},
        }
        for info in RULE_CATALOG.values()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    invocation = {
        "executionSuccessful": not result.errors,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": err}} for err in result.errors
        ],
    }
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "invocations": [invocation],
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
