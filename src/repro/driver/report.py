"""Observability: a /proc-style status report for a card.

The real driver exposes per-vFPGA state through sysfs/debugfs; operators
read it to see which tenant is saturating the link or stalling on
credits.  ``card_report`` gathers the equivalent counters from every
layer of the simulated shell.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.interfaces import StreamType
from ..health.monitor import health_section
from ..telemetry.collect import collect_card_metrics
from .driver import Driver

__all__ = ["card_report", "format_report"]


def _fault_section(driver: Driver) -> Dict[str, Any]:
    """Per-domain fault and recovery counters (degraded-mode telemetry)."""
    shell = driver.shell
    xdma = shell.static.xdma
    section: Dict[str, Any] = {
        "pcie_replays": xdma.link.replays,
        "msix_lost": xdma.interrupts_lost,
        "icap_crc_failures": shell.static.icap.crc_failures,
        "icap_rollbacks": shell.icap_rollbacks,
        "reconfig_retries": driver.reconfig_retries,
        "irq_timeouts": driver.irq_timeouts,
        "invoke_timeouts": driver.invoke_timeouts,
    }
    if shell.dynamic.hbm is not None:
        section["hbm_ecc_corrected"] = shell.dynamic.hbm.ecc_corrected
        section["hbm_ecc_uncorrected"] = shell.dynamic.hbm.ecc_uncorrected
    if shell.fault_injector is not None:
        section["injected"] = shell.fault_injector.summary()
    return section


def card_report(driver: Driver) -> Dict[str, Any]:
    """Collect a structured snapshot of one card's state."""
    shell = driver.shell
    xdma = shell.static.xdma
    report: Dict[str, Any] = {
        "device": shell.config.device,
        "services": sorted(shell.config.service_names),
        "shell_id": shell.shell_id,
        "reconfigurations": {
            "shell": shell.shell_reconfigs,
            "app": shell.app_reconfigs,
            "icap_bytes": shell.static.icap.bytes_programmed,
        },
        "pcie": {
            "h2c_bytes": xdma.link.h2c_bytes,
            "c2h_bytes": xdma.link.c2h_bytes,
            "interrupts": xdma.interrupts_raised,
            "writebacks": {name: wb.count for name, wb in xdma.writebacks.items()},
        },
        "faults": _fault_section(driver),
        # Card health verdict + per-region recovery state (repro.health).
        "health": health_section(driver),
        # The statistics-register view: every domain's live counters under
        # canonical dot-path names (see repro.telemetry).
        "telemetry": collect_card_metrics(driver).snapshot(),
        "memory": {
            "page_faults": driver.page_faults,
            "tlb_walks": driver.tlb_walks,
            "migrated_bytes": driver.migrated_bytes,
        },
        "processes": sorted(driver.processes),
        "vfpgas": [],
    }
    for vfpga in shell.vfpgas:
        mmu = shell.dynamic.mmus.get(vfpga.vfpga_id)
        entry = {
            "id": vfpga.vfpga_id,
            "app": vfpga.app.name if vfpga.app else None,
            "interrupts_sent": vfpga.interrupts_sent,
            "credits": {
                kind.value: {
                    "rd_in_flight": vfpga.rd_credits[kind].in_flight,
                    "rd_stalls": vfpga.rd_credits[kind].stalls,
                    "wr_in_flight": vfpga.wr_credits[kind].in_flight,
                    "wr_stalls": vfpga.wr_credits[kind].stalls,
                }
                for kind in StreamType
            },
        }
        if mmu is not None:
            entry["tlb"] = {
                "hits": mmu.tlb.hits,
                "misses": mmu.tlb.misses,
                "hit_rate": round(mmu.tlb.hit_rate, 4),
                "occupancy": mmu.tlb.occupancy,
            }
        report["vfpgas"].append(entry)
    if shell.dynamic.rdma is not None:
        report["rdma"] = dict(shell.dynamic.rdma.stats)
    if shell.dynamic.tcp is not None:
        report["tcp"] = dict(shell.dynamic.tcp.stats)
    if shell.dynamic.hbm is not None:
        report["hbm"] = {
            "bytes_read": shell.dynamic.hbm.bytes_read,
            "bytes_written": shell.dynamic.hbm.bytes_written,
            "ecc_corrected": shell.dynamic.hbm.ecc_corrected,
            "ecc_uncorrected": shell.dynamic.hbm.ecc_uncorrected,
        }
    if shell.dynamic.sniffer is not None:
        report["sniffer"] = {
            "captured": shell.dynamic.sniffer.captured,
            "dropped": shell.dynamic.sniffer.dropped,
        }
    return report


def _lines(prefix: str, value: Any):
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from _lines(f"{prefix}.{key}" if prefix else str(key), sub)
    elif isinstance(value, list) and value and isinstance(value[0], dict):
        for i, sub in enumerate(value):
            yield from _lines(f"{prefix}[{i}]", sub)
    else:
        yield f"{prefix}: {value}"


def format_report(report: Dict[str, Any]) -> str:
    """Flatten the snapshot into sysfs-style `key: value` lines."""
    return "\n".join(_lines("", report))
