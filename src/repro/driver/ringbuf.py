"""Ring-buffer command path: cmdReqQ/cmdRespQ descriptor rings (paper §6).

Coyote v2's shell is driven the way modern NICs are: software writes
work descriptors into fixed-slot rings living in host memory, then rings
a doorbell CSR; the shell DMA-fetches every new slot in one burst and
writes completions back in batches (blue-rdma's ``Ringbuf`` /
``WorkQueueRingbuf`` layering is the reference implementation).  The
per-call ioctl of :meth:`repro.driver.Driver.post_descriptor` survives on
top of a one-slot ring, so the ring is the *only* submit path.

The model here keeps the ring mechanics honest but foreshortens one
thing: slots are recycled when the doorbell drains them, not when their
completions retire (a real ring frees slots at the consumer index).
Draining at the doorbell keeps head/tail arithmetic observable while
letting the completion side live in :class:`CompletionBatch` — the
batched cmdRespQ writeback that fires **one** event per drained doorbell
instead of one interrupt per work request.

Ring descriptors never carry raw virtual addresses.  Software first
registers memory regions (:class:`MrTable`, the MTT analogue): a
registration walks and *pins* the region's pages in the vFPGA's TLB, and
every :class:`RingOp` names an ``(mr_key, offset)`` pair that the driver
validates — unknown keys, out-of-bounds slices and writes through
read-only regions all fail with typed errors before any hardware sees
the request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..core.interfaces import StreamType
from ..sim.engine import Environment, Event
from .errors import (
    MrError,
    MrKeyError,
    MrBoundsError,
    MrAccessError,
    MrOverlapError,
    RingError,
    RingFullError,
)

__all__ = [
    "DEFAULT_RING_SLOTS",
    "RingOpcode",
    "RingOp",
    "MemoryRegion",
    "MrTable",
    "CommandRing",
    "CompletionBatch",
    "RingState",
]

#: Default cmdReqQ depth; matches a 4 KB ring page of 64-byte descriptors.
DEFAULT_RING_SLOTS = 64


class RingOpcode(Enum):
    """What a ring slot asks the shell to do (subset of ``CoyoteOper``)."""

    READ = "read"  # memory -> vFPGA stream
    WRITE = "write"  # vFPGA stream -> memory
    TRANSFER = "transfer"  # read + write through the kernel


@dataclass
class RingOp:
    """One cmdReqQ slot: an operation phrased against registered MRs.

    ``mr_key``/``offset``/``length`` name the source slice for ``READ``
    and ``TRANSFER`` and the destination slice for ``WRITE``; a
    ``TRANSFER`` additionally names its destination with the ``dst_*``
    fields (``dst_length`` defaults to ``length``).
    """

    opcode: RingOpcode
    mr_key: int
    offset: int = 0
    length: int = 0
    stream: StreamType = StreamType.HOST
    dest: int = 0
    dst_mr_key: Optional[int] = None
    dst_offset: int = 0
    dst_length: Optional[int] = None
    dst_stream: StreamType = StreamType.HOST
    dst_dest: int = 0


@dataclass
class MemoryRegion:
    """One MTT entry: a registered, pinned slice of a process's VA space."""

    key: int
    pid: int
    vaddr: int
    length: int
    writable: bool = True
    #: Pages pinned in the vFPGA TLB on behalf of this region (filled in
    #: by the driver once registration completed).
    num_pages: int = 0

    @property
    def end(self) -> int:
        return self.vaddr + self.length


class MrTable:
    """Per-process memory-region table (the driver's MTT shadow).

    Pure bookkeeping — the driver charges registration latency and does
    the page-table walks/TLB pinning; this class owns key allocation,
    overlap rejection and the key -> vaddr resolution ring slots rely on.
    """

    def __init__(self, pid: int):
        self.pid = pid
        self._regions: Dict[int, MemoryRegion] = {}
        self._next_key = 1

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions.values())

    def _check_range(self, vaddr: int, length: int) -> None:
        if length <= 0:
            raise MrError(f"MR length must be positive, got {length}")
        if vaddr < 0:
            raise MrError(f"MR vaddr must be non-negative, got {vaddr:#x}")
        for mr in self._regions.values():
            if vaddr < mr.end and mr.vaddr < vaddr + length:
                raise MrOverlapError(
                    f"[{vaddr:#x}, {vaddr + length:#x}) overlaps MR key "
                    f"{mr.key} [{mr.vaddr:#x}, {mr.end:#x})"
                )

    def register(self, vaddr: int, length: int, writable: bool = True) -> MemoryRegion:
        self._check_range(vaddr, length)
        mr = MemoryRegion(
            key=self._next_key,
            pid=self.pid,
            vaddr=vaddr,
            length=length,
            writable=writable,
        )
        self._next_key += 1
        self._regions[mr.key] = mr
        return mr

    def restore(
        self, key: int, vaddr: int, length: int, writable: bool = True
    ) -> MemoryRegion:
        """Re-create a region with its *original* key (checkpoint restore).

        Ring descriptors captured in a checkpoint name MR keys, so the
        destination MTT must reproduce the source's key assignment
        exactly; the allocator cursor jumps past restored keys so fresh
        registrations never collide with them.
        """
        if key in self._regions:
            raise MrKeyError(f"pid {self.pid}: MR key {key} already in use")
        if key <= 0:
            raise MrKeyError(f"pid {self.pid}: invalid MR key {key}")
        self._check_range(vaddr, length)
        mr = MemoryRegion(
            key=key, pid=self.pid, vaddr=vaddr, length=length, writable=writable
        )
        self._regions[key] = mr
        self._next_key = max(self._next_key, key + 1)
        return mr

    def lookup(self, key: int) -> MemoryRegion:
        mr = self._regions.get(key)
        if mr is None:
            raise MrKeyError(f"pid {self.pid}: no MR with key {key}")
        return mr

    def resolve(self, key: int, offset: int, length: int, write: bool) -> int:
        """Validate an ``(mr_key, offset, length)`` slice; return its vaddr."""
        mr = self.lookup(key)
        if offset < 0 or offset + length > mr.length:
            raise MrBoundsError(
                f"MR key {key}: slice [{offset}, {offset + length}) outside "
                f"region of {mr.length} bytes"
            )
        if write and not mr.writable:
            raise MrAccessError(f"MR key {key} is registered read-only")
        return mr.vaddr + offset

    def deregister(self, key: int) -> MemoryRegion:
        mr = self._regions.pop(key, None)
        if mr is None:
            raise MrKeyError(f"pid {self.pid}: no MR with key {key}")
        return mr


class CommandRing:
    """A fixed-slot cmdReqQ with head/tail CSR semantics.

    ``tail`` is the software producer index, ``head`` the hardware
    consumer index; both increase monotonically, so ``tail - head`` is
    the occupancy.  :meth:`post` fills the next slot (raising
    :class:`RingFullError` when no slot is free) and :meth:`drain` is
    the doorbell's consumer side: it hands back every posted slot and
    advances ``head`` to ``tail`` in one step.
    """

    def __init__(self, slots: int = DEFAULT_RING_SLOTS):
        if slots <= 0:
            raise RingError(f"ring needs at least one slot, got {slots}")
        self.slots = slots
        self.head = 0
        self.tail = 0
        self._slots: deque = deque()
        self.high_water = 0

    @property
    def occupancy(self) -> int:
        return self.tail - self.head

    @property
    def free(self) -> int:
        return self.slots - self.occupancy

    def post(self, entry) -> int:
        """Fill the next free slot; returns the slot's absolute index."""
        if self.occupancy >= self.slots:
            raise RingFullError(
                f"ring full: {self.slots} slots posted since the last doorbell"
            )
        index = self.tail
        self._slots.append(entry)
        self.tail += 1
        self.high_water = max(self.high_water, self.occupancy)
        return index

    def drain(self) -> List:
        """Doorbell consumer side: take every new slot, advance head."""
        batch = list(self._slots)
        self._slots.clear()
        self.head = self.tail
        return batch

    def rebase(self, head: int) -> None:
        """Rewind the monotonic indices to a checkpointed ``head`` so a
        restored ring reproduces the source's CSR values exactly; only
        legal on an empty, drained ring (re-posting the checkpointed
        slots then advances ``tail`` to its recorded value)."""
        if self._slots or self.head != self.tail:
            raise RingError("cannot rebase a ring with slots posted")
        if head < 0:
            raise RingError(f"ring head must be non-negative, got {head}")
        self.head = head
        self.tail = head


class CompletionBatch:
    """The cmdRespQ writeback for one drained doorbell.

    Each work request the drain produced registers a *gate* key; the
    batch's event fires exactly once — when the last gate completes —
    with the list of :class:`~repro.core.interfaces.CompletionEntry`
    values in gate-registration order.  That single event is the "one
    interrupt or poll per drain" of the ring ABI.  ``TRANSFER`` slots
    also register an *absorb* key for their read half: that completion
    is consumed silently instead of leaking into the legacy per-process
    completion stores.
    """

    def __init__(self, event: Event):
        self.event = event
        self._order: List[Tuple[bool, int]] = []
        self._entries: Dict[Tuple[bool, int], object] = {}
        self._expected = 0

    def expect(self, key: Tuple[bool, int]) -> None:
        self._order.append(key)
        self._expected += 1

    def collect(self, key: Tuple[bool, int], entry) -> bool:
        """Record one gate completion; True once the batch is complete."""
        self._entries[key] = entry
        return len(self._entries) >= self._expected

    def results(self) -> List:
        return [self._entries[key] for key in self._order]

    @property
    def outstanding(self) -> int:
        return self._expected - len(self._entries)


class RingState:
    """One process's command ring plus its in-flight completion batches."""

    def __init__(self, env: Environment, slots: int = DEFAULT_RING_SLOTS):
        self.env = env
        self.cmd = CommandRing(slots)
        self._gates: Dict[Tuple[bool, int], CompletionBatch] = {}
        self._absorbed: Dict[Tuple[bool, int], CompletionBatch] = {}
        self.batches_opened = 0
        self.batches_completed = 0

    def open_batch(self) -> CompletionBatch:
        self.batches_opened += 1
        return CompletionBatch(Event(self.env))

    def gate(self, batch: CompletionBatch, key: Tuple[bool, int]) -> None:
        batch.expect(key)
        self._gates[key] = batch

    def absorb(self, batch: CompletionBatch, key: Tuple[bool, int]) -> None:
        self._absorbed[key] = batch

    @property
    def outstanding(self) -> int:
        return len(self._gates)

    def on_completion(self, write: bool, entry) -> bool:
        """Route one hardware completion; True if the ring consumed it."""
        key = (write, entry.wr_id)
        if self._absorbed.pop(key, None) is not None:
            return True
        batch = self._gates.pop(key, None)
        if batch is None:
            return False
        if batch.collect(key, entry):
            self.batches_completed += 1
            batch.event.succeed(batch.results())
        return True

    def fail_batches(self, exc: Exception) -> int:
        """Fail every in-flight batch (region recovery / teardown).

        Returns the number of *work requests* that will never complete,
        mirroring :meth:`repro.driver.Driver.fail_pending` accounting.
        """
        failed = len(self._gates)
        seen: List[CompletionBatch] = []
        for batch in self._gates.values():
            if any(batch is b for b in seen):
                continue
            seen.append(batch)
            if not batch.event.triggered:
                batch.event.defuse().fail(exc)
        self._gates.clear()
        self._absorbed.clear()
        return failed
