"""The Coyote v2 device driver model (paper §5.2).

"Coyote v2's device driver is a Linux kernel component bridging user
applications in software and in hardware.  It manages the FPGA and its
peripherals, handling memory mappings, dynamic allocations, page faults,
and partial reconfiguration."

This is the host half of the hybrid MMU: it owns the per-process page
tables, services TLB-miss walks and page faults (allocating frames and
migrating pages between host DRAM and card HBM over the migration
channel), demultiplexes completions and interrupts to cThreads, and
implements the reconfiguration ioctls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..core.bitstream import Bitstream, BitstreamKind
from ..core.interfaces import CompletionEntry, Descriptor, StreamType
from ..core.reconfig import IcapController, IcapCrcError, ReconfigError
from ..core.shell import Shell
from ..core.vfpga import UserApp
from ..faults.plan import RING_DOORBELL_DROP
from ..faults.retry import RetryPolicy
from ..health.errors import DecoupledError, NodeDownError, QuarantinedError
from ..mem.allocator import Allocation, AllocType, FrameAllocator, VirtualAllocator
from ..mem.mmu import MemLocation, PageTable, PageTableEntry, SegmentationFault
from ..mem.tlb import PAGE_1G, PAGE_2M, PAGE_4K
from ..pcie.xdma import MsiVector
from ..sim.engine import AnyOf, Environment, Event
from ..sim.resources import Store
from .errors import (
    DriverError,
    MrError,
    ProcessClosedError,
    RingError,
    RingFullError,
    ZeroLengthDescriptorError,
)
from .ringbuf import (
    DEFAULT_RING_SLOTS,
    CommandRing,
    MemoryRegion,
    MrTable,
    RingOp,
    RingOpcode,
    RingState,
)

__all__ = ["Driver", "ProcessContext", "DriverError"]

#: Cost of the getMem ioctl + mmap per page (host-side bookkeeping).
ALLOC_LATENCY_PER_PAGE_NS = 800.0
#: Cost of registering one page of a memory region (MTT entry + pin).
MR_REGISTER_LATENCY_PER_PAGE_NS = 600.0
#: Fixed page-fault service overhead (interrupt + driver entry), on top of
#: the migration transfer time.
PAGE_FAULT_OVERHEAD_NS = 12_000.0
#: How long the driver waits for RECONFIG_DONE before falling back to
#: polling the ICAP status register (lost-interrupt recovery).
RECONFIG_IRQ_TIMEOUT_NS = 50_000.0
#: Ring work-request ids live above this base so they can never collide
#: with the cThread-allocated ids of the legacy ioctl path.
RING_WR_ID_BASE = 1 << 20

#: Host physical address regions per page size, so frames never collide.
_HOST_REGION_4K = (0x0000_0000, 8 << 30)
_HOST_REGION_2M = (8 << 30, 24 << 30)
_HOST_REGION_1G = (32 << 30, 32 << 30)


@dataclass
class ProcessContext:
    """Driver state for one registered host process (cThread)."""

    pid: int
    vfpga_id: int
    page_table: PageTable
    valloc: VirtualAllocator
    completions_rd: Store
    completions_wr: Store
    interrupts: Store  # eventfd analogue
    allocations: List[Allocation] = field(default_factory=list)
    #: Completion events registered by wr_id, so concurrent invokes from
    #: the same thread never steal each other's completions.
    pending: Dict[Tuple[bool, int], object] = field(default_factory=dict)
    #: Registration timestamps of ``pending`` keys; the per-cThread
    #: watchdog ages these to spot one stuck lane on a busy region.
    pending_since: Dict[Tuple[bool, int], float] = field(default_factory=dict)
    #: The one-slot command ring the legacy per-call ioctl rides on
    #: (every ``post_descriptor`` is a one-descriptor doorbell).
    ioctl_ring: Optional[CommandRing] = None
    #: Batched command/completion rings, armed by ``Driver.setup_rings``.
    rings: Optional[RingState] = None
    #: Registered memory regions (the MTT shadow for ring descriptors).
    mrs: Optional[MrTable] = None

    def expect(self, env: Environment, write: bool, wr_id: int):
        """Register interest in a completion before posting descriptors."""
        from ..sim.engine import Event

        event = Event(env)
        self.pending[(write, wr_id)] = event
        self.pending_since[(write, wr_id)] = env.now
        return event

    def forget(self, write: bool, wr_id: int):
        """Deregister a pending completion (timeout/abort paths)."""
        self.pending_since.pop((write, wr_id), None)
        return self.pending.pop((write, wr_id), None)


class Driver:
    """One driver instance per card (per :class:`Shell`)."""

    def __init__(
        self,
        env: Environment,
        shell: Shell,
        retry_policy: RetryPolicy = RetryPolicy(),
    ):
        self.env = env
        self.shell = shell
        self.retry_policy = retry_policy
        self.processes: Dict[int, ProcessContext] = {}
        # Host frame allocators per page size.
        self._host_frames = {
            PAGE_4K: FrameAllocator(_HOST_REGION_4K[1], PAGE_4K, "host-4k"),
            PAGE_2M: FrameAllocator(_HOST_REGION_2M[1], PAGE_2M, "host-2m"),
            PAGE_1G: FrameAllocator(_HOST_REGION_1G[1], PAGE_1G, "host-1g"),
        }
        self._host_base = {
            PAGE_4K: _HOST_REGION_4K[0],
            PAGE_2M: _HOST_REGION_2M[0],
            PAGE_1G: _HOST_REGION_1G[0],
        }
        self._card_frames: Optional[FrameAllocator] = None
        self.gpu = None  # attached via attach_gpu()
        # Registered once: the static layer's XDMA persists across shell
        # swaps, so re-registering in _bind_shell would duplicate handlers.
        self._reconfig_done_waiters: List[Event] = []
        shell.static.xdma.on_interrupt(
            MsiVector.RECONFIG_DONE, self._on_reconfig_done
        )
        self._bind_shell()
        self.page_faults = 0
        self.tlb_walks = 0
        self.migrated_bytes = 0
        self.reconfig_retries = 0
        self.irq_timeouts = 0
        self.invoke_timeouts = 0
        # Ring-ABI counters (read by repro.telemetry.collect as ring.*).
        self.ring_doorbells = 0
        self.ring_doorbells_lost = 0
        self.ring_descriptors = 0
        self.ring_batches = 0
        self.ring_full_stalls = 0
        self.mrs_registered = 0
        self.mrs_deregistered = 0
        self._ring_wr_ids = itertools.count(RING_WR_ID_BASE)
        #: AppSchedulers driving this card's regions; they register
        #: themselves so card_report() can harvest their telemetry.
        self.schedulers: List = []
        #: Per-region completions demuxed to software — a forward-progress
        #: signal the health watchdogs sample.
        self.completions_delivered: Dict[int, int] = {}
        #: Attached :class:`repro.health.HealthMonitor` (or ``None``).
        self.health = None
        #: Lazily created :class:`repro.health.RecoveryManager`.
        self.recovery = None
        #: Regions with a PR in flight (watchdogs must not judge them).
        self._reconfiguring: Dict[int, int] = {}
        #: Cluster scope (set by :class:`repro.cluster.FpgaCluster`): this
        #: card's node index, whether the node is currently down (crashed
        #: or declared dead — all new work is rejected with
        #: :class:`repro.health.NodeDownError`), and the attached
        #: :class:`repro.health.ClusterMonitor`, if any.
        self.node_index: Optional[int] = None
        self.node_down = False
        self.cluster_health = None

    def attach_scheduler(self, scheduler) -> None:
        """Register an :class:`repro.api.AppScheduler` for telemetry."""
        if scheduler not in self.schedulers:
            self.schedulers.append(scheduler)

    def attach_health(self, monitor) -> None:
        """Register the card's :class:`repro.health.HealthMonitor`."""
        self.health = monitor

    def attach_gpu(self, gpu) -> None:
        """Register a GPU as a shared-virtual-memory target (§6.1)."""
        if gpu.config.page_size != self.shell.config.services.mmu.tlb.page_size:
            raise DriverError(
                "GPU page size must match the shell MMU page size for SVM"
            )
        self.gpu = gpu
        self.shell.dynamic.host_mover.gpu = gpu

    # ---------------------------------------------------------------- wiring

    def _bind_shell(self) -> None:
        """Bind MMU walk callbacks and interrupt demux to the (new) shell."""
        page = self.shell.config.services.mmu.tlb.page_size
        for vfpga_id, mmu in self.shell.dynamic.mmus.items():
            mmu.bind_driver(self._make_walk_fn(vfpga_id), self._make_walk_any_fn())
        if self.shell.dynamic.hbm is not None:
            hbm = self.shell.dynamic.hbm
            usable = hbm.config.total_bytes - (64 << 20)  # minus sniffer region
            frame = max(page, PAGE_2M) if page <= PAGE_2M else page
            self._card_frames = FrameAllocator(usable, frame, "card")
        if self.gpu is not None:
            self.shell.dynamic.host_mover.gpu = self.gpu
        self.shell.static.on_user_interrupt(self._on_user_interrupt)
        for vfpga in self.shell.vfpgas:
            self.env.process(
                self._cq_demux(vfpga.cq_rd, write=False),
                name=f"drv-cq-rd-{vfpga.vfpga_id}",
            )
            self.env.process(
                self._cq_demux(vfpga.cq_wr, write=True),
                name=f"drv-cq-wr-{vfpga.vfpga_id}",
            )
        # RDMA service: local memory access goes through the MMU of the QP's
        # owning process, then the static layer (host DMA).
        if self.shell.dynamic.rdma is not None:
            self.shell.dynamic.rdma.bind_memory(
                self._rdma_read_unbound, self._rdma_write_unbound
            )

    def _cq_demux(self, queue: Store, write: bool) -> Generator:
        while True:
            entry: CompletionEntry = yield queue.get()
            self.completions_delivered[entry.vfpga_id] = (
                self.completions_delivered.get(entry.vfpga_id, 0) + 1
            )
            ctx = self.processes.get(entry.pid)
            if ctx is None:
                continue  # completion for an exited process
            if ctx.rings is not None and ctx.rings.on_completion(write, entry):
                # A ring batch consumed it; the batch event is the single
                # writeback for the whole drained doorbell.
                continue
            waiter = ctx.forget(write, entry.wr_id)
            if waiter is not None:
                waiter.succeed(entry)
                continue
            target = ctx.completions_wr if write else ctx.completions_rd
            yield target.put(entry)

    def _on_reconfig_done(self, value: int) -> None:
        waiters, self._reconfig_done_waiters = self._reconfig_done_waiters, []
        for event in waiters:
            # A waiter can already be triggered when the MSI-X message
            # arrives late: its reconfigure timed out, fell back to the
            # status poll, and a later attempt re-raised the interrupt
            # while the stale event still sat in the swapped-in list.
            # succeed() on a triggered event would crash the handler.
            if not event.triggered:
                event.succeed(value)

    def _on_user_interrupt(self, value: int) -> None:
        vfpga_id = value >> 32
        payload = value & 0xFFFFFFFF
        for ctx in self.processes.values():
            if ctx.vfpga_id == vfpga_id:
                ctx.interrupts.put((self.env.now, payload))

    # -------------------------------------------------------------- process

    def open(self, pid: int, vfpga_id: int) -> ProcessContext:
        """Register a cThread with the driver (the char-device ``open``)."""
        if pid in self.processes:
            raise DriverError(f"pid {pid} already registered")
        if not 0 <= vfpga_id < len(self.shell.vfpgas):
            raise DriverError(f"no vFPGA {vfpga_id}")
        page = self.shell.config.services.mmu.tlb.page_size
        ctx = ProcessContext(
            pid=pid,
            vfpga_id=vfpga_id,
            page_table=PageTable(pid, page),
            valloc=VirtualAllocator(),
            completions_rd=Store(self.env),
            completions_wr=Store(self.env),
            interrupts=Store(self.env),
            ioctl_ring=CommandRing(slots=1),
            mrs=MrTable(pid),
        )
        self.processes[pid] = ctx
        return ctx

    def close(self, pid: int, reason: str = "closed") -> None:
        """Tear down a process context.

        Closing mid-flight must not strand waiters: every pending
        completion and every in-flight ring batch fails with a typed
        :class:`ProcessClosedError` before the pages go away, so a
        cThread closed mid-batch flushes instead of parking forever.
        Registered MRs are dropped (unpinning their TLB entries) and all
        allocations freed.
        """
        ctx = self.processes.pop(pid, None)
        if ctx is None:
            raise DriverError(f"pid {pid} not registered")
        exc = ProcessClosedError(pid, reason)
        for event in ctx.pending.values():
            if not event.triggered:
                event.defuse().fail(exc)
        ctx.pending.clear()
        ctx.pending_since.clear()
        if ctx.rings is not None:
            ctx.rings.fail_batches(exc)
        mmu = self.shell.dynamic.mmus.get(ctx.vfpga_id)
        if ctx.mrs is not None:
            page = ctx.page_table.page_size
            for mr in sorted(ctx.mrs, key=lambda m: m.key):
                if mmu is not None:
                    start = mr.vaddr - (mr.vaddr % page)
                    while start < mr.end:
                        mmu.unpin(start)
                        start += page
                self.mrs_deregistered += 1
        for alloc in ctx.allocations:
            self._free_pages(ctx, alloc)

    def _ctx(self, pid: int) -> ProcessContext:
        ctx = self.processes.get(pid)
        if ctx is None:
            raise DriverError(f"pid {pid} not registered with the driver")
        return ctx

    # --------------------------------------------------------------- memory

    def get_mem(self, pid: int, length: int, alloc_type: AllocType = AllocType.HPF) -> Generator:
        """``getMem``: allocate, map, and pre-fill the TLB (paper Code 1)."""
        ctx = self._ctx(pid)
        table_page = ctx.page_table.page_size
        if alloc_type.page_size != table_page:
            raise DriverError(
                f"allocation page size {alloc_type.page_size} does not match "
                f"the shell MMU page size {table_page}; rebuild or "
                f"reconfigure the shell with a matching MMU"
            )
        alloc = ctx.valloc.allocate(length, alloc_type)
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        for page_no in range(alloc.num_pages):
            vaddr = alloc.vaddr + page_no * alloc.page_size
            frame = self._host_frames[alloc.page_size]
            paddr = self._host_base[alloc.page_size] + frame.allocate()
            entry = PageTableEntry(
                vpn=ctx.page_table.vpn_of(vaddr),
                host_paddr=paddr,
                location=MemLocation.HOST,
            )
            ctx.page_table.map(entry)
            mmu.prefill(vaddr, paddr, MemLocation.HOST)
        ctx.allocations.append(alloc)
        yield self.env.timeout(ALLOC_LATENCY_PER_PAGE_NS * alloc.num_pages)
        return alloc

    def free_mem(self, pid: int, alloc: Allocation) -> None:
        ctx = self._ctx(pid)
        ctx.valloc.free(alloc)
        ctx.allocations.remove(alloc)
        self._free_pages(ctx, alloc)

    def _free_pages(self, ctx: ProcessContext, alloc: Allocation) -> None:
        mmu = self.shell.dynamic.mmus.get(ctx.vfpga_id)
        for page_no in range(alloc.num_pages):
            vaddr = alloc.vaddr + page_no * alloc.page_size
            entry = ctx.page_table.unmap(ctx.page_table.vpn_of(vaddr))
            if entry is None:
                continue
            if entry.host_paddr is not None:
                base = self._host_base[alloc.page_size]
                self._host_frames[alloc.page_size].free(entry.host_paddr - base)
            if entry.card_paddr is not None and self._card_frames is not None:
                self._card_frames.free(entry.card_paddr)
            if mmu is not None:
                mmu.shootdown(vaddr)  # TLB invalidation

    # ------------------------------------------------- functional host access

    def _host_paddr(self, ctx: ProcessContext, vaddr: int) -> int:
        entry = ctx.page_table.walk(vaddr)
        if entry.host_paddr is None:
            raise SegmentationFault(f"page of {vaddr:#x} has no host frame")
        offset = vaddr & (ctx.page_table.page_size - 1)
        return entry.host_paddr + offset

    def write_buffer(self, pid: int, vaddr: int, data: bytes) -> None:
        """Host-software store into a mapped buffer (untimed, CPU-side)."""
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        offset = 0
        host_mem = self.shell.static.xdma.host_mem
        while offset < len(data):
            cur = vaddr + offset
            take = min(len(data) - offset, page - (cur & (page - 1)))
            host_mem.write(self._host_paddr(ctx, cur), data[offset : offset + take])
            offset += take

    def read_buffer(self, pid: int, vaddr: int, length: int) -> bytes:
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        host_mem = self.shell.static.xdma.host_mem
        parts = []
        offset = 0
        while offset < length:
            cur = vaddr + offset
            take = min(length - offset, page - (cur & (page - 1)))
            parts.append(host_mem.read(self._host_paddr(ctx, cur), take))
            offset += take
        return b"".join(parts)

    # ----------------------------------------------------- MMU walk service

    def _make_walk_fn(self, vfpga_id: int) -> Callable:
        def walk(pid: int, vaddr: int, location: MemLocation, writable: bool) -> Generator:
            return (yield self.env.process(self._walk(pid, vaddr, location, writable)))

        return walk

    def _make_walk_any_fn(self) -> Callable:
        def walk_any(pid: int, vaddr: int, writable: bool) -> Generator:
            yield self.env.timeout(0)
            ctx = self._ctx(pid)
            self.tlb_walks += 1
            entry = ctx.page_table.walk(vaddr)
            offset = vaddr & (ctx.page_table.page_size - 1)
            return entry.location, entry.paddr_in(entry.location) + offset

        return walk_any

    def _walk(self, pid: int, vaddr: int, location: MemLocation, writable: bool) -> Generator:
        """Host-side page-table walk; migrates on location mismatch."""
        ctx = self._ctx(pid)
        self.tlb_walks += 1
        entry = ctx.page_table.walk(vaddr)  # raises SegmentationFault if unmapped
        if entry.paddr_in(location) is None or entry.location is not location:
            yield self.env.process(self._fault_migrate(ctx, entry, location))
        offset = vaddr & (ctx.page_table.page_size - 1)
        return entry.paddr_in(location) + offset

    def _fault_migrate(self, ctx: ProcessContext, entry: PageTableEntry, to: MemLocation) -> Generator:
        """GPU-style page migration over the XDMA migration channel."""
        self.page_faults += 1
        page = ctx.page_table.page_size
        yield self.env.timeout(PAGE_FAULT_OVERHEAD_NS)
        hbm = self.shell.dynamic.hbm
        xdma = self.shell.static.xdma
        if to is MemLocation.CARD:
            if hbm is None or self._card_frames is None:
                raise DriverError("page fault to card, but shell has no memory service")
            if entry.card_paddr is None:
                entry.card_paddr = self._card_frames.allocate()
            yield self.env.process(xdma.migrate(page, to_card=True))
            hbm.write_now(entry.card_paddr, xdma.host_mem.read(entry.host_paddr, page))
        elif to is MemLocation.GPU:
            if self.gpu is None:
                raise DriverError("page fault to GPU, but no GPU attached")
            if entry.gpu_paddr is None:
                entry.gpu_paddr = self.gpu.allocate_page()
            yield self.env.process(self.gpu.write(
                entry.gpu_paddr, xdma.host_mem.read(entry.host_paddr, page)
            ))
        else:
            if entry.host_paddr is None:
                raise DriverError("page has no host frame to migrate back to")
            if entry.location is MemLocation.GPU and self.gpu is not None:
                data = yield self.env.process(self.gpu.read(entry.gpu_paddr, page))
                xdma.host_mem.write(entry.host_paddr, data)
            else:
                yield self.env.process(xdma.migrate(page, to_card=False))
                if hbm is not None and entry.card_paddr is not None:
                    xdma.host_mem.write(
                        entry.host_paddr, hbm.read_now(entry.card_paddr, page)
                    )
        entry.location = to
        self.migrated_bytes += page

    def offload(self, pid: int, vaddr: int, length: int) -> Generator:
        """Explicit host -> card migration (``LOCAL_OFFLOAD``)."""
        yield self.env.process(self._migrate_range(pid, vaddr, length, MemLocation.CARD))

    def sync(self, pid: int, vaddr: int, length: int) -> Generator:
        """Explicit card -> host migration (``LOCAL_SYNC``)."""
        yield self.env.process(self._migrate_range(pid, vaddr, length, MemLocation.HOST))

    def _migrate_range(self, pid: int, vaddr: int, length: int, to: MemLocation) -> Generator:
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        start = vaddr - (vaddr % page)
        while start < vaddr + length:
            entry = ctx.page_table.walk(start)
            if entry.location is not to:
                yield self.env.process(self._fault_migrate(ctx, entry, to))
                mmu.shootdown(start)
                mmu.prefill(start, entry.paddr_in(to), to)
            start += page

    # ---------------------------------------------------------- GPU memory

    def gpu_alloc(self, pid: int, length: int) -> Generator:
        """Allocate a GPU-resident virtual buffer in the process's SVM
        space: vFPGA streams touching it go peer-to-peer, host never
        involved (the §6.1 extension)."""
        if self.gpu is None:
            raise DriverError("no GPU attached to the driver")
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        alloc_type = {v.page_size: v for v in AllocType}[page]
        alloc = ctx.valloc.allocate(length, alloc_type)
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        for page_no in range(alloc.num_pages):
            vaddr = alloc.vaddr + page_no * page
            gpu_paddr = self.gpu.allocate_page()
            entry = PageTableEntry(
                vpn=ctx.page_table.vpn_of(vaddr),
                gpu_paddr=gpu_paddr,
                location=MemLocation.GPU,
            )
            ctx.page_table.map(entry)
            mmu.prefill(vaddr, gpu_paddr, MemLocation.GPU)
        ctx.allocations.append(alloc)
        yield self.env.timeout(ALLOC_LATENCY_PER_PAGE_NS * alloc.num_pages)
        return alloc

    def gpu_write_buffer(self, pid: int, vaddr: int, data: bytes) -> None:
        """Host-side (cudaMemcpy-style) store into a GPU-resident buffer."""
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        offset = 0
        while offset < len(data):
            cur = vaddr + offset
            take = min(len(data) - offset, page - (cur & (page - 1)))
            entry = ctx.page_table.walk(cur)
            if entry.gpu_paddr is None:
                raise DriverError(f"page of {cur:#x} has no GPU frame")
            self.gpu.upload(entry.gpu_paddr + (cur & (page - 1)), data[offset : offset + take])
            offset += take

    def gpu_read_buffer(self, pid: int, vaddr: int, length: int) -> bytes:
        ctx = self._ctx(pid)
        page = ctx.page_table.page_size
        parts = []
        offset = 0
        while offset < length:
            cur = vaddr + offset
            take = min(length - offset, page - (cur & (page - 1)))
            entry = ctx.page_table.walk(cur)
            parts.append(self.gpu.download(entry.gpu_paddr + (cur & (page - 1)), take))
            offset += take
        return b"".join(parts)

    # ----------------------------------------------------- RDMA memory hooks

    def bind_qp(self, pid: int, qpn: int) -> None:
        """Route a QP's local memory through its owner's MMU context."""
        ctx = self._ctx(pid)
        stack = self.shell.dynamic.rdma
        if stack is None:
            raise DriverError("shell has no RDMA service")
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        xdma = self.shell.static.xdma

        def read_local(vaddr: int, length: int) -> Generator:
            paddr = yield self.env.process(
                mmu.translate(pid, vaddr, MemLocation.HOST)
            )
            data = yield self.env.process(xdma.read_host(paddr, length, overhead=False))
            return data

        def write_local(vaddr: int, data: Optional[bytes], length: int) -> Generator:
            paddr = yield self.env.process(
                mmu.translate(pid, vaddr, MemLocation.HOST, writable=True)
            )
            payload = data if data is not None else bytes(length)
            yield self.env.process(xdma.write_host(paddr, payload, overhead=False))

        stack.bind_qp_memory(qpn, read_local, write_local)

    def _rdma_read_unbound(self, vaddr: int, length: int) -> Generator:
        raise DriverError("RDMA access on a QP with no bound process")
        yield  # pragma: no cover

    def _rdma_write_unbound(self, vaddr: int, data, length: int) -> Generator:
        raise DriverError("RDMA access on a QP with no bound process")
        yield  # pragma: no cover

    # -------------------------------------------------------- reconfiguration

    def reconfigure_shell(
        self,
        bitstream: Bitstream,
        services,
        apps: Optional[List[Optional[UserApp]]] = None,
    ) -> Generator:
        """Full shell swap: disk read + copy_to_kernel + ICAP + rebind."""
        yield self.env.timeout(IcapController.host_overhead_ns(bitstream))
        yield self.env.process(self.shell.reconfigure_shell(bitstream, services, apps))
        self._bind_shell()

    def reconfigure_app(
        self, bitstream: Bitstream, vfpga_id: int, app: UserApp, cached: bool = False
    ) -> Generator:
        """App-only PR.  ``cached`` skips the disk read (paper §9.3: keep
        frequently used bitstreams in memory), paying only the
        copy-to-kernel-space cost — the daemon mode of §9.6 (57 ms).

        A transient ICAP CRC failure (the shell rolls the region back) is
        retried with capped exponential backoff, re-staging the bitstream
        into kernel memory each time; only a failure persisting past
        ``retry_policy.max_retries`` surfaces to the caller.
        """
        self._reconfiguring[vfpga_id] = self._reconfiguring.get(vfpga_id, 0) + 1
        icap = self.shell.static.icap
        try:
            if icap.is_cached(bitstream):
                # Resident in the ICAP's region cache: no host staging at
                # all — the fast path repeated A↔B churn rides on.
                pass
            elif cached:
                mb = bitstream.size_bytes / 1e6
                yield self.env.timeout(mb / 300.0 * 1e9)  # copy_to_kernel only
            else:
                yield self.env.timeout(IcapController.host_overhead_ns(bitstream))
            attempt = 0
            while True:
                try:
                    yield self.env.process(
                        self._reconfigure_app_once(bitstream, vfpga_id, app)
                    )
                    return
                except IcapCrcError:
                    if attempt >= self.retry_policy.max_retries:
                        raise
                    attempt += 1
                    self.reconfig_retries += 1
                    yield from self.retry_policy.sleep(self.env, attempt)
                    # A CRC failure invalidated any cached copy, so the
                    # retry always re-stages into kernel memory.
                    mb = bitstream.size_bytes / 1e6
                    yield self.env.timeout(mb / 300.0 * 1e9)  # re-stage in kernel
        finally:
            self._reconfiguring[vfpga_id] -= 1

    def reconfiguring(self, vfpga_id: int) -> bool:
        """Is a partial reconfiguration of this region in flight?  (PR
        stalls the region legitimately; watchdogs skip it.)"""
        return self._reconfiguring.get(vfpga_id, 0) > 0

    def _reconfigure_app_once(
        self, bitstream: Bitstream, vfpga_id: int, app: UserApp
    ) -> Generator:
        """One PR attempt, confirmed by the RECONFIG_DONE interrupt.

        The interrupt normally arrives while the shell call is still in
        flight (zero added latency).  If the MSI-X message was lost, the
        driver times out and falls back to one MMIO poll of the ICAP
        status register — reconfiguration never hangs on a lost interrupt.
        """
        waiter = Event(self.env)
        self._reconfig_done_waiters.append(waiter)
        try:
            yield self.env.process(
                self.shell.reconfigure_app(bitstream, vfpga_id, app)
            )
        except BaseException:
            if waiter in self._reconfig_done_waiters:
                self._reconfig_done_waiters.remove(waiter)
            raise
        if not waiter.triggered:
            yield AnyOf(
                self.env, [waiter, self.env.timeout(RECONFIG_IRQ_TIMEOUT_NS)]
            )
            if not waiter.triggered:
                self.irq_timeouts += 1
                if waiter in self._reconfig_done_waiters:
                    self._reconfig_done_waiters.remove(waiter)
                # Poll the ICAP status register over MMIO instead.
                yield self.env.timeout(
                    self.shell.static.xdma.config.link.mmio_latency_ns
                )

    # --------------------------------------------------------------- ioctls

    def post_descriptor(self, desc: Descriptor, write: bool) -> None:
        """Legacy per-call ioctl: a one-descriptor doorbell.

        Enforces process/vFPGA isolation: a pid may only drive the vFPGA
        it opened, so one tenant cannot queue work (or read completions)
        on another tenant's region.  The descriptor rides the process's
        one-slot :class:`~repro.driver.ringbuf.CommandRing`: every call
        posts one slot and immediately drains it, so the per-call path
        shares the ring submit machinery (and its telemetry) while
        keeping its synchronous semantics.
        """
        ctx = self._ctx(desc.pid)
        if desc.length <= 0:
            # The packetizer emits no packets (and so no last=True, and
            # so no completion) for an empty descriptor; reject it here
            # instead of letting the caller hang on a completion that
            # can never arrive.
            raise ZeroLengthDescriptorError(
                f"pid {desc.pid}: descriptor wr_id={desc.wr_id} has "
                f"length {desc.length}; nothing to transfer"
            )
        self._check_submit(ctx, desc.vfpga_id)
        ctx.ioctl_ring.post((desc, write))
        self.ring_doorbells += 1
        for queued, queued_write in ctx.ioctl_ring.drain():
            self.ring_descriptors += 1
            self.shell.post_descriptor(queued, queued_write)

    def _check_submit(self, ctx: ProcessContext, vfpga_id: int) -> None:
        """Shared isolation/health gate for both submit paths."""
        if ctx.vfpga_id != vfpga_id:
            raise DriverError(
                f"pid {ctx.pid} is bound to vFPGA {ctx.vfpga_id}, "
                f"not {vfpga_id}"
            )
        if self.node_down:
            raise NodeDownError(self.node_index if self.node_index is not None else -1)
        vfpga = self.shell.vfpgas[vfpga_id]
        if vfpga.quarantined:
            raise QuarantinedError(vfpga_id)
        if vfpga.decoupled:
            raise DecoupledError(vfpga_id)
        if self.health is not None:
            self.health.notify_activity()

    # ------------------------------------------------------ rings + MRs

    def setup_rings(self, pid: int, slots: int = DEFAULT_RING_SLOTS) -> RingState:
        """Arm the batched command/completion rings for a process.

        Maps the cmdReqQ/cmdRespQ pages; afterwards :meth:`ring_post` /
        :meth:`ring_doorbell` are live.  Re-arming while slots are posted
        or batches are in flight is refused — the rings are the ABI, not
        a resize-anytime buffer.
        """
        ctx = self._ctx(pid)
        if ctx.rings is not None and (
            ctx.rings.cmd.occupancy or ctx.rings.outstanding
        ):
            raise RingError(
                f"pid {pid}: cannot re-arm rings with work in flight"
            )
        ctx.rings = RingState(self.env, slots)
        return ctx.rings

    def register_mr(
        self, pid: int, vaddr: int, length: int, writable: bool = True
    ) -> Generator:
        """Register a memory region: MTT entry + per-page TLB pinning.

        Walks every page of ``[vaddr, vaddr+length)`` in the process's
        page table (raising :class:`~repro.mem.mmu.SegmentationFault` on
        unmapped pages — registration never succeeds partially) and pins
        the translations in the vFPGA's TLB, then charges the ioctl
        latency.  Returns the :class:`~repro.driver.ringbuf.MemoryRegion`
        whose ``key`` ring descriptors use in place of raw vaddrs.
        """
        ctx = self._ctx(pid)
        mr = ctx.mrs.register(vaddr, length, writable)
        yield from self._pin_mr_pages(ctx, mr)
        return mr

    def _pin_mr_pages(self, ctx: ProcessContext, mr: MemoryRegion) -> Generator:
        """Walk + TLB-prefill + pin every page of a fresh MTT entry,
        rolling the entry back on an unmapped page; charges the per-page
        registration ioctl latency."""
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        page = ctx.page_table.page_size
        pinned = []
        start = mr.vaddr - (mr.vaddr % page)
        try:
            while start < mr.end:
                entry = ctx.page_table.walk(start)
                mmu.prefill(
                    start, entry.paddr_in(entry.location), entry.location
                )
                mmu.pin(start)
                pinned.append(start)
                start += page
        except SegmentationFault:
            for addr in pinned:
                mmu.unpin(addr)
            ctx.mrs.deregister(mr.key)
            raise
        mr.num_pages = len(pinned)
        self.mrs_registered += 1
        yield self.env.timeout(MR_REGISTER_LATENCY_PER_PAGE_NS * len(pinned))

    def deregister_mr(self, pid: int, key: int) -> MemoryRegion:
        """Drop an MR: unpin its pages and retire the MTT entry (untimed)."""
        ctx = self._ctx(pid)
        mr = ctx.mrs.deregister(key)
        mmu = self.shell.dynamic.mmus.get(ctx.vfpga_id)
        if mmu is not None:
            page = ctx.page_table.page_size
            start = mr.vaddr - (mr.vaddr % page)
            while start < mr.end:
                mmu.unpin(start)
                start += page
        self.mrs_deregistered += 1
        return mr

    # ------------------------------------------------- checkpoint restore

    def restore_mem(
        self, pid: int, vaddr: int, length: int, alloc_type: AllocType
    ) -> Generator:
        """Re-create a checkpointed allocation at its original vaddr.

        Same mapping/TLB-prefill/latency behaviour as :meth:`get_mem`,
        but at a fixed address so MR keys and undrained ring descriptors
        captured on the source resolve unchanged on the destination.
        Pages come up host-resident; a restored tenant's card pages
        re-migrate on demand through the normal fault path.
        """
        ctx = self._ctx(pid)
        if alloc_type.page_size != ctx.page_table.page_size:
            raise DriverError(
                f"restored allocation page size {alloc_type.page_size} does "
                f"not match the shell MMU page size {ctx.page_table.page_size}"
            )
        alloc = ctx.valloc.allocate_at(vaddr, length, alloc_type)
        mmu = self.shell.dynamic.mmus[ctx.vfpga_id]
        for page_no in range(alloc.num_pages):
            page_vaddr = alloc.vaddr + page_no * alloc.page_size
            frame = self._host_frames[alloc.page_size]
            paddr = self._host_base[alloc.page_size] + frame.allocate()
            entry = PageTableEntry(
                vpn=ctx.page_table.vpn_of(page_vaddr),
                host_paddr=paddr,
                location=MemLocation.HOST,
            )
            ctx.page_table.map(entry)
            mmu.prefill(page_vaddr, paddr, MemLocation.HOST)
        ctx.allocations.append(alloc)
        yield self.env.timeout(ALLOC_LATENCY_PER_PAGE_NS * alloc.num_pages)
        return alloc

    def restore_mr(
        self, pid: int, key: int, vaddr: int, length: int, writable: bool = True
    ) -> Generator:
        """Re-register a checkpointed MR under its *original* key; pages
        are walked, prefetched and pinned exactly as :meth:`register_mr`
        does for a fresh registration."""
        ctx = self._ctx(pid)
        mr = ctx.mrs.restore(key, vaddr, length, writable)
        yield from self._pin_mr_pages(ctx, mr)
        return mr

    def _rings(self, ctx: ProcessContext) -> RingState:
        if ctx.rings is None:
            raise RingError(
                f"pid {ctx.pid}: rings not armed; call setup_rings() first"
            )
        return ctx.rings

    def ring_post(self, pid: int, op: RingOp) -> int:
        """Fill the next cmdReqQ slot (a host-memory store — untimed).

        The MR slices are validated *now*, software-side, against the
        MTT shadow: unknown keys, out-of-bounds slices, writes through
        read-only regions and empty transfers fail here with typed
        errors, before the slot exists.  Returns the slot index.  A full
        ring raises :class:`RingFullError` (counted in
        ``ring.full_stalls``); the doorbell frees the slots.
        """
        ctx = self._ctx(pid)
        rings = self._rings(ctx)
        length = op.length
        dst_length = op.dst_length if op.dst_length is not None else op.length
        if length <= 0 or (op.opcode is RingOpcode.TRANSFER and dst_length <= 0):
            raise ZeroLengthDescriptorError(
                f"pid {pid}: ring {op.opcode.value} op has nothing to "
                f"transfer (length={length}, dst_length={dst_length})"
            )
        src_vaddr = ctx.mrs.resolve(
            op.mr_key, op.offset, length, write=op.opcode is RingOpcode.WRITE
        )
        dst_vaddr = None
        if op.opcode is RingOpcode.TRANSFER:
            dst_key = op.dst_mr_key if op.dst_mr_key is not None else op.mr_key
            dst_vaddr = ctx.mrs.resolve(
                dst_key, op.dst_offset, dst_length, write=True
            )
        try:
            return rings.cmd.post((op, src_vaddr, dst_vaddr))
        except RingFullError:
            self.ring_full_stalls += 1
            raise

    def ring_doorbell(self, pid: int):
        """Consume the doorbell MMIO write: batch-drain the cmdReqQ.

        Every slot posted since the last doorbell is fetched and issued
        to the shell *in this one call* — the caller pays a single CSR
        write, not one ioctl per descriptor.  Returns the batch's
        completion :class:`~repro.sim.engine.Event` (value: the
        completion entries in post order — the batched cmdRespQ
        writeback), or ``None`` when the ``ring.doorbell_drop`` fault
        swallowed the MMIO write; the slots then stay pending until
        software rings again.
        """
        ctx = self._ctx(pid)
        rings = self._rings(ctx)
        self._check_submit(ctx, ctx.vfpga_id)
        self.ring_doorbells += 1
        injector = self.shell.static.xdma.faults
        if injector is not None and injector.fires(RING_DOORBELL_DROP, pid):
            self.ring_doorbells_lost += 1
            return None
        batch = rings.open_batch()
        slots = rings.cmd.drain()
        if not slots:
            batch.event.succeed([])
            return batch.event
        for op, src_vaddr, dst_vaddr in slots:
            wr_id = next(self._ring_wr_ids)
            if op.opcode is RingOpcode.READ:
                rings.gate(batch, (False, wr_id))
                self.shell.post_descriptor(
                    self._ring_descriptor(
                        ctx, src_vaddr, op.length, op.stream, op.dest,
                        wr_id, op.mr_key,
                    ),
                    write=False,
                )
            elif op.opcode is RingOpcode.WRITE:
                rings.gate(batch, (True, wr_id))
                self.shell.post_descriptor(
                    self._ring_descriptor(
                        ctx, src_vaddr, op.length, op.stream, op.dest,
                        wr_id, op.mr_key,
                    ),
                    write=True,
                )
            else:  # TRANSFER: read + write through the kernel, one wr_id
                dst_length = (
                    op.dst_length if op.dst_length is not None else op.length
                )
                dst_key = op.dst_mr_key if op.dst_mr_key is not None else op.mr_key
                rings.gate(batch, (True, wr_id))
                rings.absorb(batch, (False, wr_id))
                self.shell.post_descriptor(
                    self._ring_descriptor(
                        ctx, src_vaddr, op.length, op.stream, op.dest,
                        wr_id, op.mr_key,
                    ),
                    write=False,
                )
                self.shell.post_descriptor(
                    self._ring_descriptor(
                        ctx, dst_vaddr, dst_length, op.dst_stream,
                        op.dst_dest, wr_id, dst_key,
                    ),
                    write=True,
                )
        self.ring_descriptors += len(slots)
        self.ring_batches += 1
        return batch.event

    def _ring_descriptor(
        self,
        ctx: ProcessContext,
        vaddr: int,
        length: int,
        stream: StreamType,
        dest: int,
        wr_id: int,
        mr_key: int,
    ) -> Descriptor:
        return Descriptor(
            vfpga_id=ctx.vfpga_id,
            pid=ctx.pid,
            vaddr=vaddr,
            length=length,
            stream=stream,
            dest=dest,
            wr_id=wr_id,
            mr_key=mr_key,
        )

    # ------------------------------------------------------ health / recovery

    def fail_pending(self, vfpga_id: int, exc: Exception) -> int:
        """Fail every pending completion event bound to a region.

        Part of the decouple step of recovery: software waiting on work
        the reset wiped gets a typed error instead of hanging forever.
        Events are pre-defused because a polling-mode cThread may have no
        waiter attached yet.
        """
        failed = 0
        for ctx in self.processes.values():
            if ctx.vfpga_id != vfpga_id:
                continue
            for event in ctx.pending.values():
                if not event.triggered:
                    event.defuse().fail(exc)
                    failed += 1
            ctx.pending.clear()
            ctx.pending_since.clear()
            if ctx.rings is not None:
                # Ring batches gate on completions the reset wiped too;
                # fail each in-flight batch once (its waiters all see exc).
                failed += ctx.rings.fail_batches(exc)
        return failed

    def recover(self, vfpga_id: int, reason: str = "manual") -> Generator:
        """Quiesce, hot-reset, and reprogram one region (the recovery
        pipeline of :mod:`repro.health.recovery`); usable directly or via
        an attached :class:`repro.health.HealthMonitor`."""
        if self.recovery is None:
            from ..health.recovery import RecoveryManager

            self.recovery = RecoveryManager(self)
        yield self.env.process(self.recovery.recover(vfpga_id, reason=reason))
