"""Device driver model: memory management, faults, completions, PR ioctls."""

from .driver import Driver, DriverError, ProcessContext
from .report import card_report, format_report

__all__ = ["Driver", "DriverError", "ProcessContext", "card_report", "format_report"]
