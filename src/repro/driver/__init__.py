"""Device driver model: memory management, faults, completions, PR ioctls."""

from .driver import Driver, DriverError, ProcessContext
from .errors import (
    MrAccessError,
    MrBoundsError,
    MrError,
    MrKeyError,
    MrOverlapError,
    RingError,
    RingFullError,
    ZeroLengthDescriptorError,
)
from .report import card_report, format_report
from .ringbuf import (
    DEFAULT_RING_SLOTS,
    CommandRing,
    CompletionBatch,
    MemoryRegion,
    MrTable,
    RingOp,
    RingOpcode,
    RingState,
)

__all__ = [
    "Driver",
    "DriverError",
    "ProcessContext",
    "card_report",
    "format_report",
    "ZeroLengthDescriptorError",
    "RingError",
    "RingFullError",
    "MrError",
    "MrKeyError",
    "MrBoundsError",
    "MrAccessError",
    "MrOverlapError",
    "DEFAULT_RING_SLOTS",
    "CommandRing",
    "CompletionBatch",
    "MemoryRegion",
    "MrTable",
    "RingOp",
    "RingOpcode",
    "RingState",
]
