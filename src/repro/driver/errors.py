"""Typed errors raised at the driver's ioctl and ring ABI surfaces.

Kept in their own module so :mod:`repro.driver.driver` and
:mod:`repro.driver.ringbuf` can both raise them without importing each
other.  All ring/MR errors derive from :class:`DriverError`, so existing
``except DriverError`` call sites keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "DriverError",
    "ProcessClosedError",
    "ZeroLengthDescriptorError",
    "RingError",
    "RingFullError",
    "MrError",
    "MrKeyError",
    "MrBoundsError",
    "MrAccessError",
    "MrOverlapError",
]


class DriverError(Exception):
    """Invalid request at the driver's ioctl surface."""


class ProcessClosedError(DriverError):
    """The process's driver context was torn down (``close``/migration)
    while work was still in flight; every parked waiter — pending
    completions and ring batches alike — is failed with this instead of
    hanging forever."""

    def __init__(self, pid: int, reason: str = "closed"):
        super().__init__(f"pid {pid} was closed with work in flight ({reason})")
        self.pid = pid
        self.reason = reason


class ZeroLengthDescriptorError(DriverError):
    """A zero- or negative-length descriptor reached a submit path.

    The packetizer emits no packets for such a descriptor, so no
    ``last=True`` packet — and therefore no completion — would ever be
    produced; rejecting at post time turns a silent hang into an error.
    """


class RingError(DriverError):
    """Invalid operation against a process's command/completion rings."""


class RingFullError(RingError):
    """The command ring has no free slot; ring the doorbell to drain it."""


class MrError(DriverError):
    """Invalid memory-region registration or access."""


class MrKeyError(MrError):
    """A ring descriptor referenced an unregistered (or stale) MR key."""


class MrBoundsError(MrError):
    """An access fell outside its memory region's registered bounds."""


class MrAccessError(MrError):
    """A write targeted a memory region registered read-only."""


class MrOverlapError(MrError):
    """A registration overlapped an existing region of the same process."""
