"""The Coyote v2 shell: static + dynamic + application layers (paper §3).

:class:`Shell` is the top-level hardware object: it wires the XDMA link,
the service layer, and the vFPGAs together, routes send-queue descriptors
to the right data movers, and implements shell/app run-time
reconfiguration with the linked-shell safety check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..net.headers import MacAddress
from ..net.switch import Switch
from ..sim.engine import Environment
from ..sim.resources import Store
from .bitstream import Bitstream, BitstreamKind
from .dynamic_layer import DynamicLayer, ServiceConfig
from .floorplan import DEVICES, Floorplan
from .interfaces import Descriptor, StreamType
from .reconfig import IcapCrcError, ReconfigError
from .static_layer import StaticLayer
from .vfpga import UserApp, VFpga, VFpgaConfig

__all__ = ["Shell", "ShellConfig"]


@dataclass(frozen=True)
class ShellConfig:
    """Compile-time parameters of a shell build (paper §4: "a shell is
    fully parametrized by its services and the user applications")."""

    device: str = "u55c"
    num_vfpgas: int = 1
    vfpga: VFpgaConfig = VFpgaConfig()
    services: ServiceConfig = ServiceConfig()

    def __post_init__(self) -> None:
        if self.device not in DEVICES:
            raise ValueError(f"unknown device {self.device!r}")
        if self.num_vfpgas < 1:
            raise ValueError("need at least one vFPGA")

    @property
    def service_names(self) -> frozenset:
        return self.services.service_names


class Shell:
    """One card running one shell configuration."""

    def __init__(
        self,
        env: Environment,
        config: ShellConfig = ShellConfig(),
        switch: Optional[Switch] = None,
        mac: Optional[MacAddress] = None,
        ip: int = 0x0A000001,
    ):
        self.env = env
        self.config = config
        self.floorplan = Floorplan(
            DEVICES[config.device], app_regions=config.num_vfpgas
        )
        self.static = StaticLayer(env)
        self._switch = switch
        self._mac = mac
        self._ip = ip
        self.dynamic = DynamicLayer(
            env, self.static, config.services, switch=switch, mac=mac, ip=ip
        )
        self.vfpgas: List[VFpga] = []
        #: Outbound network bindings: (vfpga_id, stream dest) -> QP number.
        self.net_bindings: Dict[Tuple[int, int], int] = {}
        for index in range(config.num_vfpgas):
            self._make_vfpga(index)
        self.shell_reconfigs = 0
        self.app_reconfigs = 0
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.fault_injector = None
        #: Last successfully programmed (bitstream, app) per vFPGA, the
        #: rollback target after an ICAP CRC failure.
        self._last_good_app: Dict[int, Tuple[Bitstream, UserApp]] = {}
        self.icap_rollbacks = 0

    # -------------------------------------------------------------- wiring

    def bind_faults(self, injector) -> None:
        """Arm a :class:`repro.faults.FaultInjector` on every hardware
        block of this shell (re-applied automatically after shell swaps)."""
        self.fault_injector = injector
        self.static.xdma.faults = injector
        self.static.xdma.link.faults = injector
        self.static.icap.faults = injector
        if self.dynamic.hbm is not None:
            self.dynamic.hbm.faults = injector
        for vfpga in self.vfpgas:
            vfpga.faults = injector  # the app.* misbehaving-tenant sites

    def _make_vfpga(self, index: int) -> VFpga:
        vfpga = VFpga(self.env, index, self.config.vfpga)
        vfpga.bind_irq(self.static.raise_user_interrupt)
        mmu = self.dynamic.mmu_for(index)
        self.dynamic.host_mover.register(vfpga, mmu)
        if self.dynamic.card_mover is not None:
            self.dynamic.card_mover.register(vfpga, mmu)
        self.env.process(
            self._sq_dispatch(vfpga, vfpga.sq_rd, write=False),
            name=f"v{index}-sq-rd-dispatch",
        )
        self.env.process(
            self._sq_dispatch(vfpga, vfpga.sq_wr, write=True),
            name=f"v{index}-sq-wr-dispatch",
        )
        self.vfpgas.append(vfpga)
        return vfpga

    def _sq_dispatch(self, vfpga: VFpga, queue: Store, write: bool) -> Generator:
        """Route send-queue descriptors to the matching service datapath."""
        while True:
            desc: Descriptor = yield queue.get()
            if desc.stream is StreamType.HOST:
                target = vfpga._host_wr_dispatch if write else vfpga._host_rd_dispatch
                yield target.put(desc)
            elif desc.stream is StreamType.CARD:
                if self.dynamic.card_mover is None:
                    raise ReconfigError(
                        "card-memory request but the shell has no memory service"
                    )
                target = vfpga._card_wr_dispatch if write else vfpga._card_rd_dispatch
                yield target.put(desc)
            elif desc.stream is StreamType.NET:
                if self.dynamic.rdma is None:
                    raise ReconfigError("network request but the shell has no RDMA service")
                if not write:
                    raise ReconfigError(
                        "NET read descriptors are not used: inbound RDMA lands "
                        "directly in virtual memory via the MMU"
                    )
                self.env.process(self._net_write(vfpga, desc))
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unknown stream {desc.stream}")

    def _net_write(self, vfpga: VFpga, desc: Descriptor) -> Generator:
        """Outbound hardware-issued RDMA: stream data -> remote memory."""
        qpn = self.net_bindings.get((vfpga.vfpga_id, desc.dest))
        if qpn is None:
            raise ReconfigError(
                f"vFPGA {vfpga.vfpga_id} net stream {desc.dest} has no bound QP"
            )
        collected = bytearray()
        total = 0
        while total < desc.length:
            flit = yield from vfpga.net_out[desc.dest].recv()
            total += flit.length
            collected += flit.data if flit.data is not None else bytes(flit.length)
        yield self.env.process(
            self._send_staged(qpn, bytes(collected), desc)
        )

    def _send_staged(self, qpn: int, payload: bytes, desc: Descriptor) -> Generator:
        stack = self.dynamic.rdma
        # Stage through a scratch virtual buffer the stack reads back.
        scratch = {"data": payload}

        def read_scratch(vaddr, length):
            yield self.env.timeout(0)
            return scratch["data"][vaddr : vaddr + length]

        stack.bind_qp_memory(qpn, read_scratch, stack._mem_write(qpn))
        try:
            yield self.env.process(
                stack.rdma_write(qpn, 0, desc.vaddr, len(payload), wr_id=desc.wr_id)
            )
        finally:
            stack.qp_memory.pop(qpn, None)

    # ------------------------------------------------------- identification

    @property
    def shell_id(self) -> str:
        """Identity used by the app-linking fail-safe."""
        probe = Bitstream(
            kind=BitstreamKind.SHELL,
            target_region="shell",
            size_bytes=1,
            services=self.config.service_names,
            device=self.config.device,
        )
        return probe.shell_id

    # ------------------------------------------------------ reconfiguration

    def reconfigure_app(
        self, bitstream: Bitstream, vfpga_id: int, app: UserApp
    ) -> Generator:
        """Swap one vFPGA's user logic at run time (paper §4)."""
        if bitstream.kind != BitstreamKind.APP:
            raise ReconfigError(f"expected an app bitstream, got {bitstream.kind}")
        if bitstream.device != self.config.device:
            raise ReconfigError(
                f"bitstream built for {bitstream.device}, card is {self.config.device}"
            )
        if bitstream.linked_shell != self.shell_id:
            raise ReconfigError(
                "app bitstream was linked against a different shell "
                "configuration; the services it requires may be missing"
            )
        missing = app.required_services - self.config.service_names
        if missing:
            raise ReconfigError(f"shell lacks services {sorted(missing)}")
        if not 0 <= vfpga_id < len(self.vfpgas):
            raise ReconfigError(f"no vFPGA {vfpga_id}")
        try:
            yield self.env.process(self.static.icap.program(bitstream))
        except IcapCrcError:
            # The region is now undefined: restore the last-good bitstream
            # before surfacing the error (the driver may then retry).
            yield self.env.process(self._rollback_app(vfpga_id))
            raise
        self.vfpgas[vfpga_id].load_app(app)
        self._last_good_app[vfpga_id] = (bitstream, app)
        self.app_reconfigs += 1

    #: Bound on back-to-back CRC failures while restoring a region.
    _MAX_ROLLBACK_ATTEMPTS = 8

    def _rollback_app(self, vfpga_id: int) -> Generator:
        """Re-program the last-good bitstream after a CRC failure."""
        last = self._last_good_app.get(vfpga_id)
        if last is None:
            # Nothing to roll back to: leave the region empty.
            self.vfpgas[vfpga_id].unload_app()
            return
        bitstream, app = last
        if bitstream is None:
            # Last-good was loaded at initial configuration: restoring it
            # is a plain reload, no bitstream to re-program.
            self.vfpgas[vfpga_id].load_app(app)
            self.icap_rollbacks += 1
            return
        for _attempt in range(self._MAX_ROLLBACK_ATTEMPTS):
            try:
                yield self.env.process(self.static.icap.program(bitstream))
            except IcapCrcError:
                continue
            self.vfpgas[vfpga_id].load_app(app)
            self.icap_rollbacks += 1
            return
        raise ReconfigError(
            f"vFPGA {vfpga_id}: rollback failed "
            f"{self._MAX_ROLLBACK_ATTEMPTS} times; region is offline"
        )

    def reconfigure_shell(
        self,
        bitstream: Bitstream,
        services: ServiceConfig,
        apps: Optional[List[Optional[UserApp]]] = None,
    ) -> Generator:
        """Swap the entire shell — services *and* applications — at run
        time, without taking the card offline (the headline capability)."""
        if bitstream.kind != BitstreamKind.SHELL:
            raise ReconfigError(f"expected a shell bitstream, got {bitstream.kind}")
        if bitstream.device != self.config.device:
            raise ReconfigError(
                f"bitstream built for {bitstream.device}, card is {self.config.device}"
            )
        yield self.env.process(self.static.icap.program(bitstream))
        self._apply_shell_swap(services, apps)

    def _apply_shell_swap(
        self,
        services: ServiceConfig,
        apps: Optional[List[Optional[UserApp]]] = None,
    ) -> None:
        """Tear out the old shell contents and instantiate the new ones.

        The old dynamic layer and vFPGAs are removed from the fabric; any
        processes still blocked inside them never resume (their queues
        are unreachable), matching hardware where the region is wiped.
        """
        for vfpga in self.vfpgas:
            vfpga.unload_app()
        # A reconfigured shell re-instantiates its CMAC: unplug the old one.
        if self.dynamic.cmac is not None and self._switch is not None:
            self._switch.detach(self._mac)
        self.config = replace(self.config, services=services)
        self.dynamic = DynamicLayer(
            self.env, self.static, services,
            switch=self._switch, mac=self._mac, ip=self._ip,
        )
        self.vfpgas = []
        self.net_bindings.clear()
        self._last_good_app.clear()
        for index in range(self.config.num_vfpgas):
            self._make_vfpga(index)
        if self.fault_injector is not None:
            # The new dynamic layer instantiated fresh hardware (HBM, …):
            # re-arm the injector on it.
            self.bind_faults(self.fault_injector)
        if apps is not None:
            for index, app in enumerate(apps):
                if app is not None:
                    self.load_app(index, app)
        self.shell_reconfigs += 1

    # ------------------------------------------------------------- app mgmt

    def load_app(self, vfpga_id: int, app: UserApp) -> VFpga:
        """Directly load user logic (initial configuration, no PR charge)."""
        missing = app.required_services - self.config.service_names
        if missing:
            raise ReconfigError(
                f"app {app.name!r} requires services {sorted(missing)} "
                f"not present in this shell"
            )
        vfpga = self.vfpgas[vfpga_id]
        vfpga.load_app(app)
        # Recovery/rollback target: a None bitstream marks an app loaded
        # at initial configuration (restoring it charges no PR).
        self._last_good_app[vfpga_id] = (None, app)
        return vfpga

    # ----------------------------------------------------------- host entry

    def post_descriptor(self, desc: Descriptor, write: bool) -> None:
        """Entry point used by the driver to queue software-issued work."""
        vfpga = self.vfpgas[desc.vfpga_id]
        queue = vfpga.sq_wr if write else vfpga.sq_rd
        queue.put(desc)
