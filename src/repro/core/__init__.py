"""Coyote v2 core: the three-layer shell, vFPGAs and reconfiguration."""

from .arbiter import ArbiterPort, RoundRobinArbiter
from .bitstream import Bitstream, BitstreamKind
from .credit import CreditConfig, Crediter
from .dynamic_layer import DynamicLayer, ServiceConfig
from .floorplan import DEVICES, Device, Floorplan, PrRegion
from .interfaces import (
    CompletionEntry,
    Descriptor,
    LocalSg,
    Oper,
    RdmaSg,
    SgEntry,
    StreamType,
)
from .movers import CardDataMover, HostDataMover, MoverConfig
from .packetizer import DEFAULT_PACKET_BYTES, Packet, Packetizer
from .reconfig import (
    AXI_HWICAP,
    COYOTE_ICAP,
    MCAP,
    PCAP,
    IcapController,
    IcapCrcError,
    ReconfigError,
    ReconfigPort,
    VivadoHwManager,
)
from .shell import Shell, ShellConfig
from .static_layer import StaticLayer
from .vfpga import UserApp, VFpga, VFpgaConfig

__all__ = [
    "Shell",
    "ShellConfig",
    "StaticLayer",
    "DynamicLayer",
    "ServiceConfig",
    "VFpga",
    "VFpgaConfig",
    "UserApp",
    "StreamType",
    "Oper",
    "Descriptor",
    "CompletionEntry",
    "SgEntry",
    "LocalSg",
    "RdmaSg",
    "Packetizer",
    "Packet",
    "DEFAULT_PACKET_BYTES",
    "Crediter",
    "CreditConfig",
    "RoundRobinArbiter",
    "ArbiterPort",
    "HostDataMover",
    "CardDataMover",
    "MoverConfig",
    "Bitstream",
    "BitstreamKind",
    "Floorplan",
    "PrRegion",
    "Device",
    "DEVICES",
    "IcapController",
    "IcapCrcError",
    "ReconfigPort",
    "ReconfigError",
    "VivadoHwManager",
    "AXI_HWICAP",
    "PCAP",
    "MCAP",
    "COYOTE_ICAP",
]
