"""vFPGAs: the application layer's isolation unit (paper §7).

A vFPGA hosts arbitrary user logic behind the unified interface of
Figure 5: an AXI4-Lite control bus, an interrupt channel, parallel
host/card/network AXI4 streams, and read/write send + completion queues
through which the hardware can source its own DMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..axi.lite import RegisterFile
from ..axi.stream import AxiStream
from ..axi.types import Flit
from ..faults.plan import APP_HANG, APP_WEDGE_CREDIT
from ..sim.engine import Environment, Event, Process
from ..sim.resources import Store
from .credit import CreditConfig, Crediter
from .interfaces import CompletionEntry, Descriptor, StreamType

__all__ = ["VFpga", "UserApp", "VFpgaConfig"]


@dataclass(frozen=True)
class VFpgaConfig:
    """Per-vFPGA interface geometry."""

    num_host_streams: int = 4
    num_card_streams: int = 32
    num_net_streams: int = 2
    credits: CreditConfig = CreditConfig()


class UserApp:
    """Base class for hardware user applications.

    Subclasses implement :meth:`run` as a simulation process using the
    vFPGA interface, and declare which shell services they require (used
    by the linker check in :mod:`repro.core.reconfig`) plus the synthesis
    netlist name (used by :mod:`repro.synth`).
    """

    #: Human-readable application name, also the synth-model module key.
    name = "user_app"
    #: Shell services this app needs; linking verifies availability.
    required_services: frozenset = frozenset()

    def run(self, vfpga: "VFpga") -> Generator:
        """The application's hardware process; must be a generator."""
        raise NotImplementedError
        yield  # pragma: no cover

    def on_csr_write(self, index: int, value: int) -> None:
        """Optional hook invoked when software writes a control register."""


class VFpga:
    """One virtual FPGA region with the generic application interface."""

    def __init__(
        self,
        env: Environment,
        vfpga_id: int,
        config: VFpgaConfig = VFpgaConfig(),
    ):
        self.env = env
        self.vfpga_id = vfpga_id
        self.config = config
        # Control bus + interrupts.
        self.ctrl = RegisterFile(f"vfpga{vfpga_id}-csr", size=64)
        self._irq_fn: Optional[Callable[[int, int], None]] = None
        # Parallel data streams.  FIFO depths equal the credit capacity so
        # a held credit always guarantees deposit space (see credit.py).
        credits = config.credits
        self.host_in = self._streams("h2v", config.num_host_streams, credits.host_credits)
        self.host_out = self._streams("v2h", config.num_host_streams, credits.host_credits)
        self.card_in = self._streams("c2v", config.num_card_streams, credits.card_credits)
        self.card_out = self._streams("v2c", config.num_card_streams, credits.card_credits)
        self.net_in = self._streams("n2v", config.num_net_streams, credits.net_credits)
        self.net_out = self._streams("v2n", config.num_net_streams, credits.net_credits)
        # Send and completion queues.
        self.sq_rd: Store = Store(env)
        self.sq_wr: Store = Store(env)
        self.cq_rd: Store = Store(env)
        self.cq_wr: Store = Store(env)
        # Per-stream-kind crediters (independent, paper §7.2).
        self.rd_credits: Dict[StreamType, Crediter] = {
            StreamType.HOST: Crediter(env, credits.host_credits, f"v{vfpga_id}-host-rd"),
            StreamType.CARD: Crediter(env, credits.card_credits, f"v{vfpga_id}-card-rd"),
            StreamType.NET: Crediter(env, credits.net_credits, f"v{vfpga_id}-net-rd"),
        }
        self.wr_credits: Dict[StreamType, Crediter] = {
            StreamType.HOST: Crediter(env, credits.host_credits, f"v{vfpga_id}-host-wr"),
            StreamType.CARD: Crediter(env, credits.card_credits, f"v{vfpga_id}-card-wr"),
            StreamType.NET: Crediter(env, credits.net_credits, f"v{vfpga_id}-net-wr"),
        }
        self.app: Optional[UserApp] = None
        self._app_proc: Optional[Process] = None
        self._children: List[Process] = []
        self.interrupts_sent = 0
        self.reconfigurations = 0
        #: Armed :class:`repro.faults.FaultInjector` (``None`` = fault-free;
        #: the ``app.*`` misbehaving-tenant sites hook ``recv``).
        self.faults = None
        #: Decoupled from the shell interconnect (recovery in progress):
        #: the driver rejects new software work for this region.
        self.decoupled = False
        #: Circuit breaker open: tenant evicted, region dark.
        self.quarantined = False
        self.hangs_injected = 0
        self.credits_wedged = 0

    def _streams(self, tag: str, count: int, depth: int) -> List[AxiStream]:
        return [
            AxiStream(self.env, name=f"v{self.vfpga_id}-{tag}{i}", depth_flits=depth)
            for i in range(count)
        ]

    # ------------------------------------------------------------ app mgmt

    def _supervised(self, generator) -> Generator:
        """Run app logic; a reconfiguration interrupt is a clean stop."""
        from ..sim.engine import Interrupt

        try:
            yield from generator
        except Interrupt:
            pass

    def spawn(self, generator, name: str = "") -> Process:
        """Start a child process of the current app (e.g. one per lane).

        Children are interrupted when the app is unloaded, modelling the
        PR region being wiped.
        """
        proc = self.env.process(self._supervised(generator), name=name)
        self._children.append(proc)
        return proc

    def load_app(self, app: UserApp) -> None:
        """(Re)load user logic into this region and start its process."""
        self.unload_app()
        self.app = app
        for index in range(self.ctrl.size):
            self.ctrl._values.pop(index, None)
        self._app_proc = self.env.process(
            self._supervised(app.run(self)), name=f"v{self.vfpga_id}-{app.name}"
        )
        self.reconfigurations += 1

    def unload_app(self) -> None:
        for child in self._children:
            if child.is_alive:
                child.interrupt("unloaded")
        self._children = []
        if self._app_proc is not None and self._app_proc.is_alive:
            self._app_proc.interrupt("unloaded")
        self.app = None
        self._app_proc = None

    def reset_datapath(self) -> int:
        """Hot-reset the region's datapath state (health recovery).

        Wipes every stream FIFO, drains the send/completion queues, and
        refills all credit pools to capacity — the simulation equivalent
        of asserting the PR region's reset while it is decoupled.  Call
        after :meth:`unload_app` (the app processes must be gone first).
        Returns the number of queued items discarded.
        """
        dropped = 0
        for group in (self.host_in, self.host_out, self.card_in,
                      self.card_out, self.net_in, self.net_out):
            for stream in group:
                dropped += stream.reset()
        for queue in (self.sq_rd, self.sq_wr, self.cq_rd, self.cq_wr):
            dropped += queue.clear()
        for crediters in (self.rd_credits, self.wr_credits):
            for crediter in crediters.values():
                crediter.reset()
        return dropped

    # ------------------------------------------- hardware-facing interface

    def bind_irq(self, irq_fn: Callable[[int, int], None]) -> None:
        self._irq_fn = irq_fn

    def interrupt(self, value: int = 0) -> None:
        """Raise a user interrupt towards the host (paper §7.1)."""
        if self._irq_fn is None:
            raise RuntimeError(f"vFPGA {self.vfpga_id}: interrupt channel unbound")
        self.interrupts_sent += 1
        self._irq_fn(self.vfpga_id, value)

    def read(
        self,
        pid: int,
        vaddr: int,
        length: int,
        stream: StreamType = StreamType.HOST,
        dest: int = 0,
        wr_id: int = 0,
    ):
        """Issue a hardware-side read request (memory -> stream ``dest``)."""
        return self.sq_rd.put(
            Descriptor(
                vfpga_id=self.vfpga_id, pid=pid, vaddr=vaddr, length=length,
                stream=stream, dest=dest, wr_id=wr_id,
            )
        )

    def write(
        self,
        pid: int,
        vaddr: int,
        length: int,
        stream: StreamType = StreamType.HOST,
        dest: int = 0,
        wr_id: int = 0,
    ):
        """Issue a hardware-side write request (stream ``dest`` -> memory)."""
        return self.sq_wr.put(
            Descriptor(
                vfpga_id=self.vfpga_id, pid=pid, vaddr=vaddr, length=length,
                stream=stream, dest=dest, wr_id=wr_id,
            )
        )

    def _in_streams(self, stream: StreamType) -> List[AxiStream]:
        return {
            StreamType.HOST: self.host_in,
            StreamType.CARD: self.card_in,
            StreamType.NET: self.net_in,
        }[stream]

    def _out_streams(self, stream: StreamType) -> List[AxiStream]:
        return {
            StreamType.HOST: self.host_out,
            StreamType.CARD: self.card_out,
            StreamType.NET: self.net_out,
        }[stream]

    def recv(self, stream: StreamType = StreamType.HOST, dest: int = 0) -> Generator:
        """Consume one inbound flit; releases the read credit it held.

        The two misbehaving-tenant fault sites live here, on the user
        side of the interface: ``app.wedge_credit`` leaks the credit this
        flit held (eventually exhausting the pool and wedging the
        region's datapath), ``app.hang`` parks the consuming lane forever
        (until recovery wipes the region).  Both are invisible unless a
        :class:`repro.faults.FaultInjector` is armed.
        """
        flit = yield from self._in_streams(stream)[dest].recv()
        faults = self.faults
        if faults is not None and faults.fires(APP_WEDGE_CREDIT, self):
            self.credits_wedged += 1
            # Leaked, never released — but *accounted*, so the sanitizer's
            # conservation check can tell injected sabotage from real leaks.
            self.rd_credits[stream].wedge()
        else:
            self.rd_credits[stream].release()
        if faults is not None and faults.fires(APP_HANG, self):
            self.hangs_injected += 1
            # Wedge this lane on an event nothing ever triggers; only an
            # unload interrupt (region wipe) gets it out.
            yield Event(self.env)
        return flit

    def send(self, flit: Flit, stream: StreamType = StreamType.HOST, dest: int = 0) -> Generator:
        """Produce one outbound flit onto stream ``dest``."""
        yield from self._out_streams(stream)[dest].send(flit)

    def pop_completion(self, write: bool = True) -> Generator:
        """Await the next completion entry."""
        queue = self.cq_wr if write else self.cq_rd
        entry = yield queue.get()
        return entry

    # ---------------------------------------------- software-facing helpers

    def csr_write(self, index: int, value: int) -> None:
        self.ctrl.write(index, value)
        if self.app is not None:
            self.app.on_csr_write(index, value)

    def csr_read(self, index: int) -> int:
        return self.ctrl.read(index)
