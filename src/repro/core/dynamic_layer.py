"""The dynamic (services) layer (paper §6).

Services — memory controllers, the MMU, the RDMA stack, the traffic
sniffer — live here rather than in the static layer, which is the key
architectural change over Coyote v1: the whole layer is part of the
reconfigurable shell, so services can be swapped at run time without
taking the device offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mem.hbm import HbmConfig, HbmController
from ..mem.mmu import Mmu, MmuConfig
from ..net.cmac import Cmac
from ..net.headers import MacAddress
from ..net.rdma import RdmaConfig, RdmaStack
from ..net.sniffer import TrafficSniffer
from ..net.switch import Switch
from ..sim.engine import Environment
from .movers import CardDataMover, HostDataMover, MoverConfig
from .static_layer import StaticLayer

__all__ = ["DynamicLayer", "ServiceConfig"]

#: Reserved HBM region for the sniffer's capture buffer (last 64 MB).
SNIFFER_BUFFER_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Which services this shell configuration includes, and their knobs."""

    en_memory: bool = True
    en_rdma: bool = False
    en_tcp: bool = False
    en_sniffer: bool = False
    mmu: MmuConfig = MmuConfig()
    hbm: HbmConfig = HbmConfig()
    mover: MoverConfig = MoverConfig()
    rdma: RdmaConfig = RdmaConfig()

    @property
    def service_names(self) -> frozenset:
        names = {"host"}
        page = self.mmu.tlb.page_size
        names.add(f"mmu-{page // (1024 * 1024)}m" if page < (1 << 30) else "mmu-1g")
        if self.en_memory:
            names.add("memory")
        if self.en_rdma:
            names.add("rdma")
        if self.en_tcp:
            names.add("tcp")
        if self.en_sniffer:
            names.add("sniffer")
        return frozenset(names)


class DynamicLayer:
    """Instantiates the services of one shell configuration."""

    def __init__(
        self,
        env: Environment,
        static: StaticLayer,
        config: ServiceConfig = ServiceConfig(),
        switch: Optional[Switch] = None,
        mac: Optional[MacAddress] = None,
        ip: int = 0x0A000001,
    ):
        self.env = env
        self.static = static
        self.config = config
        # Per-vFPGA MMUs are created lazily as vFPGAs register.
        self.mmus: Dict[int, Mmu] = {}
        # Memory service.
        self.hbm: Optional[HbmController] = None
        self.card_mover: Optional[CardDataMover] = None
        if config.en_memory:
            self.hbm = HbmController(env, config.hbm)
            self.card_mover = CardDataMover(env, static.xdma, self.hbm, config.mover)
        # Host path is always present (it is what the static layer links).
        self.host_mover = HostDataMover(env, static.xdma, config.mover)
        # Networking services: RDMA (BALBOA) and/or the TCP/IP offload
        # stack, sharing one CMAC through a protocol demux.
        self.cmac: Optional[Cmac] = None
        self.rdma: Optional[RdmaStack] = None
        self.tcp = None
        if config.en_rdma or config.en_tcp:
            if switch is None or mac is None:
                raise ValueError("networking services need a switch and a MAC address")
            self.cmac = Cmac(env, name=f"cmac-{mac!r}")
            switch.attach(mac, self.cmac)
        if config.en_rdma and config.en_tcp:
            from ..net.packet import RocePacket
            from ..net.tcp import TcpPacket, TcpStack
            from ..sim.resources import Store

            roce_q: Store = Store(env)
            tcp_q: Store = Store(env)

            def _demux():
                while True:
                    packet = yield self.cmac.rx_queue.get()
                    if isinstance(packet, RocePacket):
                        yield roce_q.put(packet)
                    elif isinstance(packet, TcpPacket):
                        yield tcp_q.put(packet)

            env.process(_demux(), name="net-demux")
            self.rdma = RdmaStack(env, self.cmac, mac, ip, config.rdma, rx_queue=roce_q)
            self.tcp = TcpStack(env, self.cmac, mac, ip, rx_queue=tcp_q)
        elif config.en_rdma:
            self.rdma = RdmaStack(env, self.cmac, mac, ip, config.rdma)
        elif config.en_tcp:
            from ..net.tcp import TcpStack

            self.tcp = TcpStack(env, self.cmac, mac, ip)
        # Sniffer service (requires both networking and card memory).
        self.sniffer: Optional[TrafficSniffer] = None
        if config.en_sniffer:
            if self.cmac is None:
                raise ValueError("sniffer service requires the RDMA/network service")
            if self.hbm is None:
                raise ValueError("sniffer service requires the memory service")
            buffer_addr = self.hbm.config.total_bytes - SNIFFER_BUFFER_BYTES
            self.sniffer = TrafficSniffer(
                env, self.cmac, self.hbm, buffer_addr, SNIFFER_BUFFER_BYTES
            )

    def mmu_for(self, vfpga_id: int) -> Mmu:
        mmu = self.mmus.get(vfpga_id)
        if mmu is None:
            mmu = Mmu(self.env, self.config.mmu, name=f"mmu-v{vfpga_id}")
            self.mmus[vfpga_id] = mmu
        return mmu

    @property
    def service_names(self) -> frozenset:
        return self.config.service_names
