"""Device floorplans and partial-reconfiguration regions (paper §4).

"To enable shell reconfiguration, Coyote v2 provides a floor-plan and
interfaces which connect the static layer to the shell.  Both the
floor-plan and the interfaces are hidden from Coyote v2 users."

A device is divided into the locked static region, one shell (dynamic +
application layers) PR region, and per-vFPGA PR sub-regions nested inside
the shell region.  Partial bitstream sizes derive from region
configuration-frame footprints, which is what makes reconfiguration
latency a function of what is being reconfigured (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Device", "PrRegion", "Floorplan", "DEVICES"]

#: Bytes of configuration data per logic cell, calibrated so a full U55C
#: bitstream is ~90 MB and the evaluated shell configs land at the
#: bitstream sizes implied by Table 3 (51.6 ms @ 800 MB/s ~= 41 MB).
CONFIG_BYTES_PER_LUT = 72


@dataclass(frozen=True)
class Device:
    """An FPGA part with its resource totals."""

    name: str
    luts: int
    ffs: int
    brams: int
    urams: int
    dsps: int
    hbm_channels: int = 0

    @property
    def full_bitstream_bytes(self) -> int:
        return self.luts * CONFIG_BYTES_PER_LUT


DEVICES: Dict[str, Device] = {
    "u55c": Device("u55c", luts=1_303_680, ffs=2_607_360, brams=2_016, urams=960,
                   dsps=9_024, hbm_channels=32),
    "u250": Device("u250", luts=1_728_000, ffs=3_456_000, brams=2_688, urams=1_280,
                   dsps=12_288),
    "u280": Device("u280", luts=1_303_680, ffs=2_607_360, brams=2_016, urams=960,
                   dsps=9_024, hbm_channels=32),
}


@dataclass
class PrRegion:
    """A partially reconfigurable region of the fabric."""

    name: str
    luts: int

    @property
    def bitstream_bytes(self) -> int:
        """Size of a partial bitstream covering this region."""
        return self.luts * CONFIG_BYTES_PER_LUT


@dataclass
class Floorplan:
    """Static / shell / per-app region split for one device."""

    device: Device
    static_fraction: float = 0.08
    app_regions: int = 4
    app_fraction_each: float = 0.08

    def __post_init__(self) -> None:
        if not 0 < self.static_fraction < 1:
            raise ValueError("static_fraction must be in (0, 1)")
        shell_frac = 1.0 - self.static_fraction
        if self.app_regions * self.app_fraction_each >= shell_frac:
            raise ValueError("app regions exceed the shell region")

    @property
    def static_region(self) -> PrRegion:
        return PrRegion("static", int(self.device.luts * self.static_fraction))

    @property
    def shell_region(self) -> PrRegion:
        """The whole reconfigurable shell (dynamic + application layers)."""
        return PrRegion("shell", int(self.device.luts * (1.0 - self.static_fraction)))

    def app_region(self, index: int) -> PrRegion:
        if not 0 <= index < self.app_regions:
            raise IndexError(f"no app region {index} (have {self.app_regions})")
        return PrRegion(
            f"vfpga{index}", int(self.device.luts * self.app_fraction_each)
        )
