"""The unified vFPGA interface types (paper §7.1, Figure 5).

Descriptors are what flows through the read/write send queues: a request to
move ``length`` bytes at virtual address ``vaddr`` between a memory
(host/card/network) and one of the vFPGA's parallel streams.  They can be
issued from host software (``cThread.invoke``) *or from the hardware
itself* via the send-queue interface — the latter is what enables
pointer-chasing offloads with no CPU involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "StreamType",
    "Oper",
    "Descriptor",
    "CompletionEntry",
    "LocalSg",
    "RdmaSg",
    "SgEntry",
]


class StreamType(Enum):
    """Which peripheral a data stream talks to."""

    HOST = "host"
    CARD = "card"
    NET = "net"


class Oper(Enum):
    """Operations a cThread can invoke (subset of Coyote's ``CoyoteOper``)."""

    NOOP = "noop"
    LOCAL_READ = "local_read"  # memory -> vFPGA stream
    LOCAL_WRITE = "local_write"  # vFPGA stream -> memory
    LOCAL_TRANSFER = "local_transfer"  # read + write through the kernel
    LOCAL_OFFLOAD = "local_offload"  # host -> card migration
    LOCAL_SYNC = "local_sync"  # card -> host migration
    REMOTE_RDMA_WRITE = "remote_rdma_write"
    REMOTE_RDMA_READ = "remote_rdma_read"
    REMOTE_RDMA_SEND = "remote_rdma_send"


@dataclass
class Descriptor:
    """One entry in a vFPGA's read or write send queue."""

    vfpga_id: int
    pid: int
    vaddr: int
    length: int
    stream: StreamType = StreamType.HOST
    dest: int = 0  # which parallel stream (the AXI TID / TDEST)
    wr_id: int = 0
    last: bool = True  # signal completion when done
    #: Memory-region key the vaddr was resolved from, when the request
    #: came through the ring path (None for legacy raw-vaddr ioctls).
    mr_key: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("descriptor length must be positive")
        if self.vaddr < 0:
            raise ValueError("descriptor vaddr must be non-negative")


@dataclass
class CompletionEntry:
    """One entry in a read/write completion queue."""

    vfpga_id: int
    pid: int
    wr_id: int
    length: int
    stream: StreamType
    dest: int
    timestamp_ns: float = 0.0
    #: "success", or an error code such as "timeout" — a stuck operation
    #: surfaces as an error completion instead of hanging its cThread.
    status: str = "success"


@dataclass
class LocalSg:
    """Scatter-gather element for local operations (paper's ``sg.local``)."""

    src_addr: int = 0
    src_len: int = 0
    dst_addr: int = 0
    dst_len: int = 0
    src_stream: StreamType = StreamType.HOST
    dst_stream: StreamType = StreamType.HOST
    src_dest: int = 0
    dst_dest: int = 0


@dataclass
class RdmaSg:
    """Scatter-gather element for RDMA operations (paper's ``sg.rdma``)."""

    local_addr: int = 0
    remote_addr: int = 0
    len: int = 0
    qpn: int = 0


@dataclass
class SgEntry:
    """The union the software API passes to ``invoke`` (paper Code 1)."""

    local: Optional[LocalSg] = None
    rdma: Optional[RdmaSg] = None
