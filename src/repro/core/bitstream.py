"""Partial bitstream artifacts.

A bitstream is the output of a build flow (see :mod:`repro.synth.flow`):
it records which region it targets, which services and applications it
contains, and its size in bytes — the quantity that determines
reconfiguration latency through the ICAP (Table 2/3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

__all__ = ["Bitstream", "BitstreamKind"]


class BitstreamKind:
    FULL = "full"  # whole device (Vivado hardware-manager flow)
    SHELL = "shell"  # dynamic + application layers
    APP = "app"  # one vFPGA region


@dataclass(frozen=True)
class Bitstream:
    """An immutable build artifact."""

    kind: str
    target_region: str
    size_bytes: int
    services: FrozenSet[str] = frozenset()
    apps: Tuple[str, ...] = ()
    device: str = "u55c"
    #: Shell configuration identity an app bitstream was linked against;
    #: loading an app into a different shell is refused (paper §4's
    #: fail-safe: apps must not lose access to services they need).
    linked_shell: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("bitstream size must be positive")
        if self.kind not in (BitstreamKind.FULL, BitstreamKind.SHELL, BitstreamKind.APP):
            raise ValueError(f"unknown bitstream kind {self.kind!r}")

    @property
    def shell_id(self) -> str:
        """Stable identity of a shell configuration (services + device)."""
        text = ",".join(sorted(self.services)) + "@" + self.device
        return hashlib.sha1(text.encode()).hexdigest()[:12]

    @property
    def checksum(self) -> str:
        """Content identity of this artifact (the build flow is
        deterministic, so the identity fields stand in for the bits).
        Keys the per-region bitstream cache in the ICAP controller."""
        text = "|".join(
            (
                self.kind,
                self.target_region,
                str(self.size_bytes),
                ",".join(sorted(self.services)),
                ",".join(self.apps),
                self.device,
                self.linked_shell,
            )
        )
        return hashlib.sha1(text.encode()).hexdigest()[:16]
