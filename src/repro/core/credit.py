"""Per-vFPGA, per-stream crediting (paper §7.2).

"For each vFPGA, Coyote v2 implements a per-stream crediting mechanism,
built on top of destination queues, which verifies the available credits
for the specific vFPGA and data stream.  Requests are only propagated to
the dynamic layer when sufficient space in the queue is available.
Otherwise, the request is stalled, exerting back-pressure onto the vFPGA
rather than the rest of the system.  Credits are replenished when previous
requests are marked as complete."

One :class:`Crediter` guards one (vFPGA, stream-kind) pair; a credit
corresponds to one in-flight packet of destination-queue space, so holding
a credit guarantees the shared data mover can always deposit the packet
without blocking — that invariant is what contains back-pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from ..sim.engine import Environment
from ..sim.resources import Container

__all__ = ["Crediter", "CreditConfig"]


@dataclass(frozen=True)
class CreditConfig:
    """Credits (in packets) per vFPGA for each stream kind."""

    host_credits: int = 16
    card_credits: int = 64
    net_credits: int = 8


class Crediter:
    """A counted credit pool for one vFPGA data path."""

    def __init__(self, env: Environment, credits: int, name: str = "credits"):
        if credits <= 0:
            raise ValueError("credit count must be positive")
        self.env = env
        self.name = name
        self.capacity = credits
        self._pool = Container(env, capacity=credits, init=credits)
        self.acquired_total = 0
        self.stalls = 0

    def acquire(self) -> Generator:
        """Take one credit; blocks (stalling the vFPGA) when exhausted."""
        if self._pool.level < 1:
            self.stalls += 1
        yield self._pool.get(1)
        self.acquired_total += 1

    def release(self) -> None:
        """Replenish one credit (request marked complete / data consumed)."""
        if self._pool.level >= self.capacity:
            # Already full: this credit was reclaimed by reset() while
            # its request drained.  Dropping the release (instead of
            # queueing a put the pool can never admit) keeps the pool
            # exactly at capacity after a region hot-reset.
            return
        self._pool.put(1)

    def reset(self) -> int:
        """Refill the pool to capacity (region hot-reset).

        In-flight credits belong to packets that were wiped with the
        region's datapath, so they are reclaimed rather than leaked.
        Returns how many credits were outstanding.  Blocked acquirers
        are expected to have been interrupted by the same reset; any
        left queued are settled on the next pool operation.
        """
        reclaimed = self.in_flight
        self._pool.level = float(self.capacity)
        return reclaimed

    @property
    def available(self) -> int:
        return int(self._pool.level)

    @property
    def in_flight(self) -> int:
        return self.capacity - self.available
