"""Per-vFPGA, per-stream crediting (paper §7.2).

"For each vFPGA, Coyote v2 implements a per-stream crediting mechanism,
built on top of destination queues, which verifies the available credits
for the specific vFPGA and data stream.  Requests are only propagated to
the dynamic layer when sufficient space in the queue is available.
Otherwise, the request is stalled, exerting back-pressure onto the vFPGA
rather than the rest of the system.  Credits are replenished when previous
requests are marked as complete."

One :class:`Crediter` guards one (vFPGA, stream-kind) pair; a credit
corresponds to one in-flight packet of destination-queue space, so holding
a credit guarantees the shared data mover can always deposit the packet
without blocking — that invariant is what contains back-pressure.

Pairing discipline (enforced statically by the RES001 analyzer rule and
dynamically by :class:`repro.analysis.SimSanitizer`):

* same-process acquire/release pairs go through a :class:`CreditGuard`
  with the release in a ``try``/``finally``;
* split-phase crediting (acquire in the mover, release where the flit is
  consumed) carries a ``# repro: allow[RES001]`` waiver naming the
  releasing counterpart;
* deliberate leaks injected by the ``app.wedge_credit`` chaos site are
  recorded via :meth:`Crediter.wedge` so the sanitizer's conservation
  check can tell sabotage from bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from ..sim.engine import Environment
from ..sim.resources import Container

__all__ = ["Crediter", "CreditGuard", "CreditConfig"]


@dataclass(frozen=True)
class CreditConfig:
    """Credits (in packets) per vFPGA for each stream kind."""

    host_credits: int = 16
    card_credits: int = 64
    net_credits: int = 8


class Crediter:
    """A counted credit pool for one vFPGA data path."""

    def __init__(self, env: Environment, credits: int, name: str = "credits"):
        if credits <= 0:
            raise ValueError("credit count must be positive")
        self.env = env
        self.name = name
        self.capacity = credits
        self._pool = Container(env, capacity=credits, init=credits)
        self.acquired_total = 0
        self.released_total = 0
        self.stalls = 0
        #: Credits deliberately leaked by the ``app.wedge_credit`` fault
        #: site (cleared on :meth:`reset`, which reclaims them).
        self.wedged = 0
        #: Releases reset() still owes us: credits reclaimed while their
        #: request drained may legally release into a full pool.
        self._reclaim_budget = 0
        if env.sanitizer is not None:
            env.sanitizer.register_crediter(self)

    def acquire(self) -> Generator:
        """Take one credit; blocks (stalling the vFPGA) when exhausted."""
        if self._pool.level < 1:
            self.stalls += 1
        yield self._pool.get(1)
        self.acquired_total += 1

    def release(self) -> None:
        """Replenish one credit (request marked complete / data consumed)."""
        if self._pool.level >= self.capacity:
            # Already full: either this credit was reclaimed by reset()
            # while its request drained (budgeted, legal), or something
            # double-released — a credit created from nothing, which the
            # sanitizer reports.  Either way the pool stays at capacity.
            if self._reclaim_budget > 0:
                self._reclaim_budget -= 1
            elif self.env.sanitizer is not None:
                self.env.sanitizer.on_double_release(self)
            return
        self._pool.put(1)
        self.released_total += 1

    def wedge(self) -> None:
        """Account one deliberately leaked credit (misbehaving-tenant
        fault injection).  The credit is *not* returned to the pool; the
        sanitizer's drain check subtracts ``wedged`` before calling the
        remainder a leak."""
        self.wedged += 1

    def guard(self) -> "CreditGuard":
        """A scoped holder for try/finally pairing (see RES001)."""
        return CreditGuard(self)

    def reset(self) -> int:
        """Refill the pool to capacity (region hot-reset).

        In-flight credits belong to packets that were wiped with the
        region's datapath, so they are reclaimed rather than leaked.
        Returns how many credits were outstanding.  Blocked acquirers
        are expected to have been interrupted by the same reset; any
        left queued are settled on the next pool operation.
        """
        reclaimed = self.in_flight
        self._reclaim_budget += reclaimed
        self.wedged = 0
        self._pool.level = float(self.capacity)
        return reclaimed

    @property
    def available(self) -> int:
        return int(self._pool.level)

    @property
    def in_flight(self) -> int:
        return self.capacity - self.available


class CreditGuard:
    """Scoped credit holder: makes the release side exception-safe.

    Usage inside a simulation process::

        guard = crediter.guard()
        yield from guard.acquire()
        try:
            ...move the packet...
        finally:
            guard.release()

    ``release()`` is a no-op when no credit is held, so it is safe in a
    ``finally`` even when the process was interrupted *inside*
    ``acquire()`` (the acquire never completed, nothing to give back).
    ``release_all()`` drains every held credit — the teardown path for
    guards that batch.
    """

    __slots__ = ("crediter", "held")

    def __init__(self, crediter: Crediter):
        self.crediter = crediter
        self.held = 0

    def acquire(self) -> Generator:
        # repro: allow[RES001] guard plumbing: the pair is CreditGuard.release, called from the caller's finally
        yield from self.crediter.acquire()
        self.held += 1

    def release(self) -> None:
        if self.held == 0:
            return
        self.held -= 1
        self.crediter.release()

    def release_all(self) -> None:
        while self.held:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CreditGuard({self.crediter.name}, held={self.held})"
