"""The static layer (paper §5): the thin, card-specific bottom layer.

"The primary purpose of the static layer is now only to provide a link
between the host CPU and the FPGA, which can be used for data movement,
control and reconfiguration.  Importantly, the static layer does not
process the incoming data or control signals; instead it passes them onto
the upper layers."

Contents: the XDMA CPU-FPGA link, BAR-mapped shell control, the
reconfiguration (ICAP) controller, and MSI-X interrupt delivery.  It is
never reconfigured at run time; the synth model ships it as a routed and
locked checkpoint per device.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..pcie.xdma import MsiVector, Xdma, XdmaConfig
from ..sim.engine import Environment
from .reconfig import IcapController, VivadoHwManager

__all__ = ["StaticLayer"]


class StaticLayer:
    """Platform link: XDMA + BARs + ICAP.  One per card."""

    def __init__(self, env: Environment, xdma_config: XdmaConfig = XdmaConfig()):
        self.env = env
        self.xdma = Xdma(env, xdma_config)
        self.icap = IcapController(env, self.xdma)
        self.vivado = VivadoHwManager(env)

    # The static layer routes, it does not process: interrupt delivery is a
    # thin forward to MSI-X, and the shell control BAR is exposed directly.

    @property
    def bar0(self):
        return self.xdma.bar0

    def raise_user_interrupt(self, vfpga_id: int, value: int) -> None:
        """Forward a vFPGA user interrupt to the host as MSI-X."""
        self.env.process(
            self.xdma.raise_msix(MsiVector.USER, value=(vfpga_id << 32) | (value & 0xFFFFFFFF))
        )

    def on_user_interrupt(self, handler: Callable[[int], None]) -> None:
        self.xdma.on_interrupt(MsiVector.USER, handler)

    def on_page_fault(self, handler: Callable[[int], None]) -> None:
        self.xdma.on_interrupt(MsiVector.PAGE_FAULT, handler)
