"""Round-robin interleaving over bandwidth-constrained links (paper §6.3).

"Interleaving distributes limited bandwidth links using round-robin
arbitration, guaranteeing equal resource allocation while preserving
in-order packet handling.  However, interleaving is unnecessary for FPGA
HBM requests, as the significantly higher local bandwidth allows each
vFPGA to utilize dedicated interfaces efficiently."

The PCIe and network data movers each own one
:class:`RoundRobinArbiter`; every vFPGA gets a bounded input port and the
arbiter hands the mover one packet per grant, cycling fairly across ports
that have work.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from ..sim.engine import Environment
from ..sim.resources import Container, Store

__all__ = ["RoundRobinArbiter", "ArbiterPort"]


class ArbiterPort:
    """A bounded FIFO input into the arbiter."""

    def __init__(self, arbiter: "RoundRobinArbiter", index: int, depth: int):
        self.arbiter = arbiter
        self.index = index
        self.depth = depth
        self.queue: Deque[Any] = deque()
        self._slots = Container(arbiter.env, capacity=depth, init=depth)
        self.items_in = 0

    def put(self, item: Any) -> Generator:
        """Enqueue one item; blocks while the port is full."""
        yield self._slots.get(1)
        self.queue.append(item)
        self.items_in += 1
        self.arbiter._notify()

    def _pop(self) -> Any:
        item = self.queue.popleft()
        self._slots.put(1)
        return item

    def __len__(self) -> int:
        return len(self.queue)


class RoundRobinArbiter:
    """Fair, work-conserving round-robin over any number of input ports."""

    def __init__(self, env: Environment, name: str = "rr-arb", port_depth: int = 2):
        self.env = env
        self.name = name
        self.port_depth = port_depth
        self.ports: List[ArbiterPort] = []
        self._tokens = Store(env)  # one token per enqueued item
        self._next = 0
        self.grants = 0

    def add_port(self) -> ArbiterPort:
        port = ArbiterPort(self, index=len(self.ports), depth=self.port_depth)
        self.ports.append(port)
        return port

    def _notify(self) -> None:
        self._tokens.put(object())

    def get(self) -> Generator:
        """Return the next item, round-robin across non-empty ports."""
        yield self._tokens.get()
        nports = len(self.ports)
        for step in range(nports):
            port = self.ports[(self._next + step) % nports]
            if port.queue:
                self._next = (self._next + step + 1) % nports
                self.grants += 1
                return port._pop()
        raise RuntimeError(f"{self.name}: token with no queued item")

    def try_get(self) -> Optional[Any]:
        if self._tokens.try_get() is None:
            return None
        nports = len(self.ports)
        for step in range(nports):
            port = self.ports[(self._next + step) % nports]
            if port.queue:
                self._next = (self._next + step + 1) % nports
                self.grants += 1
                return port._pop()
        return None

    @property
    def backlog(self) -> int:
        return sum(len(p) for p in self.ports)
