"""Dynamic-layer data movers: the shared datapaths behind the vFPGAs.

Implements the architecture of paper §6.3/§7.2:

* **Host path** (PCIe, bandwidth-constrained): per-vFPGA request units
  packetize descriptors and acquire credits, a round-robin interleaver
  grants one packet at a time, and a pipelined mover translates (MMU) and
  DMAs each packet.  Fairness across tenants emerges here (Figure 8).
* **Card path** (HBM, bandwidth-rich): dedicated per-stream workers, no
  interleaving, still credited and MMU-translated.  Parallel workers are
  what make per-vFPGA throughput scale with channels (Figure 7a).

Read credits are released when the vFPGA consumes the deposited flit
(destination-queue crediting); write credits when the packet's write
completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..axi.types import Flit
from ..mem.hbm import HbmController
from ..mem.mmu import MemLocation, Mmu
from ..pcie.xdma import Xdma
from ..sim.engine import Environment
from ..sim.resources import Store
from .arbiter import RoundRobinArbiter
from .interfaces import CompletionEntry, Descriptor, StreamType
from .packetizer import Packet, Packetizer
from .vfpga import VFpga

__all__ = ["HostDataMover", "CardDataMover", "MoverConfig"]


@dataclass(frozen=True)
class MoverConfig:
    #: Packetizer chunk size.  2 KiB won the packet-size ablation
    #: (``repro.experiments.ablations.run_ablation_packet_size``): best
    #: single-tenant throughput (~11.9 GB/s vs ~11.86 at 4 KiB) and
    #: within noise of larger chunks for two concurrent tenants, with
    #: finer round-robin interleaving granularity (fairness).
    packet_bytes: int = 2048
    writeback: bool = True  # completion writeback vs host polling
    carry_data: bool = True  # move real payload bytes (False: timing only)


class _RegionResetMixin:
    """Per-region quiesce/restart used by the health recovery pipeline.

    Subclasses record each region's worker processes in
    ``self._region_procs[vfpga_id]`` and its descriptor queues in
    ``self._region_queues[vfpga_id]`` (re-created by ``_spawn_region``).
    """

    def quiesce_region(self, vfpga_id: int) -> None:
        """Stop the region's request units so no new packets enter the
        shared pipeline; packets already admitted drain normally."""
        for proc in self._region_procs.get(vfpga_id, ()):
            if proc.is_alive:
                # Nothing awaits mover workers; defuse so the interrupt
                # is a clean stop, not an unhandled simulation failure.
                proc.defuse()
                proc.interrupt("region reset")

    def restart_region(self, vfpga_id: int) -> int:
        """Respawn the region's units with empty queues (post hot-reset).

        Returns the number of queued descriptors discarded with the old
        queues.
        """
        vfpga, _mmu = self._vfpgas[vfpga_id]
        dropped = sum(len(q) for q in self._region_queues.get(vfpga_id, ()))
        self._spawn_region(vfpga)
        return dropped


class _FlitAssembler:
    """Reassembles a flit stream into arbitrary-sized byte chunks.

    Tracks payload bytes and byte counts separately so timing-only flits
    (``data is None``) interoperate: a chunk's data is returned only when
    every contributing byte was real, otherwise ``None``.
    """

    def __init__(self) -> None:
        self.available = 0
        self._data = bytearray()
        self._all_real = True

    def push(self, flit: Flit) -> None:
        self.available += flit.length
        if flit.data is not None:
            self._data += flit.data
        else:
            self._all_real = False

    def take(self, length: int):
        if length > self.available:
            raise ValueError("taking more bytes than assembled")
        self.available -= length
        if self._all_real and len(self._data) >= length:
            out = bytes(self._data[:length])
            del self._data[:length]
            return out
        # Mixed or timing-only stream: drop any partial payload bytes.
        drop = min(len(self._data), length)
        del self._data[:drop]
        if self.available == 0 and not self._data:
            self._all_real = True  # stream boundary: reset for next run
        return None


class _CompletionMixin:
    """Shared completion bookkeeping: CQ entry + optional writeback."""

    def _complete(
        self,
        vfpga: VFpga,
        packet: Packet,
        write: bool,
    ) -> Generator:
        desc = packet.descriptor
        entry = CompletionEntry(
            vfpga_id=desc.vfpga_id,
            pid=desc.pid,
            wr_id=desc.wr_id,
            length=desc.length,
            stream=desc.stream,
            dest=desc.dest,
            timestamp_ns=self.env.now,
        )
        queue = vfpga.cq_wr if write else vfpga.cq_rd
        yield queue.put(entry)
        if self.config.writeback:
            direction = "wr" if write else "rd"
            yield from self.xdma.writeback(f"v{desc.vfpga_id}-{desc.stream.value}-{direction}")


class HostDataMover(_CompletionMixin, _RegionResetMixin):
    """Fair, credited host-memory datapath over the XDMA streaming channel."""

    def __init__(
        self,
        env: Environment,
        xdma: Xdma,
        config: MoverConfig = MoverConfig(),
    ):
        self.env = env
        self.xdma = xdma
        self.config = config
        self.packetizer = Packetizer(config.packet_bytes)
        self.rd_arbiter = RoundRobinArbiter(env, "host-rd-arb")
        self.wr_arbiter = RoundRobinArbiter(env, "host-wr-arb")
        #: Optional GPU for peer-to-peer transfers to GPU-resident pages
        #: (set by Driver.attach_gpu).
        self.gpu = None
        self._vfpgas: Dict[int, Tuple[VFpga, Mmu]] = {}
        self._region_ports: Dict[int, Tuple] = {}
        self._region_procs: Dict[int, List] = {}
        self._region_queues: Dict[int, List[Store]] = {}
        # Translate/DMA pipeline stages.
        self._rd_staged: Store = Store(env, capacity=4)
        self._wr_staged: Store = Store(env, capacity=4)
        env.process(self._rd_translate(), name="host-rd-xlat")
        env.process(self._rd_dma(), name="host-rd-dma")
        env.process(self._wr_translate(), name="host-wr-xlat")
        env.process(self._wr_dma(), name="host-wr-dma")
        self.bytes_read = 0
        self.bytes_written = 0

    def register(self, vfpga: VFpga, mmu: Mmu) -> None:
        if vfpga.vfpga_id in self._vfpgas:
            raise ValueError(f"vFPGA {vfpga.vfpga_id} already registered")
        self._vfpgas[vfpga.vfpga_id] = (vfpga, mmu)
        self._region_ports[vfpga.vfpga_id] = (
            self.rd_arbiter.add_port(),
            self.wr_arbiter.add_port(),
        )
        self._spawn_region(vfpga)

    def _spawn_region(self, vfpga: VFpga) -> None:
        """(Re)create the region's dispatch/request units and queues.

        Called at registration and again by :meth:`restart_region` after
        a hot-reset; the arbiter ports persist (the fabric is shared),
        everything tenant-side is rebuilt empty.
        """
        rd_port, wr_port = self._region_ports[vfpga.vfpga_id]
        # Per-stream request engines: one worker per parallel host stream
        # in each direction, so one thread's slow message never blocks
        # another thread's (this is what makes cThreads independent).
        vfpga._host_rd_dispatch = Store(self.env)
        vfpga._host_wr_dispatch = Store(self.env)
        rd_queues = [Store(self.env) for _ in vfpga.host_in]
        wr_queues = [Store(self.env) for _ in vfpga.host_out]
        procs = [
            self.env.process(
                self._by_dest(vfpga._host_rd_dispatch, rd_queues),
                name=f"v{vfpga.vfpga_id}-host-rd-disp",
            ),
            self.env.process(
                self._by_dest(vfpga._host_wr_dispatch, wr_queues),
                name=f"v{vfpga.vfpga_id}-host-wr-disp",
            ),
        ]
        for dest, queue in enumerate(rd_queues):
            procs.append(self.env.process(
                self._rd_request_unit(vfpga, queue, rd_port),
                name=f"v{vfpga.vfpga_id}-host-rd-req{dest}",
            ))
        for dest, queue in enumerate(wr_queues):
            procs.append(self.env.process(
                self._wr_request_unit(vfpga, dest, queue, wr_port),
                name=f"v{vfpga.vfpga_id}-host-wr-req{dest}",
            ))
        self._region_procs[vfpga.vfpga_id] = procs
        self._region_queues[vfpga.vfpga_id] = [
            vfpga._host_rd_dispatch, vfpga._host_wr_dispatch,
            *rd_queues, *wr_queues,
        ]

    # ---------------------------------------------------- per-vFPGA units

    @staticmethod
    def _by_dest(source: Store, queues) -> Generator:
        while True:
            desc = yield source.get()
            if desc.dest >= len(queues):
                raise ValueError(
                    f"descriptor targets host stream {desc.dest}, "
                    f"but only {len(queues)} exist"
                )
            yield queues[desc.dest].put(desc)

    def _rd_request_unit(self, vfpga: VFpga, queue: Store, port) -> Generator:
        """Packetize + credit host-read descriptors, then interleave."""
        while True:
            desc = yield queue.get()
            for packet in self.packetizer.split(desc):
                # repro: allow[RES001] split-phase: VFpga.recv releases this credit when the deposited flit is consumed
                yield from vfpga.rd_credits[StreamType.HOST].acquire()
                yield from port.put(packet)

    def _wr_request_unit(self, vfpga: VFpga, dest: int, queue: Store, port) -> Generator:
        """Pull data from the vFPGA *before* propagating write packets.

        The kernel's output flits need not align with packet boundaries
        (e.g. the NN kernel emits one small flit per input chunk), so the
        unit reassembles the byte stream into packet-sized writes.
        """
        staged = _FlitAssembler()
        while True:
            desc = yield queue.get()
            for packet in self.packetizer.split(desc):
                # repro: allow[RES001] split-phase: _wr_dma releases this credit when the packet's host write lands
                yield from vfpga.wr_credits[StreamType.HOST].acquire()
                while staged.available < packet.length:
                    flit = yield from vfpga.host_out[dest].recv()
                    staged.push(flit)
                data = staged.take(packet.length)
                yield from port.put((packet, Flit(length=packet.length, data=data, tid=dest)))

    # ------------------------------------------------------ shared movers

    def _rd_translate(self) -> Generator:
        while True:
            packet = yield from self.rd_arbiter.get()
            vfpga, mmu = self._vfpgas[packet.vfpga_id]
            pid = packet.descriptor.pid
            # Location-aware translation: GPU-resident pages are served
            # peer-to-peer; card-resident pages migrate to host first
            # (GPU-style fault), host pages go straight to the DMA.
            # Inlined (no throwaway Process per packet): the translate
            # generator runs inside this pipeline stage; its try/finally
            # still releases the walk grant if a reset interrupts it.
            location, paddr = yield from mmu.translate_any(pid, packet.vaddr)
            if location is MemLocation.CARD or (
                location is MemLocation.GPU and self.gpu is None
            ):
                paddr = yield from mmu.translate(
                    pid, packet.vaddr, MemLocation.HOST
                )
                location = MemLocation.HOST
            yield self._rd_staged.put((packet, location, paddr))

    def _rd_dma(self) -> Generator:
        while True:
            packet, location, paddr = yield self._rd_staged.get()
            vfpga, _mmu = self._vfpgas[packet.vfpga_id]
            if location is MemLocation.GPU:
                data = yield from self.gpu.read(paddr, packet.length)
            else:
                data = yield from self.xdma.read_host(
                    paddr, packet.length, overhead=False
                )
            self.bytes_read += packet.length
            flit = Flit(
                length=packet.length,
                data=data if self.config.carry_data else None,
                tid=packet.dest,
                last=packet.last,
            )
            # Credits guarantee FIFO space, so the deposit happens on the
            # (parallel) crossbar without holding up the DMA engine; per-
            # stream ordering is preserved by the stream's bus FIFO.
            self.env.process(self._deposit(vfpga, packet, flit))

    def _deposit(self, vfpga: VFpga, packet: Packet, flit: Flit) -> Generator:
        yield from vfpga.host_in[packet.dest].send(flit)
        if packet.last:
            yield from self._complete(vfpga, packet, write=False)

    def _wr_translate(self) -> Generator:
        while True:
            packet, flit = yield from self.wr_arbiter.get()
            _vfpga, mmu = self._vfpgas[packet.vfpga_id]
            pid = packet.descriptor.pid
            location, paddr = yield from mmu.translate_any(
                pid, packet.vaddr, writable=True
            )
            if location is MemLocation.CARD or (
                location is MemLocation.GPU and self.gpu is None
            ):
                paddr = yield from mmu.translate(
                    pid, packet.vaddr, MemLocation.HOST, writable=True
                )
                location = MemLocation.HOST
            yield self._wr_staged.put((packet, flit, location, paddr))

    def _wr_dma(self) -> Generator:
        while True:
            packet, flit, location, paddr = yield self._wr_staged.get()
            vfpga, _mmu = self._vfpgas[packet.vfpga_id]
            data = flit.data if flit.data is not None else bytes(flit.length)
            if not self.config.carry_data:
                data = bytes(min(flit.length, packet.length))
            if location is MemLocation.GPU:
                yield from self.gpu.write(paddr, data)
            else:
                yield from self.xdma.write_host(paddr, data, overhead=False)
            self.bytes_written += packet.length
            vfpga.wr_credits[StreamType.HOST].release()
            if packet.last:
                yield from self._complete(vfpga, packet, write=True)


class CardDataMover(_CompletionMixin, _RegionResetMixin):
    """Dedicated (uninterleaved) per-stream HBM datapaths (paper §6.3)."""

    def __init__(
        self,
        env: Environment,
        xdma: Xdma,
        hbm: HbmController,
        config: MoverConfig = MoverConfig(),
    ):
        self.env = env
        self.xdma = xdma  # only for writeback
        self.hbm = hbm
        self.config = config
        self.packetizer = Packetizer(config.packet_bytes)
        self._vfpgas: Dict[int, Tuple[VFpga, Mmu]] = {}
        self._region_procs: Dict[int, List] = {}
        self._region_queues: Dict[int, List[Store]] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    def register(self, vfpga: VFpga, mmu: Mmu) -> None:
        if vfpga.vfpga_id in self._vfpgas:
            raise ValueError(f"vFPGA {vfpga.vfpga_id} already registered")
        self._vfpgas[vfpga.vfpga_id] = (vfpga, mmu)
        self._spawn_region(vfpga)

    def _spawn_region(self, vfpga: VFpga) -> None:
        _vfpga, mmu = self._vfpgas[vfpga.vfpga_id]
        # One read and one write worker per parallel card stream: this is
        # the parallelism that scales throughput with HBM channels.
        rd_queues = [Store(self.env) for _ in vfpga.card_in]
        wr_queues = [Store(self.env) for _ in vfpga.card_out]
        vfpga._card_rd_dispatch = Store(self.env)
        vfpga._card_wr_dispatch = Store(self.env)
        procs = [
            self.env.process(
                self._dispatch(vfpga._card_rd_dispatch, rd_queues),
                name=f"v{vfpga.vfpga_id}-card-rd-disp",
            ),
            self.env.process(
                self._dispatch(vfpga._card_wr_dispatch, wr_queues),
                name=f"v{vfpga.vfpga_id}-card-wr-disp",
            ),
        ]
        for dest, queue in enumerate(rd_queues):
            procs.append(self.env.process(
                self._rd_worker(vfpga, mmu, queue),
                name=f"v{vfpga.vfpga_id}-card-rd{dest}",
            ))
        for dest, queue in enumerate(wr_queues):
            procs.append(self.env.process(
                self._wr_worker(vfpga, mmu, queue),
                name=f"v{vfpga.vfpga_id}-card-wr{dest}",
            ))
        self._region_procs[vfpga.vfpga_id] = procs
        self._region_queues[vfpga.vfpga_id] = [
            vfpga._card_rd_dispatch, vfpga._card_wr_dispatch,
            *rd_queues, *wr_queues,
        ]

    def _dispatch(self, source: Store, queues) -> Generator:
        while True:
            desc = yield source.get()
            if desc.dest >= len(queues):
                raise ValueError(
                    f"descriptor targets card stream {desc.dest}, "
                    f"but only {len(queues)} exist"
                )
            yield queues[desc.dest].put(desc)

    def _rd_worker(self, vfpga: VFpga, mmu: Mmu, queue: Store) -> Generator:
        while True:
            desc = yield queue.get()
            for packet in self.packetizer.split(desc):
                # repro: allow[RES001] split-phase: VFpga.recv releases this credit when the deposited flit is consumed
                yield from vfpga.rd_credits[StreamType.CARD].acquire()
                # Inlined per-packet ops: no throwaway Process events on
                # the HBM hot path; grant try/finally survives interrupts.
                paddr = yield from mmu.translate(
                    desc.pid, packet.vaddr, MemLocation.CARD
                )
                data = yield from self.hbm.read(paddr, packet.length)
                self.bytes_read += packet.length
                flit = Flit(
                    length=packet.length,
                    data=data if self.config.carry_data else None,
                    tid=packet.dest,
                    last=packet.last,
                )
                yield from vfpga.card_in[packet.dest].send(flit)
                if packet.last:
                    yield from self._complete(vfpga, packet, write=False)

    def _wr_worker(self, vfpga: VFpga, mmu: Mmu, queue: Store) -> Generator:
        staged = _FlitAssembler()
        guard = vfpga.wr_credits[StreamType.CARD].guard()
        while True:
            desc = yield queue.get()
            for packet in self.packetizer.split(desc):
                yield from guard.acquire()
                try:
                    while staged.available < packet.length:
                        flit = yield from vfpga.card_out[desc.dest].recv()
                        staged.push(flit)
                    payload = staged.take(packet.length)
                    paddr = yield from mmu.translate(
                        desc.pid, packet.vaddr, MemLocation.CARD, writable=True
                    )
                    data = payload if payload is not None else bytes(packet.length)
                    yield from self.hbm.write(paddr, data)
                    self.bytes_written += packet.length
                finally:
                    # Give the credit back even when a fault or a region
                    # quiesce interrupts the move mid-packet — the leak
                    # class app.wedge_credit chaos probes dynamically.
                    guard.release()
                if packet.last:
                    yield from self._complete(vfpga, packet, write=True)
