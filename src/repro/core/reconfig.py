"""Partial reconfiguration: ICAP controller and the baselines of Table 2.

Coyote v2 drives the Internal Configuration Access Port through an
optimised AXI4-Stream controller fed from host memory over a dedicated
XDMA channel, sustaining the full ~800 MB/s the ICAP offers on
UltraScale+ parts.  The standard alternatives are an order of magnitude
slower because they issue single-word writes:

===============  ==========  ============
controller       throughput  interface
===============  ==========  ============
AXI HWICAP       19 MB/s     AXI4-Lite
PCAP             128 MB/s    AXI
MCAP             145 MB/s    AXI
Coyote v2 ICAP   800 MB/s    AXI4-Stream
===============  ==========  ============

The reconfiguration *latency* experiment (Table 3) additionally charges
reading the bitstream from disk and copying it into kernel space (the
"total" column), and compares against a full device reprogramming through
Vivado Hardware Manager including PCIe hot-plug and driver re-insertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..faults.plan import ICAP_CRC
from ..pcie.xdma import MsiVector, Xdma
from ..sim.engine import Environment
from ..sim.resources import Resource
from .bitstream import Bitstream, BitstreamKind

__all__ = [
    "IcapController",
    "ReconfigPort",
    "AXI_HWICAP",
    "PCAP",
    "MCAP",
    "COYOTE_ICAP",
    "VivadoHwManager",
    "ReconfigError",
    "IcapCrcError",
]


class ReconfigError(Exception):
    """Invalid reconfiguration request (e.g. app linked to another shell)."""


class IcapCrcError(ReconfigError):
    """The ICAP rejected a partial bitstream: per-frame CRC mismatch.

    The fabric region is left in an undefined state; the shell must roll
    back to the last-good bitstream before the vFPGA can be used again.
    """


@dataclass(frozen=True)
class ReconfigPort:
    """A configuration port's performance envelope."""

    name: str
    throughput_mbps: float  # MB/s of bitstream data
    interface: str

    @property
    def bytes_per_ns(self) -> float:
        return self.throughput_mbps / 1000.0

    def program_time_ns(self, size_bytes: int) -> float:
        return size_bytes / self.bytes_per_ns


#: Table 2's rows.
AXI_HWICAP = ReconfigPort("AXI HWICAP", 19.0, "AXI Lite")
PCAP = ReconfigPort("PCAP", 128.0, "AXI")
MCAP = ReconfigPort("MCAP", 145.0, "AXI")
COYOTE_ICAP = ReconfigPort("Coyote v2 ICAP", 800.0, "AXI Stream")

#: Host-side costs for the "total" latency column (calibrated to Table 3:
#: total - kernel ~= 11.7 ms per MB of bitstream).
DISK_READ_MBPS = 120.0
KERNEL_COPY_MBPS = 300.0


class IcapController:
    """The centralised reconfiguration block in the static layer (§5.3)."""

    #: Warm replays stream from the on-card cache as a compressed delta:
    #: only this fraction of the bitstream crosses the ICAP again.
    CACHE_REPLAY_FRACTION = 0.1
    #: Per-region cache capacity, in distinct bitstreams (FIFO eviction).
    CACHE_ENTRIES_PER_REGION = 8

    def __init__(
        self,
        env: Environment,
        xdma: Optional[Xdma] = None,
        port: ReconfigPort = COYOTE_ICAP,
        region_cache_enabled: bool = True,
    ):
        self.env = env
        self.xdma = xdma
        self.port = port
        self._icap = Resource(env, capacity=1)  # one configuration port
        self.programs = 0
        self.bytes_programmed = 0
        #: Armed :class:`repro.faults.FaultInjector`, or ``None``.
        self.faults = None
        self.crc_failures = 0
        #: Bitstream cache (daemon mode, paper §9.6): recently programmed
        #: bitstreams stay resident near the ICAP, keyed by checksum per
        #: target region, so repeated A↔B churn pays the host staging and
        #: the full ICAP stream only on the first encounter of each.
        self.region_cache_enabled = region_cache_enabled
        self._region_cache: dict = {}  # region -> {checksum: True}
        self.cache_hits = 0
        self.cache_misses = 0

    def is_cached(self, bitstream: Bitstream) -> bool:
        """Is this exact artifact resident in its region's cache?  The
        driver consults this to skip disk read + copy_to_kernel."""
        if not self.region_cache_enabled:
            return False
        entries = self._region_cache.get(bitstream.target_region)
        return bool(entries) and bitstream.checksum in entries

    def _cache_insert(self, bitstream: Bitstream) -> None:
        if not self.region_cache_enabled:
            return
        entries = self._region_cache.setdefault(bitstream.target_region, {})
        if bitstream.checksum in entries:
            return
        while len(entries) >= self.CACHE_ENTRIES_PER_REGION:
            del entries[next(iter(entries))]  # FIFO: dicts keep insert order
        entries[bitstream.checksum] = True

    def _cache_invalidate(self, bitstream: Bitstream) -> None:
        entries = self._region_cache.get(bitstream.target_region)
        if entries:
            entries.pop(bitstream.checksum, None)

    def program(self, bitstream: Bitstream, from_host: bool = True) -> Generator:
        """Stream a partial bitstream into the fabric.

        With ``from_host`` the data is pulled from host memory over the
        utility XDMA channel concurrently with ICAP writes; the ICAP is
        the bottleneck (PCIe is ~15x faster), so only its time is charged
        on top of a one-descriptor pipeline fill.

        A cache hit (this exact artifact recently programmed into the same
        region) replays from on-card memory instead: no host pipeline
        fill, and only :data:`CACHE_REPLAY_FRACTION` of the bits cross the
        ICAP again.
        """
        warm = self.is_cached(bitstream)
        grant = self._icap.request()
        yield grant
        try:
            if warm:
                self.cache_hits += 1
                stream_bytes = max(4096, int(bitstream.size_bytes * self.CACHE_REPLAY_FRACTION))
            else:
                if self.region_cache_enabled:
                    self.cache_misses += 1
                stream_bytes = bitstream.size_bytes
                if from_host and self.xdma is not None:
                    # Pipeline fill: first 4 KB must arrive before ICAP starts.
                    yield self.env.process(self.xdma.read_host(0, 4096, overhead=True))
            yield self.env.timeout(self.port.program_time_ns(stream_bytes))
            if self.faults is not None and self.faults.fires(ICAP_CRC, bitstream):
                # Frame CRC mismatch detected while streaming: the region
                # is now undefined.  No RECONFIG_DONE interrupt fires, and
                # the cached copy is no longer trusted.
                self.crc_failures += 1
                self._cache_invalidate(bitstream)
                raise IcapCrcError(
                    f"CRC mismatch programming {bitstream.kind} bitstream for "
                    f"{bitstream.target_region!r} ({bitstream.size_bytes} bytes)"
                )
        finally:
            self._icap.release(grant)
        self.programs += 1
        self.bytes_programmed += stream_bytes
        self._cache_insert(bitstream)
        if self.xdma is not None:
            yield self.env.process(
                self.xdma.raise_msix(MsiVector.RECONFIG_DONE, value=self.programs)
            )

    def kernel_latency_ns(self, bitstream: Bitstream) -> float:
        """Pure reconfiguration time (Table 3's "Coyote kernel latency")."""
        return self.port.program_time_ns(bitstream.size_bytes)

    @staticmethod
    def host_overhead_ns(bitstream: Bitstream) -> float:
        """Disk read + copy_to_kernel for the "Coyote total latency"."""
        mb = bitstream.size_bytes / 1e6
        return (mb / DISK_READ_MBPS + mb / KERNEL_COPY_MBPS) * 1e9


class VivadoHwManager:
    """Full-device reprogramming baseline (Table 3's "Vivado flow").

    Programs the complete bitstream over JTAG, then performs a PCIe
    hot-plug rescan and reloads the device driver — the FPGA is offline
    throughout.
    """

    JTAG_MBPS = 1.6
    PCIE_HOTPLUG_NS = 3.2e9
    DRIVER_RELOAD_NS = 1.9e9

    def __init__(self, env: Environment):
        self.env = env
        self.programs = 0

    def program_time_ns(self, full_bitstream: Bitstream) -> float:
        if full_bitstream.kind != BitstreamKind.FULL:
            raise ReconfigError("Vivado flow programs full-device bitstreams")
        jtag = full_bitstream.size_bytes / (self.JTAG_MBPS / 1000.0)
        return jtag + self.PCIE_HOTPLUG_NS + self.DRIVER_RELOAD_NS

    def program(self, full_bitstream: Bitstream) -> Generator:
        yield self.env.timeout(self.program_time_ns(full_bitstream))
        self.programs += 1
