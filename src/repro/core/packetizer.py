"""Packetization of arbitrary-size requests (paper §6.3).

"Packetization divides transfers into manageable 4 KB chunks (default, but
configurable), which enables precise control over outstanding transactions
while ensuring efficient saturation of both local and remote links.  The
shell seamlessly splits requests of arbitrary sizes into packets,
requiring no user application involvement."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .interfaces import Descriptor

__all__ = ["Packet", "Packetizer", "DEFAULT_PACKET_BYTES"]

DEFAULT_PACKET_BYTES = 4096


@dataclass
class Packet:
    """A packet-sized slice of a descriptor."""

    descriptor: Descriptor
    vaddr: int
    length: int
    last: bool  # last packet of the parent descriptor

    @property
    def vfpga_id(self) -> int:
        return self.descriptor.vfpga_id

    @property
    def dest(self) -> int:
        return self.descriptor.dest


class Packetizer:
    """Splits descriptors into fixed-size packets."""

    def __init__(self, packet_bytes: int = DEFAULT_PACKET_BYTES):
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.packet_bytes = packet_bytes

    def split(self, descriptor: Descriptor) -> Iterator[Packet]:
        if 0 < descriptor.length <= self.packet_bytes:
            # Single-packet fast path: most control-plane transfers fit in
            # one packet, so skip the offset loop entirely.
            yield Packet(
                descriptor=descriptor,
                vaddr=descriptor.vaddr,
                length=descriptor.length,
                last=True,
            )
            return
        offset = 0
        while offset < descriptor.length:
            take = min(self.packet_bytes, descriptor.length - offset)
            offset += take
            yield Packet(
                descriptor=descriptor,
                vaddr=descriptor.vaddr + offset - take,
                length=take,
                last=offset >= descriptor.length,
            )

    def count(self, length: int) -> int:
        """Number of packets a request of ``length`` bytes produces."""
        return -(-length // self.packet_bytes)

    def split_all(self, descriptor: Descriptor) -> List[Packet]:
        return list(self.split(descriptor))
