"""Coyote v2 reproduction: a simulated data-center FPGA shell.

A discrete-event, functionally-faithful reproduction of *Coyote v2:
Raising the Level of Abstraction for Data Center FPGAs* (SOSP 2025):
three-layer shell architecture, shared virtual memory, RoCE v2 RDMA,
run-time partial reconfiguration, multi-tenant fair sharing and hardware
multi-threading -- all running on a pure-Python simulation substrate.

Quick start::

    from repro import Environment, Shell, ShellConfig, Driver, CThread

    env = Environment()
    shell = Shell(env, ShellConfig())
    driver = Driver(env, shell)
    # ... load an app, create a CThread, invoke kernels; see examples/.
"""

from .api import AppScheduler, CRcnfg, CThread
from .cluster import FpgaCluster, FpgaNode
from .core import (
    Bitstream,
    BitstreamKind,
    Descriptor,
    LocalSg,
    Oper,
    RdmaSg,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
    StreamType,
    UserApp,
    VFpga,
    VFpgaConfig,
)
from .driver import Driver
from .faults import FaultInjector, FaultPlan, FaultRule, RetryPolicy
from .health import (
    AdmissionError,
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    HealthReport,
    QuarantinedError,
    RecoveredError,
)
from .mem import AllocType, MemLocation, TlbConfig
from .sim import Environment
from .telemetry import (
    MetricsRegistry,
    SimProfiler,
    SpanRecorder,
    collect_card_metrics,
    collect_cluster_metrics,
)

__version__ = "2.0.0"

__all__ = [
    "Environment",
    "Shell",
    "ShellConfig",
    "ServiceConfig",
    "VFpga",
    "VFpgaConfig",
    "UserApp",
    "Driver",
    "CThread",
    "CRcnfg",
    "AppScheduler",
    "FpgaCluster",
    "FpgaNode",
    "Oper",
    "SgEntry",
    "LocalSg",
    "RdmaSg",
    "Descriptor",
    "StreamType",
    "AllocType",
    "MemLocation",
    "TlbConfig",
    "Bitstream",
    "BitstreamKind",
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "RetryPolicy",
    "HealthMonitor",
    "HealthConfig",
    "HealthReport",
    "RecoveredError",
    "QuarantinedError",
    "DecoupledError",
    "AdmissionError",
    "MetricsRegistry",
    "SimProfiler",
    "SpanRecorder",
    "collect_card_metrics",
    "collect_cluster_metrics",
    "__version__",
]
