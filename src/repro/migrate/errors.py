"""Typed errors for the checkpoint/restore and live-migration layer.

The one load-bearing subtlety is :class:`MigratedError`: it subclasses
:class:`repro.health.errors.RecoveredError`, so when the migrator
quiesces a scheduler the interrupted in-flight request is *parked* (the
replay-or-reject policy applies on the destination) rather than treated
as an application failure — exactly the path region recovery already
exercises.
"""

from __future__ import annotations

from ..health.errors import RecoveredError

__all__ = [
    "MigrateError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointUnsupportedError",
    "TransferAbortedError",
    "MigratedError",
]


class MigrateError(Exception):
    """Base class for checkpoint / migration failures."""


class CheckpointError(MigrateError):
    """A checkpoint could not be captured, encoded or decoded."""


class CheckpointCorruptError(CheckpointError):
    """Checkpoint bytes failed the magic or sha256 integrity check."""


class CheckpointVersionError(CheckpointError):
    """Checkpoint was written by an incompatible format version."""

    def __init__(self, found: int, expected: int):
        self.found = found
        self.expected = expected
        super().__init__(
            f"checkpoint version {found} not restorable by version {expected}"
        )


class CheckpointUnsupportedError(CheckpointError):
    """Tenant state that the checkpoint format cannot carry (e.g. pages
    resident in GPU memory, which the shell cannot read back)."""


class TransferAbortedError(MigrateError):
    """Checkpoint transfer gave up after exhausting chunk retries.

    The migrator's contract is that this error never strands the tenant:
    the source region is resumed (fallback-to-source) before the error
    propagates to the caller.
    """

    def __init__(self, src: int, dst: int, tag: str, reason: str):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.reason = reason
        super().__init__(
            f"transfer {tag!r} node {src} -> node {dst} aborted: {reason}"
        )


class MigratedError(RecoveredError, MigrateError):
    """Quiesce cause used while a tenant is being migrated.

    Subclassing :class:`RecoveredError` routes the interrupted request
    into the scheduler's parked-request slot, so the idempotent-replay
    policy runs on whichever node the queue lands on.
    """
