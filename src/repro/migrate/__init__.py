"""Checkpoint/restore and live migration of vFPGA tenants.

``repro.migrate`` raises the cluster abstraction one level: tenants are
no longer pinned to the card that admitted them.  A quiesced tenant's
driver and shell state serialises into a versioned, checksummed
:class:`VfpgaCheckpoint`; a :class:`LiveMigrator` ships checkpoints
between nodes over RDMA with pre-copy double-buffering and a short
stop-and-copy window; and :meth:`repro.cluster.FpgaCluster.drain_node` /
:meth:`~repro.cluster.FpgaCluster.rolling_upgrade` build node
maintenance on top — all under live traffic, with fallback-to-source on
any transfer failure.
"""

from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    VfpgaCheckpoint,
    memory_image,
    restore_tenant,
    snapshot_tenant,
)
from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointUnsupportedError,
    CheckpointVersionError,
    MigratedError,
    MigrateError,
    TransferAbortedError,
)
from .migrator import LiveMigrator, MigrateConfig, MigrationRecord
from .transfer import DEFAULT_CHUNK_BYTES, MIGRATION_QPN_BASE, MigrationChannel

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "VfpgaCheckpoint",
    "memory_image",
    "snapshot_tenant",
    "restore_tenant",
    "MigrateError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointUnsupportedError",
    "TransferAbortedError",
    "MigratedError",
    "MigrateConfig",
    "MigrationRecord",
    "LiveMigrator",
    "MigrationChannel",
    "MIGRATION_QPN_BASE",
    "DEFAULT_CHUNK_BYTES",
]
