"""vFPGA tenant checkpoint: capture, versioned encoding, restore.

A :class:`VfpgaCheckpoint` is everything the driver and shell hold on
behalf of one cThread, captured while its region is quiesced: CSR words,
credit-counter occupancy (an audit field: the migrator's drain window
lets credits reach zero before capture), the
command ring's head/tail CSRs plus every undrained descriptor, the MTT
(MR table), the in-flight WR ids that were flushed with typed errors,
the virtual allocations, and a byte image of every mapped page.

The wire encoding is deliberately boring: a deterministic JSON body
(sorted keys, no whitespace) behind a fixed header of magic, a 2-byte
big-endian format version and the body's sha256.  Restores reject a bad
checksum (:class:`CheckpointCorruptError`) or an unknown version
(:class:`CheckpointVersionError`) before touching any destination state,
and determinism of the encoding is what lets the double-run tests assert
checkpoint equality by hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..core.interfaces import StreamType
from ..driver.ringbuf import RingOp, RingOpcode
from ..mem.allocator import AllocType
from ..mem.tlb import MemLocation
from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointUnsupportedError,
    CheckpointVersionError,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "VfpgaCheckpoint",
    "memory_image",
    "snapshot_tenant",
    "restore_tenant",
]

CHECKPOINT_MAGIC = b"VFCK"
CHECKPOINT_VERSION = 1

#: Posted-MMIO cost of replaying one CSR word during restore.
RESTORE_CSR_WRITE_NS = 120.0


def _serialize_op(op: RingOp) -> Dict:
    return {
        "opcode": op.opcode.value,
        "mr_key": op.mr_key,
        "offset": op.offset,
        "length": op.length,
        "stream": op.stream.value,
        "dest": op.dest,
        "dst_mr_key": op.dst_mr_key,
        "dst_offset": op.dst_offset,
        "dst_length": op.dst_length,
        "dst_stream": op.dst_stream.value,
        "dst_dest": op.dst_dest,
    }


def _deserialize_op(data: Dict) -> RingOp:
    return RingOp(
        opcode=RingOpcode(data["opcode"]),
        mr_key=data["mr_key"],
        offset=data["offset"],
        length=data["length"],
        stream=StreamType(data["stream"]),
        dest=data["dest"],
        dst_mr_key=data["dst_mr_key"],
        dst_offset=data["dst_offset"],
        dst_length=data["dst_length"],
        dst_stream=StreamType(data["dst_stream"]),
        dst_dest=data["dst_dest"],
    )


@dataclass
class VfpgaCheckpoint:
    """One tenant's complete, restorable state."""

    pid: int
    vfpga_id: int
    src_node: int
    #: Kernel name the source scheduler had loaded (``None`` for raw
    #: cThreads driven without a scheduler).
    kernel: Optional[str]
    #: Stored CSR words, ``{index: value}``.
    csrs: Dict[int, int] = field(default_factory=dict)
    #: Credit occupancy at capture, ``{stream: {"rd": n, "wr": n}}``.
    credits: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: ``None`` when rings were never armed, else the ring geometry and
    #: every undrained descriptor.
    ring_slots: Optional[int] = None
    ring_head: int = 0
    ring_tail: int = 0
    ring_ops: List[Dict] = field(default_factory=list)
    #: MTT entries, key-sorted.
    mrs: List[Dict] = field(default_factory=list)
    #: Page vaddrs pinned in the TLB on behalf of the MRs (audit field).
    pinned_pages: List[int] = field(default_factory=list)
    #: ``[write, wr_id]`` keys that were in flight at quiesce; these were
    #: flushed with typed errors on the source and are recorded so the
    #: destination report can show what the pause interrupted.
    inflight_wrs: List[List[int]] = field(default_factory=list)
    #: Virtual allocations, vaddr-sorted.
    allocations: List[Dict] = field(default_factory=list)
    #: Page image, ``{str(page_vaddr): hex bytes}``.
    memory: Dict[str, str] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------ encode

    def payload(self) -> Dict:
        return {
            "version": self.version,
            "pid": self.pid,
            "vfpga_id": self.vfpga_id,
            "src_node": self.src_node,
            "kernel": self.kernel,
            "csrs": {str(index): value for index, value in sorted(self.csrs.items())},
            "credits": self.credits,
            "ring_slots": self.ring_slots,
            "ring_head": self.ring_head,
            "ring_tail": self.ring_tail,
            "ring_ops": self.ring_ops,
            "mrs": self.mrs,
            "pinned_pages": sorted(self.pinned_pages),
            "inflight_wrs": sorted(self.inflight_wrs),
            "allocations": self.allocations,
            "memory": self.memory,
        }

    def to_bytes(self) -> bytes:
        body = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        ).encode()
        digest = hashlib.sha256(body).digest()
        return (
            CHECKPOINT_MAGIC
            + self.version.to_bytes(2, "big")
            + digest
            + body
        )

    def sha256(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()

    # ------------------------------------------------------------ decode

    @classmethod
    def from_payload(cls, payload: Dict) -> "VfpgaCheckpoint":
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(version, CHECKPOINT_VERSION)
        return cls(
            pid=payload["pid"],
            vfpga_id=payload["vfpga_id"],
            src_node=payload["src_node"],
            kernel=payload["kernel"],
            csrs={int(index): value for index, value in payload["csrs"].items()},
            credits=payload["credits"],
            ring_slots=payload["ring_slots"],
            ring_head=payload["ring_head"],
            ring_tail=payload["ring_tail"],
            ring_ops=payload["ring_ops"],
            mrs=payload["mrs"],
            pinned_pages=payload["pinned_pages"],
            inflight_wrs=payload["inflight_wrs"],
            allocations=payload["allocations"],
            memory=payload["memory"],
            version=version,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "VfpgaCheckpoint":
        header = len(CHECKPOINT_MAGIC) + 2 + 32
        if len(data) < header or data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
            raise CheckpointCorruptError("not a vFPGA checkpoint (bad magic)")
        version = int.from_bytes(data[4:6], "big")
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(version, CHECKPOINT_VERSION)
        digest, body = data[6:header], data[header:]
        if hashlib.sha256(body).digest() != digest:
            raise CheckpointCorruptError("checkpoint sha256 mismatch")
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(f"checkpoint body undecodable: {exc}")
        return cls.from_payload(payload)


# ----------------------------------------------------------------- capture


def memory_image(driver, pid: int) -> Dict[str, str]:
    """Byte image of every mapped page, ``{str(page_vaddr): hex}``.

    Card-resident pages are read back through the HBM controller;
    GPU-resident pages cannot be read back by the shell and raise
    :class:`CheckpointUnsupportedError`.
    """
    ctx = driver._ctx(pid)
    page = ctx.page_table.page_size
    host_mem = driver.shell.static.xdma.host_mem
    hbm = driver.shell.dynamic.hbm
    image: Dict[str, str] = {}
    for alloc in sorted(ctx.allocations, key=lambda a: a.vaddr):
        for page_no in range(alloc.num_pages):
            vaddr = alloc.vaddr + page_no * page
            entry = ctx.page_table.walk(vaddr)
            if entry.location is MemLocation.GPU:
                raise CheckpointUnsupportedError(
                    f"pid {pid}: page {vaddr:#x} is GPU-resident; "
                    "sync it to host before checkpointing"
                )
            if entry.location is MemLocation.CARD:
                data = hbm.read_now(entry.card_paddr, page)
            else:
                data = host_mem.read(entry.host_paddr, page)
            image[str(vaddr)] = data.hex()
    return image


def snapshot_tenant(
    driver,
    pid: int,
    src_node: int = -1,
    kernel: Optional[str] = None,
    memory: Optional[Dict[str, str]] = None,
) -> VfpgaCheckpoint:
    """Capture a quiesced tenant into a :class:`VfpgaCheckpoint`.

    Pure bookkeeping reads — call it with the region's movers quiesced
    and the drain window elapsed, *before* ``fail_pending`` flushes the
    in-flight WR keys this records.  ``memory`` lets the caller supply a
    pre-computed :func:`memory_image` (the migrator's dirty-page pass).
    """
    ctx = driver._ctx(pid)
    vfpga = driver.shell.vfpgas[ctx.vfpga_id]
    page = ctx.page_table.page_size

    credits = {}
    for stream in sorted(vfpga.rd_credits, key=lambda s: s.value):
        credits[stream.value] = {
            "rd": vfpga.rd_credits[stream].in_flight,
            "wr": vfpga.wr_credits[stream].in_flight,
        }

    ckpt = VfpgaCheckpoint(
        pid=pid,
        vfpga_id=ctx.vfpga_id,
        src_node=src_node,
        kernel=kernel,
        csrs=vfpga.ctrl.snapshot(),
        credits=credits,
        inflight_wrs=sorted([int(write), wr_id] for write, wr_id in ctx.pending),
        memory=memory if memory is not None else memory_image(driver, pid),
    )

    for alloc in sorted(ctx.allocations, key=lambda a: a.vaddr):
        ckpt.allocations.append(
            {
                "vaddr": alloc.vaddr,
                "length": alloc.length,
                "alloc_type": alloc.alloc_type.name,
            }
        )

    pinned = set()
    if ctx.mrs is not None:
        for mr in sorted(ctx.mrs, key=lambda m: m.key):
            ckpt.mrs.append(
                {
                    "key": mr.key,
                    "vaddr": mr.vaddr,
                    "length": mr.length,
                    "writable": mr.writable,
                    "num_pages": mr.num_pages,
                }
            )
            start = mr.vaddr - (mr.vaddr % page)
            while start < mr.end:
                pinned.add(start)
                start += page
    ckpt.pinned_pages = sorted(pinned)

    if ctx.rings is not None:
        ring = ctx.rings.cmd
        ckpt.ring_slots = ring.slots
        ckpt.ring_head = ring.head
        ckpt.ring_tail = ring.tail
        ckpt.ring_ops = [_serialize_op(op) for op, _, _ in ring._slots]
    return ckpt


# ----------------------------------------------------------------- restore


def restore_tenant(driver, ckpt: VfpgaCheckpoint) -> Generator:
    """Rebuild a checkpointed tenant on ``driver`` (a sim process).

    Order matters: allocations come back at their original vaddrs, page
    bytes are copied in, MRs re-pin their TLB entries under their
    original keys, the command ring is re-armed and rebased to the
    checkpointed head before the undrained descriptors are re-posted
    (which advances ``tail`` back to its recorded value), and finally the
    CSR words replay through ``csr_write`` so app write hooks rebuild
    derived state (e.g. an AES key schedule).  Any failure tears the
    half-restored pid back down before re-raising, so fallback-to-source
    never leaves a ghost tenant on the destination.
    """
    ctx = driver.open(ckpt.pid, ckpt.vfpga_id)
    try:
        for alloc in sorted(ckpt.allocations, key=lambda a: a["vaddr"]):
            yield from driver.restore_mem(
                ckpt.pid,
                alloc["vaddr"],
                alloc["length"],
                AllocType[alloc["alloc_type"]],
            )
        for vaddr_str in sorted(ckpt.memory, key=int):
            driver.write_buffer(
                ckpt.pid, int(vaddr_str), bytes.fromhex(ckpt.memory[vaddr_str])
            )
        for mr in sorted(ckpt.mrs, key=lambda m: m["key"]):
            restored = yield from driver.restore_mr(
                ckpt.pid,
                mr["key"],
                mr["vaddr"],
                mr["length"],
                mr["writable"],
            )
            if restored.num_pages != mr["num_pages"]:
                raise CheckpointError(
                    f"MR key {mr['key']}: pinned {restored.num_pages} pages, "
                    f"checkpoint recorded {mr['num_pages']}"
                )
        if ckpt.ring_slots is not None:
            rings = driver.setup_rings(ckpt.pid, ckpt.ring_slots)
            rings.cmd.rebase(ckpt.ring_head)
            for op in ckpt.ring_ops:
                driver.ring_post(ckpt.pid, _deserialize_op(op))
            if rings.cmd.tail != ckpt.ring_tail:
                raise CheckpointError(
                    f"ring re-arm mismatch: tail {rings.cmd.tail} != "
                    f"checkpointed {ckpt.ring_tail}"
                )
        vfpga = driver.shell.vfpgas[ckpt.vfpga_id]
        for index, value in sorted(ckpt.csrs.items()):
            vfpga.csr_write(index, value)
        if ckpt.csrs:
            yield driver.env.timeout(RESTORE_CSR_WRITE_NS * len(ckpt.csrs))
    except BaseException:
        driver.close(ckpt.pid, reason="restore failed")
        raise
    return ctx
