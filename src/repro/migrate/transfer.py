"""Checkpoint transfer over RDMA: chunked SENDs with retry/backoff.

Each ordered (source, destination) node pair gets a dedicated
:class:`MigrationChannel` — a QP pair in a QPN range below the heartbeat
mesh — over which checkpoints move as a JSON header followed by
fixed-size chunks.  Every chunk consults the fabric fault injector for
the ``migrate.transfer_drop`` site; a dropped (or RC-flushed) chunk is
retried with capped exponential backoff, and retry exhaustion raises
:class:`TransferAbortedError` so the migrator can fall back to the
source.  One transfer at a time per channel: the migrator serialises
migrations, and the receive loop reassembles exactly one blob per call.
"""

from __future__ import annotations

import json
from typing import Dict, Generator

from ..faults.plan import MIGRATE_TRANSFER_DROP
from ..faults.retry import RetryPolicy
from ..net.rdma import RdmaError
from .errors import TransferAbortedError

__all__ = ["MIGRATION_QPN_BASE", "DEFAULT_CHUNK_BYTES", "MigrationChannel"]

#: Migration QPNs sit between the collective (0x100+) and heartbeat
#: (0xE000+) ranges.
MIGRATION_QPN_BASE = 0xD000

DEFAULT_CHUNK_BYTES = 8192


class MigrationChannel:
    """A directed checkpoint pipe between two cluster nodes."""

    def __init__(
        self,
        cluster,
        src: int,
        dst: int,
        qpn_base: int = MIGRATION_QPN_BASE,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        retry: RetryPolicy = RetryPolicy(),
        stats: Dict[str, int] = None,
    ):
        if src == dst:
            raise ValueError("migration channel needs two distinct nodes")
        self.cluster = cluster
        self.env = cluster.env
        self.src = src
        self.dst = dst
        self.chunk_bytes = chunk_bytes
        self.retry = retry
        #: Shared counter sink (the migrator's stats dict).
        self.stats = stats if stats is not None else {
            "chunks_sent": 0,
            "chunk_retries": 0,
            "transfer_drops": 0,
            "bytes_sent": 0,
        }
        self.src_stack = cluster.nodes[src].shell.dynamic.rdma
        self.dst_stack = cluster.nodes[dst].shell.dynamic.rdma
        if self.src_stack is None or self.dst_stack is None:
            raise ValueError("migration needs the RDMA service on both nodes")
        size = len(cluster)
        self.qpn_src = qpn_base + src * size + dst
        self.qpn_dst = qpn_base + dst * size + src
        self._connected = False

    def ensure(self) -> None:
        """(Re)connect the QP pair; cheap no-op while it is healthy."""
        src_qp = self.src_stack.qps.get(self.qpn_src)
        dst_qp = self.dst_stack.qps.get(self.qpn_dst)
        if src_qp is None:
            src_qp = self.src_stack.create_qp(self.qpn_src, psn=self.qpn_src)
        if dst_qp is None:
            dst_qp = self.dst_stack.create_qp(self.qpn_dst, psn=self.qpn_dst)
        if not src_qp.connected or not dst_qp.connected:
            self.src_stack.reset_qp(self.qpn_src)
            self.dst_stack.reset_qp(self.qpn_dst)
            src_qp.connect(dst_qp.local)
            dst_qp.connect(src_qp.local)

    # ---------------------------------------------------------- transfer

    def transfer(self, tag: str, data: bytes) -> Generator:
        """Ship ``data`` to the destination; returns the received bytes.

        Runs the receive loop as a child process so send and reassembly
        overlap; a send-side abort defuses the receiver before the error
        propagates.
        """
        if not data:
            raise ValueError("refusing to transfer an empty blob")
        self.ensure()
        recv_proc = self.env.process(
            self._receive(tag), name=f"mig-recv-{self.src}-{self.dst}"
        )
        try:
            yield from self._send_all(tag, data)
        except TransferAbortedError:
            recv_proc.defuse()
            if recv_proc.is_alive:
                recv_proc.interrupt(cause=RdmaError(f"transfer {tag!r} aborted"))
            raise
        received = yield recv_proc
        return received

    def _send_all(self, tag: str, data: bytes) -> Generator:
        chunks = [
            data[start : start + self.chunk_bytes]
            for start in range(0, len(data), self.chunk_bytes)
        ]
        header = json.dumps(
            {"tag": tag, "length": len(data), "chunks": len(chunks)},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        for index, payload in enumerate([header] + chunks):
            yield from self._send_chunk(tag, index, payload)

    def _send_chunk(self, tag: str, index: int, payload: bytes) -> Generator:
        attempt = 0
        reason = "dropped in flight"
        while True:
            injector = getattr(self.cluster.switch, "faults", None)
            dropped = injector is not None and injector.fires(
                MIGRATE_TRANSFER_DROP,
                {
                    "src": self.src,
                    "dst": self.dst,
                    "tag": tag,
                    "chunk": index,
                    "attempt": attempt,
                },
            )
            if dropped:
                self.stats["transfer_drops"] += 1
            else:
                try:
                    yield from self.src_stack.send(
                        self.qpn_src, payload, wr_id=self.qpn_src
                    )
                    self.stats["chunks_sent"] += 1
                    self.stats["bytes_sent"] += len(payload)
                    return
                except RdmaError as exc:
                    reason = str(exc)
            attempt += 1
            if attempt > self.retry.max_retries:
                raise TransferAbortedError(
                    self.src,
                    self.dst,
                    tag,
                    f"chunk {index} failed after {attempt} attempts: {reason}",
                )
            self.stats["chunk_retries"] += 1
            yield from self.retry.sleep(self.env, attempt)

    def _receive(self, tag: str) -> Generator:
        header_raw = yield from self.dst_stack.recv(self.qpn_dst)
        header = json.loads(header_raw.decode())
        parts = []
        for _ in range(header["chunks"]):
            part = yield from self.dst_stack.recv(self.qpn_dst)
            parts.append(part)
        data = b"".join(parts)
        if header["tag"] != tag or len(data) != header["length"]:
            raise TransferAbortedError(
                self.src,
                self.dst,
                tag,
                f"reassembly mismatch: got {len(data)} bytes of "
                f"{header['tag']!r}, expected {header['length']} of {tag!r}",
            )
        return data
