"""Live migration of vFPGA tenants between cluster nodes.

State machine per migration (DESIGN.md "Checkpoint & live migration"):

    RUNNING -> PRECOPY -> QUIESCING -> SNAPSHOT -> TRANSFER -> RESTORE -> RESUME
                  |            |                       |           |
                  +------------+----- fallback to source ----------+

The pre-copy pass ships a first memory image and warms the destination
region (PR through the ICAP bitstream cache) while the tenant is still
running, so the stop-and-copy window pays only for the *dirty* pages and
the control state.  A transfer abort or restore failure resumes the
source region — the replay-or-reject policy re-runs the interrupted
request there — so the tenant is never wedged.  On success the queue is
transplanted to the destination scheduler, placement flips atomically in
``cluster.placements``, and the source pid is closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..faults.retry import RetryPolicy
from ..telemetry.metrics import Histogram
from .checkpoint import VfpgaCheckpoint, memory_image, restore_tenant, snapshot_tenant
from .errors import CheckpointError, MigratedError, MigrateError, TransferAbortedError
from .transfer import DEFAULT_CHUNK_BYTES, MIGRATION_QPN_BASE, MigrationChannel

__all__ = ["MigrateConfig", "MigrationRecord", "LiveMigrator"]


@dataclass(frozen=True)
class MigrateConfig:
    """Tuning for checkpoint transfer and the stop-and-copy window."""

    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    #: Quiesce drain window before the snapshot (mirrors region recovery).
    drain_ns: float = 20_000.0
    qpn_base: int = MIGRATION_QPN_BASE
    retry: RetryPolicy = RetryPolicy(
        max_retries=4, base_backoff_ns=50_000.0, backoff_cap_ns=1_000_000.0
    )


@dataclass
class MigrationRecord:
    """Audit trail for one migration attempt."""

    pid: int
    src: int
    dst: int
    started_ns: float
    state: str = "RUNNING"
    #: ``"completed"`` / ``"aborted"`` once finished.
    result: Optional[str] = None
    reason: str = ""
    #: Tenant-observed stop-and-copy pause.
    pause_ns: float = 0.0
    checkpoint_sha256: Optional[str] = None
    dirty_pages: int = 0
    total_pages: int = 0
    finished_ns: Optional[float] = None


class LiveMigrator:
    """Checkpoint/transfer/restore engine attached to an ``FpgaCluster``."""

    def __init__(self, cluster, config: MigrateConfig = MigrateConfig()):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        self._channels: Dict = {}
        self.records: List[MigrationRecord] = []
        self.started = 0
        self.completed = 0
        self.aborted = 0
        self.queue_transplants = 0
        self.replays = 0
        self.replay_rejects = 0
        #: Shared with every channel so chunk accounting lands here.
        self.stats: Dict[str, int] = {
            "chunks_sent": 0,
            "chunk_retries": 0,
            "transfer_drops": 0,
            "bytes_sent": 0,
        }
        self.pause_hist = Histogram.exponential("migrate.pause_ns")
        cluster.migrator = self

    # ---------------------------------------------------------- plumbing

    def _channel(self, src: int, dst: int) -> MigrationChannel:
        key = (src, dst)
        if key not in self._channels:
            self._channels[key] = MigrationChannel(
                self.cluster,
                src,
                dst,
                qpn_base=self.config.qpn_base,
                chunk_bytes=self.config.chunk_bytes,
                retry=self.config.retry,
                stats=self.stats,
            )
        return self._channels[key]

    @staticmethod
    def _scheduler(node, vfpga_id: int):
        for scheduler in node.driver.schedulers:
            if scheduler.vfpga_id == vfpga_id:
                return scheduler
        return None

    @staticmethod
    def _movers(node):
        movers = [node.shell.dynamic.host_mover]
        if node.shell.dynamic.card_mover is not None:
            movers.append(node.shell.dynamic.card_mover)
        return movers

    def _resume_source(self, node, vfpga_id: int, scheduler) -> None:
        """Fallback-to-source: restart the region and replay-or-reject."""
        for mover in self._movers(node):
            mover.restart_region(vfpga_id)
        if scheduler is not None:
            scheduler.resume_after_recovery(quarantined=False)

    def _note(self, kind: str, node: int, reason: str) -> None:
        note = getattr(self.cluster, "note_admin_event", None)
        if note is not None:
            note(kind, node, reason)

    # ----------------------------------------------------------- migrate

    def migrate(
        self, pid: int, src: int, dst: int, app_factory=None
    ) -> Generator:
        """Move one tenant ``src`` -> ``dst``; returns a MigrationRecord.

        ``app_factory`` programs the destination region for raw cThreads
        whose kernel is not registered with a destination scheduler.
        """
        if src == dst:
            raise MigrateError(f"pid {pid}: source and destination are both node {src}")
        src_node = self.cluster.nodes[src]
        dst_node = self.cluster.nodes[dst]
        if not src_node.alive or not dst_node.alive:
            raise MigrateError(
                f"pid {pid}: migration needs both nodes alive "
                f"(src alive={src_node.alive}, dst alive={dst_node.alive})"
            )
        ctx = src_node.driver._ctx(pid)
        vfpga_id = ctx.vfpga_id
        if pid in dst_node.driver.processes:
            raise MigrateError(f"pid {pid} already registered on node {dst}")

        src_sched = self._scheduler(src_node, vfpga_id)
        dst_sched = self._scheduler(dst_node, vfpga_id)
        kernel = src_sched.loaded if src_sched is not None else None
        channel = self._channel(src, dst)
        record = MigrationRecord(pid=pid, src=src, dst=dst, started_ns=self.env.now)
        self.records.append(record)
        self.started += 1

        # PRECOPY: first memory image + destination warm-up, tenant live.
        record.state = "PRECOPY"
        image1 = memory_image(src_node.driver, pid)
        try:
            precopy_raw = yield from channel.transfer(
                f"precopy-{pid}", VfpgaCheckpoint(
                    pid=pid, vfpga_id=vfpga_id, src_node=src, kernel=kernel,
                    memory=image1,
                ).to_bytes()
            )
        except TransferAbortedError as exc:
            self._finish(record, "aborted", str(exc))
            raise
        precopy_memory = VfpgaCheckpoint.from_bytes(precopy_raw).memory
        yield from self._warm_destination(
            dst_node, dst_sched, vfpga_id, kernel, app_factory
        )

        # QUIESCING: stop the source region; in-flight work parks or
        # flushes with typed MigratedError.
        record.state = "QUIESCING"
        pause_start = self.env.now
        quiesce_exc = MigratedError(vfpga_id, f"pid {pid} migrating to node {dst}")
        if src_sched is not None:
            src_sched.quiesce(quiesce_exc)
        for mover in self._movers(src_node):
            mover.quiesce_region(vfpga_id)
        yield self.env.timeout(self.config.drain_ns)

        # SNAPSHOT: capture control state (including still-pending WR
        # keys), then flush those waiters, then diff the dirty pages.
        record.state = "SNAPSHOT"
        image2 = memory_image(src_node.driver, pid)
        ckpt = snapshot_tenant(
            src_node.driver, pid, src_node=src, kernel=kernel, memory=image2
        )
        src_node.driver.fail_pending(vfpga_id, quiesce_exc)
        dirty = {
            vaddr: data
            for vaddr, data in image2.items()
            if image1.get(vaddr) != data
        }
        record.dirty_pages = len(dirty)
        record.total_pages = len(image2)
        record.checkpoint_sha256 = ckpt.sha256()

        # TRANSFER: control state + dirty pages only.
        record.state = "TRANSFER"
        delta = VfpgaCheckpoint.from_payload(ckpt.payload())
        delta.memory = dirty
        try:
            delta_raw = yield from channel.transfer(f"delta-{pid}", delta.to_bytes())
        except TransferAbortedError as exc:
            self._resume_source(src_node, vfpga_id, src_sched)
            self._abort(record, pause_start, str(exc))
            raise

        # RESTORE: merge pre-copy + dirty, verify, rebuild on ``dst``.
        record.state = "RESTORE"
        try:
            restored = VfpgaCheckpoint.from_bytes(delta_raw)
            merged = dict(precopy_memory)
            merged.update(restored.memory)
            restored.memory = merged
            if restored.sha256() != record.checkpoint_sha256:
                raise CheckpointError(
                    f"pid {pid}: merged checkpoint hash mismatch after transfer"
                )
            yield from restore_tenant(dst_node.driver, restored)
        except Exception as exc:
            self._resume_source(src_node, vfpga_id, src_sched)
            self._abort(record, pause_start, str(exc))
            raise

        # RESUME: flip placement, transplant the queue, retire the source.
        record.state = "RESUME"
        self.cluster.placements[pid] = dst
        self.cluster.migrations += 1
        if src_sched is not None and dst_sched is not None:
            moved, replayed, rejected = src_sched.transplant_to(dst_sched)
            self.queue_transplants += moved
            self.replays += replayed
            self.replay_rejects += rejected
        elif src_sched is not None:
            src_sched.resume_after_recovery(quarantined=False)
        for mover in self._movers(src_node):
            mover.restart_region(vfpga_id)
        src_node.driver.close(pid, reason=f"migrated to node {dst}")
        record.pause_ns = self.env.now - pause_start
        self.pause_hist.observe(record.pause_ns)
        self._finish(record, "completed", f"node {src} -> node {dst}")
        self.completed += 1
        self._note(
            "tenant_migrated", dst, f"pid {pid}: node {src} -> node {dst}"
        )
        return record

    def _warm_destination(
        self, dst_node, dst_sched, vfpga_id: int, kernel, app_factory
    ) -> Generator:
        """Program the destination region while the tenant still runs, so
        partial reconfiguration stays outside the pause window (cached
        bitstreams make repeats near-free)."""
        if (
            kernel is not None
            and dst_sched is not None
            and kernel in dst_sched._kernels
            and dst_sched.loaded != kernel
        ):
            registration = dst_sched._kernels[kernel]
            yield from dst_node.driver.reconfigure_app(
                registration.bitstream,
                vfpga_id,
                registration.factory(),
                cached=True,
            )
            dst_sched.loaded = kernel
            dst_sched.loaded_app = dst_node.shell.vfpgas[vfpga_id].app
            dst_sched.reconfigurations += 1
        elif app_factory is not None and dst_node.shell.vfpgas[vfpga_id].app is None:
            dst_node.shell.load_app(vfpga_id, app_factory())

    def _abort(self, record: MigrationRecord, pause_start: float, reason: str) -> None:
        record.pause_ns = self.env.now - pause_start
        self.pause_hist.observe(record.pause_ns)
        self._finish(record, "aborted", reason)
        self._note(
            "migration_aborted",
            record.src,
            f"pid {record.pid}: fell back to node {record.src} ({reason})",
        )

    def _finish(self, record: MigrationRecord, result: str, reason: str) -> None:
        record.result = result
        record.reason = reason
        record.finished_ns = self.env.now
        if result == "aborted":
            self.aborted += 1
        record.state = "DONE" if result == "completed" else "FAILED"

    # ------------------------------------------------------ queue drains

    def migrate_queue(self, src: int, dst: int, vfpga_id: int) -> Generator:
        """Relocate a scheduler's queued work without any pid state.

        Used by node drains for regions whose tenants are scheduler
        requests only: quiesce, drain, transplant the queue under the
        replay-or-reject policy, restart the source region.  Returns the
        number of requests moved.
        """
        src_node = self.cluster.nodes[src]
        dst_node = self.cluster.nodes[dst]
        src_sched = self._scheduler(src_node, vfpga_id)
        dst_sched = self._scheduler(dst_node, vfpga_id)
        if src_sched is None or dst_sched is None:
            raise MigrateError(
                f"queue migration needs schedulers on region {vfpga_id} of "
                f"both node {src} and node {dst}"
            )
        pause_start = self.env.now
        exc = MigratedError(vfpga_id, f"region {vfpga_id} draining to node {dst}")
        src_sched.quiesce(exc)
        for mover in self._movers(src_node):
            mover.quiesce_region(vfpga_id)
        yield self.env.timeout(self.config.drain_ns)
        src_node.driver.fail_pending(vfpga_id, exc)
        moved, replayed, rejected = src_sched.transplant_to(dst_sched)
        self.queue_transplants += moved
        self.replays += replayed
        self.replay_rejects += rejected
        for mover in self._movers(src_node):
            mover.restart_region(vfpga_id)
        self.pause_hist.observe(self.env.now - pause_start)
        return moved

    # --------------------------------------------------------- telemetry

    def export_metrics(self, registry) -> None:
        registry.counter("migrate.started").value = self.started
        registry.counter("migrate.completed").value = self.completed
        registry.counter("migrate.aborted").value = self.aborted
        registry.counter("migrate.queue_transplants").value = self.queue_transplants
        registry.counter("migrate.replays").value = self.replays
        registry.counter("migrate.replay_rejects").value = self.replay_rejects
        registry.counter("migrate.chunks_sent").value = self.stats["chunks_sent"]
        registry.counter("migrate.chunk_retries").value = self.stats["chunk_retries"]
        registry.counter("migrate.transfer_drops").value = self.stats["transfer_drops"]
        registry.counter("migrate.bytes_sent").value = self.stats["bytes_sent"]
        registry.histogram("migrate.pause_ns", self.pause_hist.bounds).merge(
            self.pause_hist
        )
