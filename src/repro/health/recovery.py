"""Quiesce + hot-reset of a wedged vFPGA (the paper's decoupled PR).

Coyote v2 decouples a region from the shell interconnect before partial
reconfiguration so misbehaving user logic can never corrupt the shared
shell.  :class:`RecoveryManager` reuses exactly that machinery as a
*recovery* primitive:

1. **Decouple** — the region rejects new invokes; every pending
   completion of its tenants fails with a typed
   :class:`~repro.health.errors.RecoveredError`; any scheduler serving
   the region pauses and hands over its in-flight request.
2. **Quiesce** — the region's mover request units are stopped, then a
   bounded drain window lets packets already inside the shared
   translate/DMA pipeline retire (they hold credits and guaranteed FIFO
   space, so the window is bounded by pipeline depth, not tenant
   behaviour).
3. **Reset** — user logic is unloaded, stream FIFOs and send/completion
   queues are wiped, credit pools refill to capacity, and the tenant's
   TLB entries are invalidated (one MMU per vFPGA, so a full TLB flush
   is exactly one tenant's entries).
4. **Reprogram or quarantine** — a per-region circuit breaker counts
   recovery attempts; under the threshold the region is reprogrammed
   through the normal PR path (scheduler kernel, or the shell's
   last-good app) and re-coupled, otherwise the tenant is quarantined
   and the region left dark while the rest of the card keeps serving.
5. **Replay or reject** — the scheduler resumes; its aborted request is
   replayed iff its kernel was registered ``idempotent``, else it fails
   with ``RecoveredError``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, Generator, List

from .errors import RecoveredError

__all__ = ["HealthConfig", "RegionState", "RecoveryManager"]


@dataclass(frozen=True)
class HealthConfig:
    """Tunables shared by the watchdog monitor and the recovery pipeline."""

    #: Heartbeat sampling period of the health monitor.
    poll_interval_ns: float = 25_000.0
    #: Region watchdog: busy with no counter movement this long => HUNG.
    deadline_ns: float = 200_000.0
    #: Per-cThread watchdog: one pending completion older than this =>
    #: HUNG even if the region's aggregate counters still move (another
    #: tenant's streams may flow while one lane is wedged).
    cthread_deadline_ns: float = 5_000_000.0
    #: Quiesce drain window before the region datapath is wiped.
    drain_ns: float = 50_000.0
    #: Circuit breaker: quarantine on the K-th recovery attempt ...
    breaker_threshold: int = 3
    #: ... within this window (PR itself costs milliseconds, so the
    #: window spans several back-to-back recoveries).
    breaker_window_ns: float = 500_000_000.0
    #: Monitor recovers HUNG regions automatically; ``False`` restricts
    #: it to verdicts/reporting (manual ``driver.recover()`` still works).
    auto_recover: bool = True


class RegionState(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"  # recovered at least once; still serving
    RECOVERING = "recovering"
    QUARANTINED = "quarantined"


class RecoveryManager:
    """Owns the per-region recovery state machine of one card."""

    def __init__(self, driver, config: HealthConfig = HealthConfig()):
        self.driver = driver
        self.env = driver.env
        self.config = config
        self._states: Dict[int, RegionState] = {
            vfpga.vfpga_id: RegionState.HEALTHY for vfpga in driver.shell.vfpgas
        }
        self._breaker: Dict[int, Deque[float]] = {
            vfpga_id: deque() for vfpga_id in self._states
        }
        self._in_progress: Dict[int, bool] = {}
        self.recoveries: Dict[int, int] = {vfpga_id: 0 for vfpga_id in self._states}
        self.quarantines = 0
        self.descriptors_dropped = 0
        self.completions_failed = 0
        self.tlb_entries_flushed = 0

    # ------------------------------------------------------------- queries

    def state_of(self, vfpga_id: int) -> RegionState:
        return self._states.get(vfpga_id, RegionState.HEALTHY)

    def total_recoveries(self) -> int:
        return sum(self.recoveries.values())

    def region_dict(self, vfpga_id: int) -> Dict:
        vfpga = self.driver.shell.vfpgas[vfpga_id]
        return {
            "id": vfpga_id,
            "state": self.state_of(vfpga_id).value,
            "recoveries": self.recoveries.get(vfpga_id, 0),
            "decoupled": vfpga.decoupled,
            "quarantined": vfpga.quarantined,
        }

    # ------------------------------------------------------------ pipeline

    def recover(self, vfpga_id: int, reason: str = "manual") -> Generator:
        """Run the quiesce -> reset -> reprogram/quarantine pipeline.

        A generator — run it as a process.  Re-entrant calls while a
        recovery is already in flight (or after quarantine) are no-ops.
        """
        if self._in_progress.get(vfpga_id):
            return
        if self.state_of(vfpga_id) is RegionState.QUARANTINED:
            return
        self._in_progress[vfpga_id] = True
        try:
            yield from self._recover(vfpga_id, reason)
        finally:
            self._in_progress[vfpga_id] = False
            monitor = self.driver.health
            if monitor is not None:
                monitor.on_region_recovered(vfpga_id)

    def _recover(self, vfpga_id: int, reason: str) -> Generator:
        driver = self.driver
        shell = driver.shell
        vfpga = shell.vfpgas[vfpga_id]
        self._states[vfpga_id] = RegionState.RECOVERING
        vfpga.decoupled = True

        # 1. Decouple: fail software's pending completions and pause the
        # region's scheduler (it hands over its in-flight request).
        exc = RecoveredError(vfpga_id, reason)
        self.completions_failed += driver.fail_pending(vfpga_id, exc)
        schedulers = [s for s in driver.schedulers if s.vfpga_id == vfpga_id]
        for scheduler in schedulers:
            scheduler.quiesce(exc)

        # Circuit breaker: decide up front whether this attempt trips it,
        # so a tenant being evicted never costs another ICAP program.
        window = self._breaker[vfpga_id]
        window.append(self.env.now)
        while window and self.env.now - window[0] > self.config.breaker_window_ns:
            window.popleft()
        quarantine = len(window) >= self.config.breaker_threshold

        # 2. Quiesce: stop the region's request units, then let packets
        # already in the shared pipeline retire.
        movers = [shell.dynamic.host_mover]
        if shell.dynamic.card_mover is not None:
            movers.append(shell.dynamic.card_mover)
        for mover in movers:
            mover.quiesce_region(vfpga_id)
        yield self.env.timeout(self.config.drain_ns)

        # 3. Reset: wipe user logic, stream FIFOs, queues and credits;
        # invalidate the tenant's TLB entries.
        vfpga.unload_app()
        self.descriptors_dropped += vfpga.reset_datapath()
        mmu = shell.dynamic.mmus.get(vfpga_id)
        if mmu is not None:
            self.tlb_entries_flushed += mmu.flush()
        for mover in movers:
            self.descriptors_dropped += mover.restart_region(vfpga_id)

        # 4. Reprogram or quarantine.
        if not quarantine:
            try:
                yield from self._restore(vfpga_id, schedulers)
            except Exception:
                # The region cannot be restored (e.g. persistent ICAP CRC
                # failures): take it out of service instead of crashing.
                quarantine = True
        if quarantine:
            vfpga.quarantined = True
            vfpga.decoupled = False
            self.quarantines += 1
            self._states[vfpga_id] = RegionState.QUARANTINED
            for scheduler in schedulers:
                scheduler.resume_after_recovery(quarantined=True)
            return

        vfpga.decoupled = False
        self.recoveries[vfpga_id] += 1
        self._states[vfpga_id] = RegionState.DEGRADED

        # 5. Replay or reject queued work per the idempotency policy.
        for scheduler in schedulers:
            scheduler.resume_after_recovery(quarantined=False)

    def _restore(self, vfpga_id: int, schedulers: List) -> Generator:
        """Reprogram the region through the existing reconfig path."""
        driver = self.driver
        shell = driver.shell
        scheduler = schedulers[0] if schedulers else None
        if scheduler is not None and scheduler.loaded is not None:
            registration = scheduler._kernels[scheduler.loaded]
            yield driver.env.process(
                driver.reconfigure_app(
                    registration.bitstream,
                    vfpga_id,
                    registration.factory(),
                    cached=scheduler.cached_bitstreams,
                )
            )
            scheduler.loaded_app = shell.vfpgas[vfpga_id].app
            return
        last = shell._last_good_app.get(vfpga_id)
        if last is None:
            return  # region was empty; leave it empty
        bitstream, app = last
        if bitstream is None:
            # Loaded at initial configuration: no PR charge, plain reload.
            shell.load_app(vfpga_id, app)
        else:
            yield driver.env.process(
                driver.reconfigure_app(bitstream, vfpga_id, app, cached=True)
            )
