"""Progress watchdogs: HUNG verdicts from telemetry counters.

A region is *busy* when software has outstanding work against it and
*progressing* when its forward-progress counters (credits acquired,
completions delivered, interrupts raised, scheduler requests served)
move between samples.  Busy without progress for longer than the
deadline is a ``HUNG`` verdict — the same liveness definition a hardware
watchdog timer implements with a petting register.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

__all__ = ["Verdict", "ProgressWatchdog"]


class Verdict(Enum):
    IDLE = "idle"  # no outstanding work; nothing to prove
    OK = "ok"  # busy and progressing (or stalled within the deadline)
    HUNG = "hung"  # busy with no progress past the deadline


class ProgressWatchdog:
    """Deadline watchdog over externally supplied progress/busy signals.

    ``progress_fn`` returns a monotonically non-decreasing work counter;
    ``busy_fn`` returns whether there is outstanding work that *should*
    be advancing it.  :meth:`sample` is pure bookkeeping — the caller
    (the health monitor's heartbeat) decides when to sample and what to
    do with a ``HUNG`` verdict.
    """

    def __init__(
        self,
        name: str,
        progress_fn: Callable[[], int],
        busy_fn: Callable[[], bool],
        deadline_ns: float,
    ):
        if deadline_ns <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.name = name
        self.progress_fn = progress_fn
        self.busy_fn = busy_fn
        self.deadline_ns = deadline_ns
        self.trips = 0
        self._last_progress: Optional[int] = None
        self._stall_since: Optional[float] = None

    def sample(self, now: float) -> Verdict:
        if not self.busy_fn():
            self._stall_since = None
            self._last_progress = None
            return Verdict.IDLE
        progress = self.progress_fn()
        if progress != self._last_progress:
            self._last_progress = progress
            self._stall_since = now
            return Verdict.OK
        if self._stall_since is None:
            self._stall_since = now
            return Verdict.OK
        if now - self._stall_since >= self.deadline_ns:
            self.trips += 1
            # Restart the stall clock so one hang yields one trip per
            # deadline, not one per heartbeat sample.
            self._stall_since = now
            return Verdict.HUNG
        return Verdict.OK

    def reset(self) -> None:
        """Forget stall history (called after the region is recovered)."""
        self._last_progress = None
        self._stall_since = None
