"""Typed errors raised by the health & recovery subsystem.

Every path through recovery resolves outstanding work with one of these
(never a bare hang, never a silent drop), which is what lets chaos tests
assert "all submitted requests reach a terminal state".
"""

from __future__ import annotations

__all__ = [
    "HealthError",
    "RecoveredError",
    "QuarantinedError",
    "DecoupledError",
    "AdmissionError",
    "NodeDownError",
    "PfcStormError",
]


class HealthError(Exception):
    """Base class for all health/recovery errors."""


class RecoveredError(HealthError):
    """The vFPGA serving this request was hot-reset while it was in
    flight; the request's side effects are undefined and it was not
    replayed (either no scheduler owned it, or its kernel is not
    registered as idempotent)."""

    def __init__(self, vfpga_id: int, reason: str = "recovered"):
        super().__init__(f"vFPGA {vfpga_id} was recovered ({reason})")
        self.vfpga_id = vfpga_id
        self.reason = reason


class QuarantinedError(HealthError):
    """The target vFPGA tripped its circuit breaker (K recoveries inside
    the breaker window) and no longer accepts work; the rest of the card
    keeps serving."""

    def __init__(self, vfpga_id: int):
        super().__init__(f"vFPGA {vfpga_id} is quarantined")
        self.vfpga_id = vfpga_id


class DecoupledError(HealthError):
    """The target vFPGA is decoupled from the shell interconnect (a
    recovery is in progress); new work is rejected until it re-couples."""

    def __init__(self, vfpga_id: int):
        super().__init__(f"vFPGA {vfpga_id} is decoupled for recovery")
        self.vfpga_id = vfpga_id


class NodeDownError(HealthError):
    """The whole node (card) is down — crashed, or declared dead by the
    cluster failure detector.  Work targeting it is rejected (or flushed,
    if already in flight) instead of parking forever; the scheduler's
    idempotent-replay-or-reject policy decides each request's fate once
    the node is restored."""

    def __init__(self, node_index: int, reason: str = "node down"):
        super().__init__(f"node {node_index} is down ({reason})")
        self.node_index = node_index
        self.reason = reason


class PfcStormError(HealthError):
    """A PFC pause storm: a port stayed continuously paused past the
    switch's storm threshold — the classic priority-flow-control deadlock
    shape (a wedged receiver backpressures the fabric, the fabric
    backpressures every sender).  The switch's watchdog detects it,
    records this typed error, and *breaks* the pause (storm mitigation:
    PFC is muted on the offending port) so the simulation drains instead
    of hanging; senders parked on the paused MAC receive this error."""

    def __init__(self, port: str, paused_ns: float, threshold_ns: float):
        super().__init__(
            f"PFC pause storm on port {port}: continuously paused "
            f"{paused_ns:.0f} ns (threshold {threshold_ns:.0f} ns)"
        )
        self.port = port
        self.paused_ns = paused_ns
        self.threshold_ns = threshold_ns


class AdmissionError(HealthError):
    """A bounded submit queue rejected the request (admission control in
    ``reject`` mode; in ``block`` mode the submitter is back-pressured
    instead)."""

    def __init__(self, vfpga_id: int, depth: int):
        super().__init__(
            f"vFPGA {vfpga_id} submit queue full ({depth} requests deep)"
        )
        self.vfpga_id = vfpga_id
        self.depth = depth
