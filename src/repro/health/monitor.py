"""The card health monitor: heartbeat, watchdogs, and the HealthReport.

The driver-side heartbeat loop the paper's daemon would run: it samples
per-vFPGA progress watchdogs (fed by the telemetry counters PR 2 added)
on a poll interval, spawns the recovery pipeline on a ``HUNG`` verdict,
and assembles the ``healthy/degraded/quarantined`` per-region
:class:`HealthReport` that ``card_report()["health"]`` exposes.

The heartbeat *parks* (waits on an event instead of polling) whenever no
region has outstanding work, so attaching a monitor never keeps an
otherwise-finished simulation alive; the driver kicks it awake on the
next descriptor/submit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..sim.engine import Environment, Event
from .recovery import HealthConfig, RecoveryManager, RegionState
from .watchdog import ProgressWatchdog, Verdict

__all__ = ["HealthMonitor", "HealthReport", "RegionHealth", "health_section"]


@dataclass(frozen=True)
class RegionHealth:
    """One region's line in the card health report."""

    vfpga_id: int
    state: str  # healthy | degraded | recovering | quarantined
    recoveries: int
    watchdog_trips: int
    stuck_pids: Tuple[int, ...] = ()

    def as_dict(self) -> Dict:
        return {
            "id": self.vfpga_id,
            "state": self.state,
            "recoveries": self.recoveries,
            "watchdog_trips": self.watchdog_trips,
            "stuck_pids": list(self.stuck_pids),
        }


@dataclass(frozen=True)
class HealthReport:
    """Card-level verdict plus per-region detail."""

    card: str  # healthy | degraded | quarantined
    regions: Tuple[RegionHealth, ...]

    def as_dict(self) -> Dict:
        return {
            "card": self.card,
            "regions": [region.as_dict() for region in self.regions],
        }


class HealthMonitor:
    """Watches one card; attach with ``HealthMonitor(driver)``.

    Creating the monitor registers it on the driver (``driver.health``),
    shares (or creates) the driver's :class:`RecoveryManager`, and starts
    the heartbeat process.  One monitor per card.
    """

    def __init__(self, driver, config: HealthConfig = HealthConfig()):
        self.driver = driver
        self.env: Environment = driver.env
        self.config = config
        if driver.recovery is None:
            driver.recovery = RecoveryManager(driver, config)
        self.recovery: RecoveryManager = driver.recovery
        self._watchdogs: Dict[int, ProgressWatchdog] = {}
        for vfpga in driver.shell.vfpgas:
            vfpga_id = vfpga.vfpga_id
            self._watchdogs[vfpga_id] = ProgressWatchdog(
                name=f"wd-v{vfpga_id}",
                progress_fn=self._progress_fn(vfpga_id),
                busy_fn=self._busy_fn(vfpga_id),
                deadline_ns=config.deadline_ns,
            )
        self.polls = 0
        self.hung_verdicts = 0
        self._parked: Optional[Event] = None
        driver.attach_health(self)
        self.env.process(self._heartbeat(), name="health-heartbeat")

    # ------------------------------------------------------------- signals

    def _progress_fn(self, vfpga_id: int):
        def progress() -> int:
            driver = self.driver
            vfpga = driver.shell.vfpgas[vfpga_id]
            total = vfpga.interrupts_sent
            total += driver.completions_delivered.get(vfpga_id, 0)
            for crediter in vfpga.rd_credits.values():
                total += crediter.acquired_total
            for crediter in vfpga.wr_credits.values():
                total += crediter.acquired_total
            for scheduler in driver.schedulers:
                if scheduler.vfpga_id == vfpga_id:
                    total += scheduler.requests_served + scheduler.reconfigurations
            return total

        return progress

    def _busy_fn(self, vfpga_id: int):
        def busy() -> bool:
            return self._region_busy(vfpga_id)

        return busy

    def _region_busy(self, vfpga_id: int) -> bool:
        driver = self.driver
        if driver.reconfiguring(vfpga_id):
            # PR legitimately stalls the region for milliseconds; the
            # driver's own IRQ-timeout fallback bounds it.
            return False
        for ctx in driver.processes.values():
            if ctx.vfpga_id == vfpga_id and ctx.pending:
                return True
        for scheduler in driver.schedulers:
            if scheduler.vfpga_id == vfpga_id and scheduler.has_work:
                return True
        return False

    def _stuck_pids(self, vfpga_id: int, now: float) -> Tuple[int, ...]:
        """Per-cThread watchdog: pids with a completion pending longer
        than ``cthread_deadline_ns``."""
        stuck: List[int] = []
        for pid, ctx in self.driver.processes.items():
            if ctx.vfpga_id != vfpga_id:
                continue
            for since in ctx.pending_since.values():
                if now - since >= self.config.cthread_deadline_ns:
                    stuck.append(pid)
                    break
        return tuple(sorted(stuck))

    # ----------------------------------------------------------- heartbeat

    def _any_busy(self) -> bool:
        return any(
            self._region_busy(vfpga_id) for vfpga_id in self._watchdogs
        )

    def _heartbeat(self) -> Generator:
        while True:
            if not self._any_busy():
                # Park: the simulation can drain; post_descriptor/submit
                # (or a finished recovery) kicks us awake.
                self._parked = Event(self.env)
                yield self._parked
                self._parked = None
                continue
            yield self.env.timeout(self.config.poll_interval_ns)
            self.poll_once()

    def notify_activity(self) -> None:
        """Unpark the heartbeat (called on new work entering the card)."""
        if self._parked is not None and not self._parked.triggered:
            self._parked.succeed()

    def on_region_recovered(self, vfpga_id: int) -> None:
        """Recovery pipeline finished (recovered *or* quarantined)."""
        watchdog = self._watchdogs.get(vfpga_id)
        if watchdog is not None:
            watchdog.reset()
        self.notify_activity()

    def poll_once(self) -> None:
        """Sample every region watchdog; spawn recovery on HUNG."""
        self.polls += 1
        now = self.env.now
        for vfpga_id, watchdog in self._watchdogs.items():
            state = self.recovery.state_of(vfpga_id)
            if state in (RegionState.RECOVERING, RegionState.QUARANTINED):
                continue
            verdict = watchdog.sample(now)
            stuck = ()
            if verdict is not Verdict.HUNG:
                stuck = self._stuck_pids(vfpga_id, now)
                if stuck:
                    watchdog.trips += 1  # cThread-level trip
            if verdict is Verdict.HUNG or stuck:
                self.hung_verdicts += 1
                if self.config.auto_recover:
                    reason = (
                        "watchdog" if verdict is Verdict.HUNG
                        else f"cthread pids {list(stuck)}"
                    )
                    self.env.process(
                        self.recovery.recover(vfpga_id, reason=reason),
                        name=f"recover-v{vfpga_id}",
                    )

    # -------------------------------------------------------------- report

    def report(self) -> HealthReport:
        now = self.env.now
        regions = []
        for vfpga_id, watchdog in sorted(self._watchdogs.items()):
            state = self.recovery.state_of(vfpga_id)
            regions.append(
                RegionHealth(
                    vfpga_id=vfpga_id,
                    state=state.value,
                    recoveries=self.recovery.recoveries.get(vfpga_id, 0),
                    watchdog_trips=watchdog.trips,
                    stuck_pids=self._stuck_pids(vfpga_id, now),
                )
            )
        states = {region.state for region in regions}
        if states <= {RegionState.HEALTHY.value}:
            card = "healthy"
        elif states == {RegionState.QUARANTINED.value}:
            card = "quarantined"
        else:
            card = "degraded"
        return HealthReport(card=card, regions=tuple(regions))


def health_section(driver) -> Dict:
    """The ``card_report()["health"]`` section for one driver."""
    section = _card_section(driver)
    cluster = getattr(driver, "cluster_health", None)
    if cluster is not None:
        section["cluster"] = cluster.section()
    return section


def _card_section(driver) -> Dict:
    if driver.health is not None:
        return driver.health.report().as_dict()
    if driver.recovery is not None:
        # Manual recovery without a monitor: report states, no watchdogs.
        regions = [
            driver.recovery.region_dict(vfpga.vfpga_id)
            for vfpga in driver.shell.vfpgas
        ]
        states = {region["state"] for region in regions}
        if states <= {"healthy"}:
            card = "healthy"
        elif states == {"quarantined"}:
            card = "quarantined"
        else:
            card = "degraded"
        return {"card": card, "regions": regions}
    return {"card": "unmonitored", "regions": []}
