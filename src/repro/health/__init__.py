"""Card health & recovery: watchdogs, hot-reset, admission, quarantine.

Usage::

    from repro.health import HealthMonitor, HealthConfig

    monitor = HealthMonitor(driver, HealthConfig(deadline_ns=100_000))
    ...run the workload...
    monitor.report()            # HealthReport: card + per-region states
    card_report(driver)["health"]  # same thing, embedded in the report

The state machine (watchdog -> quiesce -> reset -> replay/quarantine)
is documented in DESIGN.md ("Card health & recovery").  Manual recovery
without a monitor: ``env.process(driver.recover(vfpga_id))``.
"""

from .cluster import ClusterHealthConfig, ClusterMonitor
from .errors import (
    AdmissionError,
    DecoupledError,
    HealthError,
    NodeDownError,
    PfcStormError,
    QuarantinedError,
    RecoveredError,
)
from .monitor import HealthMonitor, HealthReport, RegionHealth, health_section
from .recovery import HealthConfig, RecoveryManager, RegionState
from .watchdog import ProgressWatchdog, Verdict

__all__ = [
    "HealthMonitor",
    "HealthConfig",
    "HealthReport",
    "RegionHealth",
    "RecoveryManager",
    "RegionState",
    "ProgressWatchdog",
    "Verdict",
    "HealthError",
    "RecoveredError",
    "QuarantinedError",
    "DecoupledError",
    "AdmissionError",
    "NodeDownError",
    "PfcStormError",
    "ClusterMonitor",
    "ClusterHealthConfig",
    "health_section",
]
