"""Cluster-level failure detection: RDMA heartbeats + a miss-count detector.

Node-local health (``HealthMonitor``) sees hangs *inside* one card; this
module sees whole cards disappearing from the fabric.  Every node pair
gets a dedicated heartbeat queue pair (far above the application QPN
ranges), each node SENDs an 8-byte sequence number to every peer at a
fixed interval, and a phi-style miss-count detector turns silence into
edge-triggered ``node_down`` / ``node_up`` events:

* **Soft evidence** — an observer has not heard a peer's heartbeat for
  ``miss_threshold`` intervals (``phi() >= 1``).
* **Hard evidence** — the observer's heartbeat SEND toward the peer hit
  retry exhaustion and was flushed (``WrFlushError``), i.e. the RC layer
  itself gave up.  This saturates suspicion immediately.

A peer is declared down only when *every* live observer suspects it, so
a two-node ``net.partition`` does not take down a node the rest of the
fabric can still hear.  Events land in ``card_report()["health"]`` (via
``driver.cluster_health``) and in the ``cluster.*`` telemetry namespace;
when a :class:`repro.telemetry.ClusterTelemetry` is attached, every poll
also refreshes its delta-aware fabric snapshot (first consumer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net.qp import QpState
from ..net.rdma import RdmaError
from ..sim.engine import Event

__all__ = ["ClusterHealthConfig", "ClusterMonitor"]

#: Heartbeat QPNs live far above application / collective ranges.
HEARTBEAT_QPN_BASE = 0xE000


@dataclass(frozen=True)
class ClusterHealthConfig:
    """Tuning for the cluster failure detector."""

    #: Heartbeat period per directed pair.
    interval_ns: float = 100_000.0
    #: Consecutive missed intervals before an observer suspects a peer.
    miss_threshold: int = 3
    #: Base QPN for the dedicated heartbeat mesh.
    qpn_base: int = HEARTBEAT_QPN_BASE
    #: Keep at most this many (time, kind, node, reason) events in the log.
    max_events: int = 256


class ClusterMonitor:
    """Heartbeat mesh + failure detector over an :class:`FpgaCluster`.

    Construction wires the monitor into the cluster (``cluster.monitor``)
    and every driver (``driver.cluster_health``), builds the heartbeat QP
    mesh, and starts the sender/receiver/checker processes.  Call
    :meth:`stop` before draining the simulation — the periodic loops
    otherwise keep the event queue alive forever.
    """

    def __init__(self, cluster, config: ClusterHealthConfig = ClusterHealthConfig(),
                 telemetry=None):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        #: Optional :class:`repro.telemetry.ClusterTelemetry`; refreshed
        #: once per poll when attached (the delta path keeps it cheap).
        self.telemetry = telemetry
        self.last_snapshot = None

        self._stacks = []
        for node in cluster.nodes:
            rdma = node.shell.dynamic.rdma
            if rdma is None:
                raise ValueError(f"node {node.index} has no RDMA service")
            self._stacks.append(rdma)
        self.size = len(self._stacks)

        # (observer, peer) -> sim time the observer last heard the peer.
        self._last_seen: Dict[Tuple[int, int], float] = {}
        # (observer, peer) -> the observer's SEND toward peer was flushed.
        self._flushed: Dict[Tuple[int, int], bool] = {}
        # peer -> currently declared down by the detector.
        self._down: Dict[int, bool] = {}
        # Unordered pair key -> events of loops parked on a broken pair.
        self._parked: Dict[Tuple[int, int], List[Event]] = {}
        # Unordered pair key -> rearm generation.  A loop records the
        # epoch before each blocking verb; a failure delivered under a
        # newer epoch is stale (the flush came from the rearm itself, or
        # from the pre-rearm era) and must neither count as evidence nor
        # park the loop — the waiter list it would join was already
        # drained by the rearm that invalidated it.
        self._epochs: Dict[Tuple[int, int], int] = {}
        # Unordered pair key -> (qpn on low node, qpn on high node).
        self._pair_qpns: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._stopped = False

        #: Edge-triggered detector events plus administrative ones
        #: (crash/restore/drain/upgrade/migration), each a
        #: ``(time_ns, kind, node_index, reason)`` tuple.
        self.events: List[Tuple[float, str, int, str]] = []
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.polls = 0
        self.down_events = 0
        self.up_events = 0
        self.rearms = 0
        self.admin_events = 0

        self._build_mesh()
        cluster.monitor = self
        for node in cluster.nodes:
            node.driver.cluster_health = self

        now = self.env.now
        for i in range(self.size):
            for j in range(self.size):
                if i != j:
                    self._last_seen[(i, j)] = now
        for i in range(self.size):
            for j in range(self.size):
                if i == j:
                    continue
                qpn = self._qpn_for(i, j)
                self.env.process(
                    self._sender(i, j, qpn), name=f"hb-send-{i}-{j}"
                )
                self.env.process(
                    self._receiver(i, j, qpn), name=f"hb-recv-{i}-{j}"
                )
        self.env.process(self._checker(), name="hb-checker")

    # ------------------------------------------------------------- mesh

    @staticmethod
    def _pairkey(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _qpn_for(self, node: int, peer: int) -> int:
        return self.config.qpn_base + node * self.size + peer

    def _build_mesh(self) -> None:
        """One bidirectional heartbeat QP per node pair, cross-connected."""
        for i in range(self.size):
            for j in range(i + 1, self.size):
                qpn_i = self._qpn_for(i, j)
                qpn_j = self._qpn_for(j, i)
                qp_i = self._stacks[i].create_qp(qpn_i, psn=qpn_i)
                qp_j = self._stacks[j].create_qp(qpn_j, psn=qpn_j)
                qp_i.connect(qp_j.local)
                qp_j.connect(qp_i.local)
                self._pair_qpns[(i, j)] = (qpn_i, qpn_j)
                self._epochs[(i, j)] = 0

    def _park(self, a: int, b: int) -> Event:
        event = Event(self.env)
        self._parked.setdefault(self._pairkey(a, b), []).append(event)
        return event

    def rearm(self, a: int, b: int) -> None:
        """Recycle the heartbeat QP pair between two live nodes and wake
        any loops parked on it (used after partition heals and by
        :meth:`on_node_restored`)."""
        key = self._pairkey(a, b)
        qpn_low, qpn_high = self._pair_qpns[key]
        stack_low = self._stacks[key[0]]
        stack_high = self._stacks[key[1]]
        qp_low = stack_low.qps[qpn_low]
        qp_high = stack_high.qps[qpn_high]
        if not qp_low.connected or not qp_high.connected:
            if qp_low.state is not QpState.RESET:
                stack_low.reset_qp(qpn_low)
            if qp_high.state is not QpState.RESET:
                stack_high.reset_qp(qpn_high)
            qp_low.connect(qp_high.local)
            qp_high.connect(qp_low.local)
        now = self.env.now
        self._last_seen[(a, b)] = now
        self._last_seen[(b, a)] = now
        self._flushed[(a, b)] = False
        self._flushed[(b, a)] = False
        self._epochs[key] += 1
        self.rearms += 1
        for event in self._parked.pop(key, []):
            if not event.triggered:
                event.succeed()

    def on_node_restored(self, index: int) -> None:
        """Hook from :meth:`FpgaCluster.restore_node`: re-arm every
        heartbeat pair between the restored node and a live peer."""
        for peer in range(self.size):
            if peer == index:
                continue
            if self.cluster.nodes[peer].alive:
                self.rearm(index, peer)

    # ------------------------------------------------------------ loops

    def _sender(self, node: int, peer: int, qpn: int):
        stack = self._stacks[node]
        key = self._pairkey(node, peer)
        seq = 0
        while True:
            yield self.env.timeout(self.config.interval_ns)
            if self._stopped:
                return
            seq += 1
            epoch = self._epochs[key]
            try:
                yield from stack.send(qpn, seq.to_bytes(8, "big"), wr_id=qpn)
                self.heartbeats_sent += 1
            except RdmaError:
                if self._stopped:
                    return
                if self._epochs[key] != epoch:
                    continue  # stale failure: the pair was just rearmed
                if not stack.halted:
                    # Our RC layer gave up on the peer: hard evidence.
                    self._flushed[(node, peer)] = True
                yield self._park(node, peer)
                if self._stopped:
                    return

    def _receiver(self, node: int, peer: int, qpn: int):
        stack = self._stacks[node]
        key = self._pairkey(node, peer)
        while True:
            if self._stopped:
                return
            epoch = self._epochs[key]
            try:
                yield from stack.recv(qpn)
            except RdmaError:
                if self._stopped:
                    return
                if self._epochs[key] != epoch:
                    continue  # stale failure: the pair was just rearmed
                yield self._park(node, peer)
                continue
            self.heartbeats_received += 1
            self._last_seen[(node, peer)] = self.env.now

    def _checker(self):
        while True:
            yield self.env.timeout(self.config.interval_ns)
            if self._stopped:
                return
            self.poll_once()

    def stop(self) -> None:
        """Halt all monitor loops so the simulation can drain."""
        self._stopped = True
        for key in list(self._parked):
            for event in self._parked.pop(key, []):
                if not event.triggered:
                    event.succeed()

    # --------------------------------------------------------- detector

    def phi(self, observer: int, peer: int) -> float:
        """Suspicion level of ``observer`` about ``peer``: ``>= 1.0``
        means suspect (miss count crossed the threshold, or the RC layer
        flushed a heartbeat toward the peer)."""
        if self._flushed.get((observer, peer), False):
            return 1.0
        elapsed = self.env.now - self._last_seen[(observer, peer)]
        misses = max(0.0, elapsed / self.config.interval_ns - 1.0)
        return misses / self.config.miss_threshold

    def _observers_of(self, peer: int) -> List[int]:
        return [
            node
            for node in range(self.size)
            if node != peer and not self._down.get(node, False)
        ]

    def _record(self, kind: str, node: int, reason: str = "") -> None:
        self.events.append((self.env.now, kind, node, reason))
        if len(self.events) > self.config.max_events:
            del self.events[0 : len(self.events) - self.config.max_events]

    def record_admin_event(self, kind: str, node: int, reason: str = "") -> None:
        """Administrative event feed (``FpgaCluster.note_admin_event``):
        crashes, restores, drains, upgrades and migrations land in the
        same timestamped log as detector events, reason string included,
        so the report shows *why* a node went away, not just that it did."""
        self._record(kind, node, reason)
        self.admin_events += 1

    def poll_once(self) -> None:
        """One detector pass: accrue suspicion, edge-trigger events."""
        self.polls += 1
        now = self.env.now
        grace = 2.0 * self.config.interval_ns
        for peer in range(self.size):
            observers = self._observers_of(peer)
            if not observers:
                continue
            if not self._down.get(peer, False):
                suspects = [
                    obs for obs in observers if self.phi(obs, peer) >= 1.0
                ]
                if len(suspects) == len(observers):
                    self._down[peer] = True
                    self.down_events += 1
                    self._record(
                        "node_down", peer,
                        "all live observers lost heartbeats",
                    )
            else:
                heard = [
                    obs
                    for obs in observers
                    if now - self._last_seen[(obs, peer)] <= grace
                ]
                if heard:
                    self._down[peer] = False
                    self.up_events += 1
                    self._record("node_up", peer, "heartbeats resumed")
        if self.telemetry is not None:
            self.last_snapshot = self.telemetry.snapshot()

    # ----------------------------------------------------------- report

    @property
    def down_nodes(self) -> List[int]:
        return [peer for peer in range(self.size) if self._down.get(peer, False)]

    def section(self) -> Dict:
        """The ``card_report()["health"]["cluster"]`` section."""
        return {
            "nodes": self.size,
            "down": self.down_nodes,
            "events": [
                {"time_ns": time, "kind": kind, "node": node, "reason": reason}
                for time, kind, node, reason in self.events
            ],
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
        }

    def export_metrics(self, registry) -> None:
        registry.counter("cluster.heartbeats_sent").value = self.heartbeats_sent
        registry.counter("cluster.heartbeats_received").value = (
            self.heartbeats_received
        )
        registry.counter("cluster.monitor_polls").value = self.polls
        registry.counter("cluster.node_down_events").value = self.down_events
        registry.counter("cluster.node_up_events").value = self.up_events
        registry.counter("cluster.heartbeat_rearms").value = self.rearms
        registry.counter("cluster.admin_events").value = self.admin_events
        registry.gauge("cluster.nodes_suspected").set(len(self.down_nodes))
