"""Harvest one card's live hardware counters into a MetricsRegistry.

Every hardware model keeps plain integer counters on itself (the same
pattern the fault subsystem uses) so the hot paths never pay for metric
plumbing; this module is the read side that folds them into the canonical
``domain.metric`` namespace.  ``card_report()`` calls it to populate the
report's ``telemetry`` section, and a cluster can ``merge()`` the
per-node registries for a fabric-wide view.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .metrics import MetricsRegistry

__all__ = ["collect_card_metrics", "collect_cluster_metrics", "ClusterTelemetry"]


def _set_counter(registry: MetricsRegistry, name: str, value: int) -> None:
    counter = registry.counter(name)
    counter.value = int(value)


def collect_card_metrics(driver, registry: MetricsRegistry = None) -> MetricsRegistry:
    """Snapshot one driver/shell pair into (a fresh or given) registry."""
    reg = registry if registry is not None else MetricsRegistry()
    shell = driver.shell
    env = driver.env
    xdma = shell.static.xdma
    link = xdma.link

    # -- sim: the engine itself ------------------------------------------
    _set_counter(reg, "sim.events_processed", env.events_processed)
    queue = reg.gauge("sim.event_queue")
    queue.set(len(env._queue))
    queue.high_water = max(queue.high_water, env.queue_high_water)
    requests_served = sum(s.requests_served for s in driver.schedulers)
    if requests_served:
        reg.gauge("sim.events_per_request").set(
            env.events_processed / requests_served
        )
    if env.profiler is not None:
        # Wall-clock throughput is only knowable while a SimProfiler is
        # attached; report-only (DET001-waived inside the profiler).
        reg.gauge("sim.events_per_sec").set(env.profiler.events_per_sec)
    if env.sanitizer is not None:
        # Orphaned waiters visible right now (stuck-at-drain ledger) —
        # only knowable while the SimSanitizer tracks processes, so the
        # gauge appears exactly when REPRO_SANITIZE runs do.
        reg.gauge("sim.stuck_at_drain").set(len(env.sanitizer.stuck_ledger(env)))

    # -- pcie: link + XDMA channel groups --------------------------------
    _set_counter(reg, "pcie.h2c_bytes", link.h2c_bytes)
    _set_counter(reg, "pcie.c2h_bytes", link.c2h_bytes)
    _set_counter(reg, "pcie.h2c_transfers", link.h2c_transfers)
    _set_counter(reg, "pcie.c2h_transfers", link.c2h_transfers)
    _set_counter(reg, "pcie.replays", link.replays)
    for direction in ("h2c", "c2h"):
        gauge = reg.gauge(f"pcie.{direction}_in_flight")
        gauge.set(link.in_flight(direction))
        gauge.high_water = max(gauge.high_water, link.in_flight_high_water[direction])
    _set_counter(reg, "pcie.migrated_bytes", xdma.migration_bytes)
    _set_counter(reg, "pcie.bitstream_bytes", xdma.bitstream_bytes)
    _set_counter(reg, "pcie.interrupts_raised", xdma.interrupts_raised)
    _set_counter(reg, "pcie.interrupts_lost", xdma.interrupts_lost)

    # -- mem: HBM + TLB + driver paging ----------------------------------
    hbm = shell.dynamic.hbm
    if hbm is not None:
        _set_counter(reg, "mem.hbm_bytes_read", hbm.bytes_read)
        _set_counter(reg, "mem.hbm_bytes_written", hbm.bytes_written)
        _set_counter(reg, "mem.hbm_channel_accesses", sum(hbm.channel_accesses))
        busiest = reg.gauge("mem.hbm_busiest_channel_accesses")
        busiest.set(max(hbm.channel_accesses, default=0))
        _set_counter(reg, "mem.hbm_ecc_corrected", hbm.ecc_corrected)
        _set_counter(reg, "mem.hbm_ecc_uncorrected", hbm.ecc_uncorrected)
    tlb_hits = tlb_misses = tlb_evictions = 0
    for mmu in shell.dynamic.mmus.values():
        tlb_hits += mmu.tlb.hits
        tlb_misses += mmu.tlb.misses
        tlb_evictions += mmu.tlb.evictions
    _set_counter(reg, "mem.tlb_hits", tlb_hits)
    _set_counter(reg, "mem.tlb_misses", tlb_misses)
    _set_counter(reg, "mem.tlb_evictions", tlb_evictions)
    _set_counter(reg, "mem.page_faults", driver.page_faults)
    _set_counter(reg, "mem.tlb_walks", driver.tlb_walks)
    _set_counter(reg, "mem.migrated_bytes", driver.migrated_bytes)
    _set_counter(
        reg,
        "mem.tlb_pinned_evictions",
        sum(m.tlb.pinned_evictions for m in shell.dynamic.mmus.values()),
    )
    reg.gauge("mem.tlb_pinned").set(
        sum(m.tlb.pinned_occupancy for m in shell.dynamic.mmus.values())
    )

    # -- ring: the descriptor-ring command path --------------------------
    _set_counter(reg, "ring.doorbells", driver.ring_doorbells)
    _set_counter(reg, "ring.doorbells_lost", driver.ring_doorbells_lost)
    _set_counter(reg, "ring.descriptors", driver.ring_descriptors)
    _set_counter(reg, "ring.batches", driver.ring_batches)
    _set_counter(reg, "ring.full_stalls", driver.ring_full_stalls)
    _set_counter(reg, "ring.mr_registered", driver.mrs_registered)
    _set_counter(reg, "ring.mr_deregistered", driver.mrs_deregistered)
    if driver.ring_doorbells:
        reg.gauge("ring.descriptors_per_doorbell").set(
            driver.ring_descriptors / driver.ring_doorbells
        )

    # -- net: RDMA / TCP stacks (joins the PR 1 fault counters) ----------
    rdma = shell.dynamic.rdma
    if rdma is not None:
        for key, value in rdma.stats.items():
            _set_counter(reg, f"net.rdma_{key}", value)
        for qpn in sorted(rdma.qp_stats):
            per_qp = rdma.qp_stats[qpn]
            _set_counter(reg, f"net.qp.{qpn}.ops", per_qp["ops"])
            _set_counter(reg, f"net.qp.{qpn}.bytes", per_qp["bytes"])
        # DCQCN reaction-point state: the per-QP paced rate (Gbit/s) and
        # the CNPs that shaped it.
        for qpn in sorted(rdma.qp_rates):
            state = rdma.qp_rates[qpn]
            reg.gauge(f"net.qp.{qpn}.rate_gbps").set(state.current_rate * 8.0)
            _set_counter(reg, f"net.qp.{qpn}.cnps", state.cnps)
    tcp = shell.dynamic.tcp
    if tcp is not None:
        for key, value in tcp.stats.items():
            _set_counter(reg, f"net.tcp_{key}", value)

    # -- scheduler: every AppScheduler attached to this driver -----------
    for scheduler in driver.schedulers:
        scheduler.export_metrics(reg)

    # -- health: watchdog verdicts + recovery pipeline -------------------
    monitor = driver.health
    if monitor is not None:
        _set_counter(reg, "health.polls", monitor.polls)
        _set_counter(reg, "health.hung_verdicts", monitor.hung_verdicts)
        _set_counter(
            reg,
            "health.watchdog_trips",
            sum(w.trips for w in monitor._watchdogs.values()),
        )
    recovery = driver.recovery
    if recovery is not None:
        _set_counter(reg, "health.recoveries", recovery.total_recoveries())
        _set_counter(reg, "health.quarantines", recovery.quarantines)
        _set_counter(reg, "health.completions_failed", recovery.completions_failed)
        _set_counter(reg, "health.descriptors_dropped", recovery.descriptors_dropped)
        _set_counter(reg, "health.tlb_entries_flushed", recovery.tlb_entries_flushed)

    return reg


def _collect_fabric(reg: MetricsRegistry, cluster) -> None:
    """Fabric-scope metrics shared by the full and incremental roll-ups:
    switch counters plus the cluster fault-tolerance layer."""
    switch = cluster.switch
    _set_counter(reg, "net.switch_forwarded", switch.forwarded)
    _set_counter(reg, "net.switch_dropped", switch.dropped)
    _set_counter(reg, "net.switch_corrupted", switch.corrupted)
    _set_counter(reg, "net.switch_duplicated", switch.duplicated)
    _set_counter(reg, "net.switch_reordered", switch.reordered)
    _set_counter(reg, "net.switch_unroutable", switch.unroutable)
    _set_counter(reg, "net.switch_crashes", getattr(switch, "crashes", 0))
    _set_counter(reg, "net.switch_link_flaps", getattr(switch, "link_flaps", 0))
    _set_counter(
        reg, "net.switch_partitions", getattr(switch, "partitions_created", 0)
    )
    # Congestion datapath: queueing, ECN marking, PFC, storm watchdog.
    _set_counter(reg, "net.switch_tail_drops", getattr(switch, "tail_drops", 0))
    _set_counter(reg, "net.switch_ecn_marks", getattr(switch, "ecn_marks", 0))
    _set_counter(
        reg, "net.switch_ecn_suppressed", getattr(switch, "ecn_suppressed", 0)
    )
    _set_counter(
        reg, "net.switch_pause_frames_sent", getattr(switch, "pause_frames_sent", 0)
    )
    _set_counter(
        reg,
        "net.switch_pause_frames_received",
        getattr(switch, "pause_frames_received", 0),
    )
    _set_counter(
        reg,
        "net.switch_pause_frames_dropped",
        getattr(switch, "pause_frames_dropped", 0),
    )
    _set_counter(reg, "net.switch_pfc_storms", getattr(switch, "pfc_storms", 0))
    egress_ports = getattr(switch, "egress_ports", None)
    if egress_ports is not None:
        for index, (label, port) in enumerate(egress_ports()):
            depth = reg.gauge(f"net.port.{index}.queue_bytes")
            depth.set(port.queued_bytes)
            depth.high_water = max(depth.high_water, port.queue_high_water)
    _set_counter(reg, "cluster.node_crashes", getattr(cluster, "crashes", 0))
    _set_counter(reg, "cluster.node_restores", getattr(cluster, "restores", 0))
    _set_counter(reg, "cluster.node_drains", getattr(cluster, "drains", 0))
    _set_counter(reg, "cluster.node_upgrades", getattr(cluster, "upgrades", 0))
    _set_counter(
        reg, "cluster.tenant_migrations", getattr(cluster, "migrations", 0)
    )
    migrator = getattr(cluster, "migrator", None)
    if migrator is not None:
        migrator.export_metrics(reg)
    nodes_alive = reg.gauge("cluster.nodes_alive")
    nodes_alive.set(sum(1 for node in cluster.nodes if getattr(node, "alive", True)))
    monitor = getattr(cluster, "monitor", None)
    if monitor is not None:
        monitor.export_metrics(reg)
    seen_stats = []
    for group in getattr(cluster, "collective_groups", []):
        # Rebuilt groups share their predecessor's lifetime stats dict;
        # count each communicator lineage once.
        if any(group.stats is stats for stats in seen_stats):
            continue
        seen_stats.append(group.stats)
        group.export_metrics(reg)


def collect_cluster_metrics(cluster) -> MetricsRegistry:
    """Fabric-wide roll-up: merge every node's registry, add the switch."""
    reg = MetricsRegistry()
    for node in cluster.nodes:
        reg.merge(collect_card_metrics(node.driver))
    _collect_fabric(reg, cluster)
    return reg


class ClusterTelemetry:
    """Incremental cluster snapshots for monitoring loops.

    A monitoring tick over a big cluster must not rescan every node's QP
    dicts when nothing moved.  Each node gets a cheap *fingerprint* — a
    tuple of its busiest plain-int counters — and its full registry is
    re-collected only when the fingerprint changed since the last
    snapshot; unchanged nodes reuse the cached registry (their
    env-global ``sim.*`` values go stale until the next change, by
    design).  Fabric-scope metrics (switch, cluster health, collectives)
    are cheap and always fresh.  :class:`repro.health.ClusterMonitor` is
    the first consumer.
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self._node_regs: Dict[int, MetricsRegistry] = {}
        self._fingerprints: Dict[int, Tuple] = {}
        self.refreshes = 0
        self.node_rescans = 0
        self.node_skips = 0

    @staticmethod
    def _fingerprint(node) -> Tuple:
        driver = node.driver
        shell = driver.shell
        link = shell.static.xdma.link
        rdma = shell.dynamic.rdma
        tx = rx = flushes = 0
        if rdma is not None:
            tx = rdma.stats["tx_packets"]
            rx = rdma.stats["rx_packets"]
            flushes = rdma.stats["wr_flushes"]
        sched = 0
        for scheduler in driver.schedulers:
            sched += (
                scheduler.requests_served
                + scheduler.reconfigurations
                + scheduler.rejected_submits
            )
        return (
            tx,
            rx,
            flushes,
            link.h2c_bytes,
            link.c2h_bytes,
            driver.page_faults,
            driver.node_down,
            sched,
        )

    def snapshot(self) -> MetricsRegistry:
        """Delta-aware :func:`collect_cluster_metrics` equivalent."""
        self.refreshes += 1
        reg = MetricsRegistry()
        for node in self.cluster.nodes:
            fingerprint = self._fingerprint(node)
            cached = self._node_regs.get(node.index)
            if cached is None or fingerprint != self._fingerprints.get(node.index):
                cached = collect_card_metrics(node.driver)
                self._node_regs[node.index] = cached
                self._fingerprints[node.index] = fingerprint
                self.node_rescans += 1
            else:
                self.node_skips += 1
            reg.merge(cached)
        _collect_fabric(reg, self.cluster)
        return reg
