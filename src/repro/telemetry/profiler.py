"""Simulation profiler: where does the DES engine actually spend time?

Attaches to an :class:`repro.sim.engine.Environment` through the engine's
``profiler`` hook: while attached, every event's callbacks run under a
wall-clock stopwatch and are attributed to a *component* — the name of
the simulated process the callback resumes (``rdma-rx``, ``drv-cq-rd-0``,
``sched-v0``, ...), with trailing instance numbers folded together so
32 HBM channel processes report as one row.

Three numbers per component:

* ``events``   — callbacks dispatched into it,
* ``wall_s``   — host CPU seconds spent inside them (what to optimise),
* ``sim_ns``   — simulated time that elapsed while its events were at
  the head of the queue (what the model itself thinks is slow).

Detach (or use the context manager) to restore zero-overhead stepping:
with no profiler attached the engine takes a single ``is None`` branch.
"""

from __future__ import annotations

import re
import time  # repro: allow-file[DET001] wall-clock attribution is this profiler's purpose; measurements are report-only and never feed back into the event stream
from typing import Any, Dict, List, Optional

__all__ = ["SimProfiler"]

#: "drv-cq-rd-0" -> "drv-cq-rd", "sched-v0" -> "sched", "ch12" -> "ch"
_INSTANCE_SUFFIX = re.compile(r"([-_]v?\d+|\d+)$")


def component_of(callback: Any, event: Any) -> str:
    """Group key for one callback: owning process name, else event type."""
    owner = getattr(callback, "__self__", None)
    name = getattr(owner, "name", "")
    if name:
        return _INSTANCE_SUFFIX.sub("", name) or name
    return type(event).__name__


class SimProfiler:
    """Per-component events / wall-time / sim-time ledger."""

    def __init__(self):
        self.events: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}
        self.sim_ns: Dict[str, float] = {}
        self.total_events = 0
        self.total_wall_s = 0.0
        self._env = None
        self._last_now: Optional[float] = None

    # ------------------------------------------------------------ lifecycle

    def attach(self, env) -> "SimProfiler":
        if env.profiler is not None:
            raise RuntimeError("environment already has a profiler attached")
        env.profiler = self
        self._env = env
        self._last_now = env.now
        return self

    def detach(self) -> "SimProfiler":
        if self._env is not None and self._env.profiler is self:
            self._env.profiler = None
        self._env = None
        return self

    def __enter__(self) -> "SimProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ----------------------------------------------------------- engine hook

    def run_callbacks(self, event, callbacks) -> None:
        """Called by ``Environment.step`` in place of the plain loop."""
        now = event.env.now
        sim_delta = 0.0
        if self._last_now is not None:
            sim_delta = now - self._last_now
        self._last_now = now
        first = True
        for callback in callbacks:
            component = component_of(callback, event)
            begin = time.perf_counter()
            callback(event)
            elapsed = time.perf_counter() - begin
            self.events[component] = self.events.get(component, 0) + 1
            self.wall_s[component] = self.wall_s.get(component, 0.0) + elapsed
            if first:
                # Sim-time advances once per engine step; attribute it to
                # the event's primary consumer.
                self.sim_ns[component] = self.sim_ns.get(component, 0.0) + sim_delta
                first = False
            self.total_events += 1
            self.total_wall_s += elapsed
        if first and callbacks is not None:
            # Event with no callbacks still advanced the clock.
            key = type(event).__name__
            self.sim_ns[key] = self.sim_ns.get(key, 0.0) + sim_delta

    # --------------------------------------------------------------- results

    @property
    def events_per_sec(self) -> float:
        """Engine throughput: dispatched events per host CPU second.

        The engine's headline speed gauge — wall-clock here is report-only
        (see the DET001 allow-file waiver above) and never feeds back into
        the simulation.
        """
        if self.total_wall_s <= 0.0:
            return 0.0
        return self.total_events / self.total_wall_s

    def report(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Rows sorted by wall time (the optimisation target), hottest first."""
        components = set(self.events) | set(self.sim_ns)
        rows = [
            {
                "component": c,
                "events": self.events.get(c, 0),
                "wall_s": round(self.wall_s.get(c, 0.0), 6),
                "sim_ns": round(self.sim_ns.get(c, 0.0), 1),
            }
            for c in components
        ]
        rows.sort(key=lambda r: (-r["wall_s"], r["component"]))
        return rows[:top] if top else rows

    def format(self, top: int = 12) -> str:
        lines = [f"{'component':<22} {'events':>9} {'wall ms':>10} {'sim ms':>12}"]
        for row in self.report(top):
            lines.append(
                f"{row['component']:<22} {row['events']:>9} "
                f"{row['wall_s'] * 1e3:>10.2f} {row['sim_ns'] / 1e6:>12.3f}"
            )
        lines.append(
            f"{'TOTAL':<22} {self.total_events:>9} {self.total_wall_s * 1e3:>10.2f}"
        )
        return "\n".join(lines)
