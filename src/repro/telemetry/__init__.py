"""Card-wide telemetry: metrics, spans and a simulation profiler.

The observability spine of the reproduction, mirroring the per-vFPGA
statistics and debug registers the Coyote v2 shell exposes to operators:

* :class:`MetricsRegistry` — counters / gauges / mergeable fixed-bucket
  histograms under dot-separated ``domain.metric`` names,
* :class:`SpanRecorder` — sim-time spans with parent/child links,
  layered on :class:`repro.sim.tracing.Tracer`,
* :class:`SimProfiler` — events / wall-time / sim-time per simulated
  component, for finding hot paths in the DES engine,
* :func:`collect_card_metrics` — fold one card's live hardware counters
  into a registry (what ``card_report()['telemetry']`` shows).
"""

from .collect import ClusterTelemetry, collect_card_metrics, collect_cluster_metrics
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SimProfiler
from .spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "SimProfiler",
    "collect_card_metrics",
    "collect_cluster_metrics",
    "ClusterTelemetry",
]
