"""Card-wide metrics: counters, gauges and mergeable fixed-bucket histograms.

The real Coyote v2 shell exposes run-time statistics and debug registers
per vFPGA (readable over the shell-control BAR) so operators can observe
a multi-tenant card.  This module is the simulation's equivalent register
file: a :class:`MetricsRegistry` of named metrics that every layer of the
stack writes into and ``card_report()`` / the perf harness read out.

Naming scheme (see DESIGN.md): metric names are dot-separated
``domain.metric`` paths, with the first segment naming the hardware
domain (``sim``, ``pcie``, ``mem``, ``net``, ``scheduler``, ...).
``MetricsRegistry.snapshot()`` folds the paths back into nested dicts so
the telemetry section of a card report mirrors the domain structure.

Histograms use *fixed* bucket bounds so that two registries — e.g. from
two nodes of a cluster, or two runs of the same benchmark — can be merged
bucket-by-bucket without resampling, exactly like hardware counters that
are only ever added up.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import observe_metric

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_value(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level that also remembers its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def merge(self, other: "Gauge") -> None:
        # Levels add (e.g. in-flight across nodes); high-water takes max.
        self.value += other.value
        self.high_water = max(self.high_water, other.high_water)

    def to_value(self) -> Dict[str, float]:
        return {"value": self.value, "high_water": self.high_water}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value}, hw={self.high_water})"


class Histogram:
    """Fixed-bucket histogram, mergeable like a bank of hardware counters.

    ``bounds`` are the inclusive upper edges of each bucket; one implicit
    overflow bucket catches everything above the last bound.  Percentiles
    are estimated by linear interpolation inside the owning bucket, which
    is as good as fixed-bucket data allows and — unlike sample lists —
    costs O(buckets) memory no matter how long the run is.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bounds must be strictly increasing")
        self.name = name
        self.bounds = ordered
        self.buckets = [0] * (len(ordered) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @classmethod
    def exponential(
        cls, name: str, start: float = 1e3, factor: float = 10.0, count: int = 7
    ) -> "Histogram":
        """Buckets ``start, start*factor, ...`` — the default ns-latency
        scale spans 1 us .. 1 s."""
        return cls(name, [start * factor**i for i in range(count)])

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile estimate from the buckets."""
        if not self.count:
            return 0.0
        target = max(0.0, min(100.0, p)) / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for i, filled in enumerate(self.buckets):
            if not filled:
                continue
            upper = self.bounds[i] if i < len(self.bounds) else (self.max or lower)
            if cumulative + filled >= target:
                frac = (target - cumulative) / filled
                lo = max(lower, self.min if i == 0 and self.min is not None else lower)
                return lo + frac * (min(upper, self.max or upper) - lo)
            cumulative += filled
            lower = upper
        return self.max if self.max is not None else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        for i, filled in enumerate(other.buckets):
            self.buckets[i] += filled
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def to_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": dict(zip([*map(str, self.bounds), "+inf"], self.buckets)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"


class MetricsRegistry:
    """A named collection of metrics — the card's statistics register file.

    Accessors are get-or-create, so components can write
    ``registry.counter("pcie.replays").inc()`` without registration
    ceremony; asking for an existing name with a different metric type is
    an error (two components fighting over one register).
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        # Under REPRO_SANITIZE the sanitizer cross-checks the name against
        # the component.metric convention and pins name -> kind across
        # *all* registries (a clash between two nodes' registries would
        # only surface much later, at cluster merge); no-op otherwise.
        observe_metric(name, kind.__name__)
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        if bounds is not None:
            return self._get(name, Histogram, lambda: Histogram(name, bounds))
        return self._get(name, Histogram, lambda: Histogram.exponential(name))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's values into this one (cluster roll-up)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                # Re-create rather than alias, so later merges don't write
                # through into the source registry.
                if isinstance(metric, Counter):
                    self.counter(name).merge(metric)
                elif isinstance(metric, Gauge):
                    self.gauge(name).merge(metric)
                else:
                    self.histogram(name, metric.bounds).merge(metric)
            else:
                mine.merge(metric)
        return self

    def snapshot(self) -> Dict[str, Any]:
        """Nested dict keyed by the dot-separated metric path segments."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            parts = name.split(".")
            node = out
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = self._metrics[name].to_value()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"
