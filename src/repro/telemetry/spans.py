"""Lightweight spans: sim-time intervals with parent/child attribution.

Layered on :class:`repro.sim.tracing.Tracer`: every finished span is also
emitted as a trace record (source = the span's component, kind =
``"span"``), so existing trace tooling — including the bounded
ring-buffer mode — sees spans for free.

Spans measure *simulated* time.  A span's ``self_ns`` is its duration
minus the duration of its direct children, which is what makes per-layer
attribution honest: a driver reconfiguration span that spends 95% of its
time inside an ICAP-programming child span is not a driver hot spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.tracing import Tracer

__all__ = ["Span", "SpanRecorder"]


@dataclass
class Span:
    """One timed operation; ``end < 0`` while still open."""

    span_id: int
    component: str
    name: str
    start: float
    parent_id: Optional[int] = None
    end: float = -1.0
    child_ns: float = 0.0
    payload: Any = None

    @property
    def open(self) -> bool:
        return self.end < 0.0

    @property
    def duration_ns(self) -> float:
        return 0.0 if self.open else self.end - self.start

    @property
    def self_ns(self) -> float:
        """Duration not covered by direct children."""
        return max(0.0, self.duration_ns - self.child_ns)


class SpanRecorder:
    """Creates, links and aggregates spans against a simulation clock.

    Usage from process code::

        span = recorder.begin("driver", "reconfigure")
        ...                         # (simulated work)
        recorder.finish(span)

    Nesting is explicit — ``begin(parent=span)`` — because simulated
    processes interleave, so there is no implicit "current" span.
    """

    def __init__(self, env, tracer: Optional[Tracer] = None):
        self.env = env
        self.tracer = tracer
        self._next_id = 0
        self.finished: List[Span] = []
        self._open: Dict[int, Span] = {}

    def begin(
        self,
        component: str,
        name: str,
        parent: Optional[Span] = None,
        payload: Any = None,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            component=component,
            name=name,
            start=self.env.now,
            parent_id=parent.span_id if parent is not None else None,
            payload=payload,
        )
        self._next_id += 1
        self._open[span.span_id] = span
        return span

    def finish(self, span: Span) -> Span:
        if not span.open:
            raise ValueError(f"span {span.name!r} already finished")
        span.end = self.env.now
        self._open.pop(span.span_id, None)
        if span.parent_id is not None:
            parent = self._open.get(span.parent_id)
            if parent is not None:
                parent.child_ns += span.duration_ns
        self.finished.append(span)
        if self.tracer is not None:
            self.tracer.emit(
                span.end,
                span.component,
                "span",
                {
                    "name": span.name,
                    "start": span.start,
                    "duration_ns": span.duration_ns,
                    "parent": span.parent_id,
                },
            )
        return span

    @property
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def by_component(self) -> Dict[str, Dict[str, float]]:
        """Per-component sim-time attribution over all finished spans."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.finished:
            row = out.setdefault(
                span.component, {"count": 0, "total_ns": 0.0, "self_ns": 0.0}
            )
            row["count"] += 1
            row["total_ns"] += span.duration_ns
            row["self_ns"] += span.self_ns
        return out

    def format(self) -> str:
        """Aligned per-component summary, hottest self-time first."""
        rows = sorted(
            self.by_component().items(), key=lambda kv: -kv[1]["self_ns"]
        )
        lines = [f"{'component':<20} {'count':>7} {'total ms':>10} {'self ms':>10}"]
        for component, row in rows:
            lines.append(
                f"{component:<20} {row['count']:>7} "
                f"{row['total_ns'] / 1e6:>10.2f} {row['self_ns'] / 1e6:>10.2f}"
            )
        return "\n".join(lines)
