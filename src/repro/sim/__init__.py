"""Discrete-event simulation substrate for the Coyote v2 reproduction."""

from .clock import FABRIC_CLOCK, HBM_CLOCK, PCIE_CLOCK, Clock
from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, Resource, Store
from .tracing import LatencyStats, ThroughputMeter, TraceRecord, Tracer, mean_std

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "Container",
    "Clock",
    "FABRIC_CLOCK",
    "HBM_CLOCK",
    "PCIE_CLOCK",
    "Tracer",
    "TraceRecord",
    "ThroughputMeter",
    "LatencyStats",
    "mean_std",
]
