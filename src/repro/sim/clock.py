"""Clock-domain helpers: conversions between cycles, frequencies and ns.

The shell uses several clock domains (paper §9.1): the fabric/system clock
(250 MHz on the evaluated Alveo U55C), the HBM clock (450 MHz) and the
PCIe user clock.  Simulated time is nanoseconds throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Clock", "FABRIC_CLOCK", "HBM_CLOCK", "PCIE_CLOCK"]


@dataclass(frozen=True)
class Clock:
    """A clock domain defined by its frequency in MHz."""

    name: str
    freq_mhz: float

    @property
    def period_ns(self) -> float:
        return 1000.0 / self.freq_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.period_ns

    def bytes_per_ns(self, bytes_per_cycle: float) -> float:
        """Bandwidth of a bus moving ``bytes_per_cycle`` each cycle.

        bytes/ns is numerically equal to GB/s.
        """
        return bytes_per_cycle / self.period_ns


# Reference clock domains from the paper's evaluation platform (Alveo U55C).
FABRIC_CLOCK = Clock("fabric", 250.0)
HBM_CLOCK = Clock("hbm", 450.0)
PCIE_CLOCK = Clock("pcie", 250.0)
