"""Shared-resource primitives built on the event engine.

These model the contended hardware resources in the shell: link ports,
queue slots, memory-channel grants, credit pools.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "Container"]


class _Request(Event):
    """Pending acquisition of a resource slot; usable as a context token."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO queuing (e.g. a bus grant)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self._waiting: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        return len(self.users)

    def request(self) -> _Request:
        req = _Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: _Request) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource")
        while self._waiting and len(self.users) < self.capacity:
            nxt = self._waiting.popleft()
            if nxt._abandoned:
                continue  # requester was interrupted while queued
            self.users.append(nxt)
            nxt.succeed(nxt)


class Store:
    """A FIFO buffer of Python objects with optional bounded capacity.

    ``put`` blocks when full; ``get`` blocks when empty.  This is the
    channel primitive under every AXI stream and descriptor queue.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def free(self) -> float:
        return self.capacity - len(self.items)

    def _next_getter(self) -> Optional[Event]:
        while self._getters:
            getter = self._getters.popleft()
            if not getter._abandoned:
                return getter
        return None

    def _next_putter(self) -> Optional[tuple]:
        while self._putters:
            entry = self._putters.popleft()
            if not entry[0]._abandoned:
                return entry
        return None

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        getter = self._next_getter()
        if getter is not None:
            # Hand the item straight to the oldest waiting getter.
            getter.succeed(item)
            event.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            # A slot freed up: admit a blocked putter, if any.
            entry = self._next_putter()
            if entry is not None:
                put_event, item = entry
                self.items.append(item)
                put_event.succeed()
        else:
            entry = self._next_putter()
            if entry is not None:
                put_event, item = entry
                put_event.succeed()
                event.succeed(item)
            else:
                self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        entry = self._next_putter()
        if entry is not None:
            put_event, pending = entry
            self.items.append(pending)
            put_event.succeed()
        return item

    def clear(self) -> int:
        """Drop every buffered item and unblock every waiting putter.

        Models a hardware FIFO reset: the contents (including items that
        blocked putters were still trying to push) are gone, but the
        producers themselves proceed as if their write landed.  Returns
        the number of items discarded.
        """
        dropped = len(self.items)
        self.items.clear()
        while True:
            entry = self._next_putter()
            if entry is None:
                break
            put_event, _item = entry
            put_event.succeed()
            dropped += 1
        return dropped


class Container:
    """A continuous quantity (e.g. a credit pool measured in bytes)."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        if amount > self.capacity:
            raise SimulationError("get amount exceeds capacity")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and self._putters[0][0]._abandoned:
                self._putters.popleft()
                progressed = True
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progressed = True
            while self._getters and self._getters[0][0]._abandoned:
                self._getters.popleft()
                progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed()
                    progressed = True
