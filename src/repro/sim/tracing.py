"""Lightweight event tracing and throughput/latency statistics.

Every shell component can emit trace records; benchmarks aggregate them
into the series the paper's figures plot.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "ThroughputMeter", "LatencyStats", "mean_std"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: (time, source component, event kind, payload)."""

    time: float
    source: str
    kind: str
    payload: Any = None


class Tracer:
    """Collects trace records; filterable by source/kind.

    By default the record list is unbounded, which is what benchmarks
    want (complete data, bounded runs).  Long-running daemon and chaos
    workloads instead pass ``max_records`` to get a ring buffer: the
    newest ``max_records`` records are kept, older ones are discarded and
    counted in ``dropped`` — memory stays flat no matter how long the
    simulation runs.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None for unbounded)")
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        self.records = [] if max_records is None else deque(maxlen=max_records)

    def emit(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        if self.enabled:
            if self.max_records is not None and len(self.records) == self.max_records:
                self.dropped += 1
            self.records.append(TraceRecord(time, source, kind, payload))

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceRecord]:
        out = self.records
        if source is not None:
            out = [r for r in out if r.source == source]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return list(out)

    def clear(self) -> None:
        self.records.clear()


@dataclass
class ThroughputMeter:
    """Accumulates (bytes, start, end) to report achieved bandwidth."""

    name: str = ""
    total_bytes: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def record(self, nbytes: int, start: float, end: float) -> None:
        self.total_bytes += nbytes
        self.first_time = start if self.first_time is None else min(self.first_time, start)
        self.last_time = end if self.last_time is None else max(self.last_time, end)

    @property
    def elapsed_ns(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def gbps(self) -> float:
        """Achieved throughput in gigabytes per second (== bytes/ns)."""
        elapsed = self.elapsed_ns
        return self.total_bytes / elapsed if elapsed > 0 else 0.0

    @property
    def mbps(self) -> float:
        return self.gbps * 1000.0


@dataclass
class LatencyStats:
    """Streaming latency statistics (ns)."""

    name: str = ""
    samples: List[float] = field(default_factory=list)

    def record(self, latency_ns: float) -> None:
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def percentile(self, p: float) -> float:
        """Linear interpolation between closest ranks (numpy's default).

        Nearest-rank-via-``round()`` was subtly wrong here: Python rounds
        half to even, so p50 of an even-length sample landed on whichever
        neighbouring rank was even — inconsistent across sample sizes.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0.0, min(100.0, p)) / 100.0 * (len(ordered) - 1)
        lower = int(rank)
        fraction = rank - lower
        if fraction == 0.0:
            return ordered[lower]
        return ordered[lower] + fraction * (ordered[lower + 1] - ordered[lower])


def mean_std(values: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and standard deviation of an iterable of floats."""
    data = list(values)
    if not data:
        return 0.0, 0.0
    mu = sum(data) / len(data)
    if len(data) < 2:
        return mu, 0.0
    var = sum((v - mu) ** 2 for v in data) / (len(data) - 1)
    return mu, math.sqrt(var)
