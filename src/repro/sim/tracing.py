"""Lightweight event tracing and throughput/latency statistics.

Every shell component can emit trace records; benchmarks aggregate them
into the series the paper's figures plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "ThroughputMeter", "LatencyStats", "mean_std"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: (time, source component, event kind, payload)."""

    time: float
    source: str
    kind: str
    payload: Any = None


class Tracer:
    """Collects trace records; filterable by source/kind."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, source, kind, payload))

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceRecord]:
        out = self.records
        if source is not None:
            out = [r for r in out if r.source == source]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return list(out)

    def clear(self) -> None:
        self.records.clear()


@dataclass
class ThroughputMeter:
    """Accumulates (bytes, start, end) to report achieved bandwidth."""

    name: str = ""
    total_bytes: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def record(self, nbytes: int, start: float, end: float) -> None:
        self.total_bytes += nbytes
        self.first_time = start if self.first_time is None else min(self.first_time, start)
        self.last_time = end if self.last_time is None else max(self.last_time, end)

    @property
    def elapsed_ns(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def gbps(self) -> float:
        """Achieved throughput in gigabytes per second (== bytes/ns)."""
        elapsed = self.elapsed_ns
        return self.total_bytes / elapsed if elapsed > 0 else 0.0

    @property
    def mbps(self) -> float:
        return self.gbps * 1000.0


@dataclass
class LatencyStats:
    """Streaming latency statistics (ns)."""

    name: str = ""
    samples: List[float] = field(default_factory=list)

    def record(self, latency_ns: float) -> None:
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[idx]


def mean_std(values: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and standard deviation of an iterable of floats."""
    data = list(values)
    if not data:
        return 0.0, 0.0
    mu = sum(data) / len(data)
    if len(data) < 2:
        return mu, 0.0
    var = sum((v - mu) ** 2 for v in data) / (len(data) - 1)
    return mu, math.sqrt(var)
