"""Virtual-time rate server: O(1)-event bandwidth accounting.

Models a fixed-rate resource (a pipeline issuing one block per cycle, a
bus moving N bytes per cycle) without generating one event per cycle: each
reservation books ``amount / rate`` time on a virtual clock that never
runs ahead of demand.  FIFO order; work-conserving.
"""

from __future__ import annotations

from typing import Generator

from .engine import Environment
from .resources import Resource

__all__ = ["RateServer"]


class RateServer:
    """Serialises reservations at ``units_per_ns``."""

    def __init__(self, env: Environment, units_per_ns: float, name: str = "rate"):
        if units_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.units_per_ns = units_per_ns
        self.name = name
        self._order = Resource(env, capacity=1)  # FIFO admission
        self._virtual_free = 0.0  # when the server next becomes idle
        self.total_units = 0.0

    def reserve(self, units: float) -> Generator:
        """Occupy the server for ``units`` worth of work; returns when done."""
        if units < 0:
            raise ValueError("units must be non-negative")
        grant = self._order.request()
        yield grant
        try:
            start = max(self.env.now, self._virtual_free)
            finish = start + units / self.units_per_ns
            self._virtual_free = finish
            self.total_units += units
            # Hold FIFO order only until our slot begins, then let the next
            # requester book behind us while our work "flows through".
            if start > self.env.now:
                yield self.env.timeout(start - self.env.now)
        finally:
            self._order.release(grant)
        if finish > self.env.now:
            yield self.env.timeout(finish - self.env.now)

    @property
    def utilization_until(self) -> float:
        """Virtual time at which currently-booked work completes."""
        return self._virtual_free
