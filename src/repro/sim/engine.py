"""Deterministic discrete-event simulation engine.

This is the substrate every hardware model in the reproduction runs on.  It
follows the classic generator-based design (as popularised by SimPy, which is
not available offline): simulated entities are Python generators that yield
:class:`Event` objects to suspend themselves, and an :class:`Environment`
advances a priority queue of scheduled events.

Simulated time is a float in **nanoseconds**.  All hardware models in
``repro`` agree on this unit; see :mod:`repro.sim.clock` for cycle helpers.

Fast-path design (pinned by ``tests/test_engine_conformance.py``):

* Events **are** their own heap entries: the ``(time, priority, seq)``
  schedule key lives in ``__slots__`` on the event and ``__lt__`` compares
  it, so scheduling allocates no key tuples and ``step()`` unpacks none.
* Internal one-shot relays (process kick-off, resume-after-processed,
  interrupts, :meth:`Environment.sleep`) come from a per-environment
  **free list** and are recycled right after dispatch.  Only events that
  are never exposed to user code are pooled; anything a process can hold
  a reference to (timeouts it composed into conditions, completion
  events, processes) is never recycled.
* :meth:`Environment.run` drains through :meth:`Environment.run_batch`,
  which inlines the step body and checks ``until`` conditions per batch
  entry only where semantics require it.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


def _default_sanitizer():
    """The process-wide SimSanitizer when ``REPRO_SANITIZE`` is set.

    Lazy import: :mod:`repro.analysis` depends only on the stdlib, so
    this cannot cycle back into the engine; when sanitizing is off the
    import is skipped entirely and construction stays allocation-free.
    """
    import os

    if not os.environ.get("REPRO_SANITIZE"):
        return None
    from ..analysis.sanitizer import current

    return current()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities ensure deterministic ordering of simultaneous events.
URGENT = 0
NORMAL = 1

#: Free-list ceiling: enough to cover the relay burst of a deep process
#: tree without pinning unbounded memory on pathological workloads.
_POOL_LIMIT = 128


class Event:
    """A condition that may happen at some point in simulated time.

    Events start *pending*; once :meth:`succeed` or :meth:`fail` is called
    they become *triggered* and are scheduled for processing, after which all
    registered callbacks run and the event is *processed*.

    Lifecycle states (see DESIGN.md "Event engine internals"):
    pending (``_ok is None``, callbacks is a list) → triggered (``_ok``
    set; for a :class:`Timeout`, only once its delay elapsed) →
    processed (callbacks is ``None``; value/exception delivered).
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_scheduled",
        "_abandoned",
        "_defused",
        "_recycle",
        "_origin",
        "_time",
        "_prio",
        "_seq",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        # Creation-site stamp for the stuck-at-drain ledger: written only
        # while sanitizing, so the detached cost is one branch.  The
        # ``_origin`` slot stays unset otherwise (readers getattr it).
        if env.sanitizer is not None:
            env.sanitizer.on_event_created(self)
        #: Set when the only waiter was interrupted away; resources skip
        #: abandoned waiters rather than handing them items/grants.
        self._abandoned = False
        #: A failure whose exception was delivered somewhere (thrown into
        #: a process, or deliberately discarded) must not also escape
        #: ``step()``.
        self._defused = False
        #: Internal one-shot relays return to the environment free list
        #: right after dispatch; never set on user-visible events.
        self._recycle = False

    # The heap holds events directly: the schedule key lives in slots
    # (written by ``Environment._schedule``) and ``heapq`` orders via
    # ``__lt__`` — no per-entry key tuple is ever allocated.

    def __lt__(self, other: "Event") -> bool:
        if self._time != other._time:
            return self._time < other._time
        if self._prio != other._prio:
            return self._prio < other._prio
        return self._seq < other._seq

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> "Event":
        """Declare this event's failure handled out-of-band.

        A failed event whose exception was delivered somewhere else (a
        typed error handed to every waiter during recovery, an interrupt
        thrown into an abandoned verb) must not *also* escape
        :meth:`Environment.step` as an unhandled simulation failure.
        Call this before or after :meth:`fail`/:meth:`Process.interrupt`;
        it is idempotent and safe on events that end up succeeding.
        Returns the event so ``event.defuse().fail(exc)`` chains.
        """
        self._defused = True
        return self

    # Generator protocol so a bare event can be awaited from process code
    # via ``value = yield event``.


class Timeout(Event):
    """An event that triggers after a fixed delay.

    A timeout is scheduled at construction but — unlike the historical
    behaviour of presetting ``_ok`` — it does not report ``triggered``
    until its delay actually elapsed: the engine flips it to triggered
    at dispatch time (the ``_ok is None`` branch in the step loop).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self._value = value
        self.delay = delay
        env._schedule(self, delay=delay, priority=NORMAL)

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        raise SimulationError("a Timeout triggers by itself when its delay elapses")

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        raise SimulationError("a Timeout triggers by itself when its delay elapses")


class Process(Event):
    """Wraps a generator; the process event triggers when it returns.

    The generator yields :class:`Event` instances.  When a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown into it).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process() needs a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        if env.sanitizer is not None:
            env.sanitizer.on_process_created(self)
        # Kick off on the next event-loop iteration (pooled relay).
        env._relay(True, None, self._resume, URGENT)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        self.env._relay(
            False, Interrupt(cause), self._resume, URGENT, defused=True
        )

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting for (interrupt case) and
        # mark it abandoned so queue-like resources (Store, Resource,
        # Container) skip it instead of delivering into a dead process.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
                if not self._target.callbacks:
                    self._target._abandoned = True
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        if target.env is not self.env:
            raise SimulationError("event belongs to a different environment")
        self._target = target
        if target.callbacks is None:
            # Already processed: resume immediately (next loop iteration).
            self.env._relay(target._ok, target._value, self._resume, URGENT)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self):
        # Only processed-and-ok children contribute results (a failed
        # child's exception travels via fail(), not the result dict).
        return {
            i: e._value
            for i, e in enumerate(self._events)
            if e.callbacks is None and e._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every child event has triggered successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The event loop: a heap of events ordered by (time, priority, seq)."""

    def __init__(self, initial_time: float = 0.0):
        self.now = float(initial_time)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._active = True
        #: Free list of recyclable internal relay events (see Event).
        self._relay_pool: List[Event] = []
        #: Telemetry: events dispatched and deepest queue seen.  Plain
        #: ints so the hot loop pays one increment / one compare.
        self.events_processed = 0
        self.queue_high_water = 0
        #: Optional :class:`repro.telemetry.SimProfiler`; when attached it
        #: runs the callback loop under a per-component stopwatch.
        self.profiler = None
        #: Optional :class:`repro.analysis.SimSanitizer`.  Auto-attached
        #: process-wide under ``REPRO_SANITIZE=1``; observes only (never
        #: perturbs event order), and costs one ``is None`` branch per
        #: step when detached — same pattern as ``profiler``.
        self.sanitizer = _default_sanitizer()

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            return
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(self, delay)
        event._scheduled = True
        event._time = self.now + delay
        event._prio = priority
        event._seq = next(self._seq)
        queue = self._queue
        heappush(queue, event)
        if len(queue) > self.queue_high_water:
            self.queue_high_water = len(queue)

    def _relay(
        self,
        ok: bool,
        value: Any,
        callback: Callable[["Event"], None],
        priority: int = URGENT,
        defused: bool = False,
    ) -> Event:
        """Schedule a pooled one-shot internal event at the current time.

        The event is pre-triggered with ``(ok, value)``, carries exactly
        one callback, and returns to the free list right after dispatch —
        callers must never hand it to user code or keep a reference past
        the callback.
        """
        pool = self._relay_pool
        event = pool.pop() if pool else Event(self)
        event._ok = ok
        event._value = value
        event._defused = defused
        event._recycle = True
        event.callbacks.append(callback)
        self._schedule(event, 0.0, priority)
        return event

    def _reclaim(self, event: Event) -> None:
        """Reset a dispatched relay and return it to the free list."""
        event.callbacks = []
        event._value = None
        event._ok = None
        event._scheduled = False
        event._abandoned = False
        event._defused = False
        event._recycle = False
        pool = self._relay_pool
        if len(pool) < _POOL_LIMIT:
            pool.append(event)

    # -- public factory helpers -----------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Event:
        """A pooled, recyclable delay for the plain ``yield env.sleep(d)``
        idiom in hot loops (movers, packetizer feeds, retransmit timers).

        Contract: the caller must yield it immediately from exactly one
        process and must not store it, compose it into ``AllOf``/``AnyOf``
        or read it after resuming — the event is recycled the moment its
        dispatch completes.  Use :meth:`timeout` anywhere those rules
        cannot be guaranteed.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        pool = self._relay_pool
        event = pool.pop() if pool else Event(self)
        event._recycle = True
        # _ok stays None: like a Timeout, it triggers at dispatch.
        self._schedule(event, delay, NORMAL)
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        if not queue:
            raise SimulationError("no more events")
        event = heappop(queue)
        when = event._time
        if self.sanitizer is not None:
            self.sanitizer.on_step(self, when)
        self.now = when
        self.events_processed += 1
        if event._ok is None:
            event._ok = True  # a Timeout/sleep triggers as it dispatches
        callbacks, event.callbacks = event.callbacks, None
        if self.profiler is not None:
            self.profiler.run_callbacks(event, callbacks)
        else:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure propagates out of the simulation.
            raise event._value
        if event._recycle:
            self._reclaim(event)

    def run_batch(self, max_events: Optional[int] = None) -> int:
        """Drain up to ``max_events`` events (all, when ``None``).

        This is the engine's bulk fast path: the step body is inlined in
        one loop with the queue, profiler and sanitizer bound to locals,
        so a long drain pays no per-event method dispatch and no
        ``until`` re-checks.  Returns the number of events processed.
        Semantics are step-for-step identical to calling :meth:`step` in
        a loop (the conformance suite pins this).
        """
        queue = self._queue
        sanitizer = self.sanitizer
        profiler = self.profiler
        budget = max_events if max_events is not None else -1
        processed = 0
        while queue and budget != 0:
            event = heappop(queue)
            when = event._time
            if sanitizer is not None:
                sanitizer.on_step(self, when)
            self.now = when
            # Kept per-event (not batched at the end) so callbacks that
            # read the counter mid-drain — card_report from inside a
            # process, watchdog fingerprints — never see a stale value.
            self.events_processed += 1
            processed += 1
            budget -= 1
            if event._ok is None:
                event._ok = True
            callbacks, event.callbacks = event.callbacks, None
            if profiler is not None:
                profiler.run_callbacks(event, callbacks)
            else:
                for callback in callbacks:
                    callback(event)
            if event._ok is False and not event._defused:
                raise event._value
            if event._recycle:
                self._reclaim(event)
        return processed

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the given time, event, or queue exhaustion.

        ``until`` may be ``None`` (drain all events), a number (absolute
        simulated time), or an :class:`Event` (run until it is processed and
        return its value).
        """
        if until is None:
            self.run_batch()
            return None
        if isinstance(until, Event):
            sentinel = until
            step = self.step
            while sentinel.callbacks is not None:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event triggered ({sentinel!r}); likely deadlock"
                    )
                step()
            if sentinel._ok is False:
                raise sentinel._value
            return sentinel._value
        horizon = float(until)
        if horizon < self.now:
            raise SimulationError("cannot run into the past")
        queue = self._queue
        step = self.step
        while queue and queue[0]._time <= horizon:
            step()
        self.now = horizon
        return None

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0]._time if self._queue else float("inf")
