"""Deterministic discrete-event simulation engine.

This is the substrate every hardware model in the reproduction runs on.  It
follows the classic generator-based design (as popularised by SimPy, which is
not available offline): simulated entities are Python generators that yield
:class:`Event` objects to suspend themselves, and an :class:`Environment`
advances a priority queue of scheduled events.

Simulated time is a float in **nanoseconds**.  All hardware models in
``repro`` agree on this unit; see :mod:`repro.sim.clock` for cycle helpers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


def _default_sanitizer():
    """The process-wide SimSanitizer when ``REPRO_SANITIZE`` is set.

    Lazy import: :mod:`repro.analysis` depends only on the stdlib, so
    this cannot cycle back into the engine; when sanitizing is off the
    import is skipped entirely and construction stays allocation-free.
    """
    import os

    if not os.environ.get("REPRO_SANITIZE"):
        return None
    from ..analysis.sanitizer import current

    return current()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities ensure deterministic ordering of simultaneous events.
URGENT = 0
NORMAL = 1


class Event:
    """A condition that may happen at some point in simulated time.

    Events start *pending*; once :meth:`succeed` or :meth:`fail` is called
    they become *triggered* and are scheduled for processing, after which all
    registered callbacks run and the event is *processed*.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: Set when the only waiter was interrupted away; resources skip
        #: abandoned waiters rather than handing them items/grants.
        self._abandoned = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    # Generator protocol so a bare event can be awaited from process code
    # via ``value = yield event``.


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self.delay = delay
        env._schedule(self, delay=delay, priority=NORMAL)


class Process(Event):
    """Wraps a generator; the process event triggers when it returns.

    The generator yields :class:`Event` instances.  When a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown into it).
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process() needs a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off on the next event-loop iteration.
        init = Event(env)
        init._ok = True
        init.callbacks.append(self._resume)
        env._schedule(init, delay=0.0, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, delay=0.0, priority=URGENT)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting for (interrupt case) and
        # mark it abandoned so queue-like resources (Store, Resource,
        # Container) skip it instead of delivering into a dead process.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
                if not self._target.callbacks:
                    self._target._abandoned = True
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        if target.env is not self.env:
            raise SimulationError("event belongs to a different environment")
        self._target = target
        if target.callbacks is None:
            # Already processed: resume immediately (next loop iteration).
            relay = Event(self.env)
            relay._ok = target._ok
            relay._value = target._value
            relay.callbacks.append(self._resume)
            self.env._schedule(relay, delay=0.0, priority=URGENT)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self):
        # Only include events whose callbacks have run (Timeout presets
        # ``_ok`` at creation, before its scheduled time arrives).
        return {
            i: e._value
            for i, e in enumerate(self._events)
            if e.callbacks is None and e._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every child event has triggered successfully."""

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers successfully."""

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The event loop: a priority queue over (time, priority, seq)."""

    def __init__(self, initial_time: float = 0.0):
        self.now = float(initial_time)
        self._queue: List = []
        self._seq = itertools.count()
        self._active = True
        #: Telemetry: events dispatched and deepest queue seen.  Plain
        #: ints so the hot loop pays one increment / one compare.
        self.events_processed = 0
        self.queue_high_water = 0
        #: Optional :class:`repro.telemetry.SimProfiler`; when attached it
        #: runs the callback loop under a per-component stopwatch.
        self.profiler = None
        #: Optional :class:`repro.analysis.SimSanitizer`.  Auto-attached
        #: process-wide under ``REPRO_SANITIZE=1``; observes only (never
        #: perturbs event order), and costs one ``is None`` branch per
        #: step when detached — same pattern as ``profiler``.
        self.sanitizer = _default_sanitizer()

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            return
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(self, delay)
        event._scheduled = True
        heapq.heappush(
            self._queue, (self.now + delay, priority, next(self._seq), event)
        )
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    # -- public factory helpers -----------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if self.sanitizer is not None:
            self.sanitizer.on_step(self, when)
        self.now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if self.profiler is not None:
            self.profiler.run_callbacks(event, callbacks)
        else:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # An unhandled failure propagates out of the simulation.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the given time, event, or queue exhaustion.

        ``until`` may be ``None`` (drain all events), a number (absolute
        simulated time), or an :class:`Event` (run until it is processed and
        return its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while sentinel.callbacks is not None:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event triggered ({sentinel!r}); likely deadlock"
                    )
                self.step()
            if sentinel._ok is False:
                raise sentinel._value
            return sentinel._value
        horizon = float(until)
        if horizon < self.now:
            raise SimulationError("cannot run into the past")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self.now = horizon
        return None

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")
