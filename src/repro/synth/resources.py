"""FPGA resource accounting: LUTs, FFs, BRAM, URAM, DSP.

Used for the resource-utilisation halves of Figures 11 and 12 and for the
congestion terms of the build-time model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.floorplan import Device

__all__ = ["ResourceVector", "utilization_report"]


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of fabric resources."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    urams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            urams=self.urams + other.urams,
            dsps=self.dsps + other.dsps,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            luts=int(self.luts * factor),
            ffs=int(self.ffs * factor),
            brams=int(self.brams * factor),
            urams=int(self.urams * factor),
            dsps=int(self.dsps * factor),
        )

    def fraction_of(self, device: Device) -> Dict[str, float]:
        """Utilisation fractions against a device's totals."""
        return {
            "luts": self.luts / device.luts,
            "ffs": self.ffs / device.ffs,
            "brams": self.brams / device.brams,
            "urams": self.urams / device.urams if device.urams else 0.0,
            "dsps": self.dsps / device.dsps,
        }

    @property
    def is_empty(self) -> bool:
        return not any((self.luts, self.ffs, self.brams, self.urams, self.dsps))


def utilization_report(vector: ResourceVector, device: Device) -> str:
    """Human-readable utilisation table (one line per resource kind)."""
    fractions = vector.fraction_of(device)
    lines = [f"utilisation on {device.name}:"]
    for kind, frac in fractions.items():
        total = getattr(device, kind)
        used = getattr(vector, kind)
        lines.append(f"  {kind:>6}: {used:>9,} / {total:>9,} ({frac * 100:5.1f}%)")
    return "\n".join(lines)
