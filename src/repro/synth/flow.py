"""Build flows: shell flow, app flow, and bitstream generation.

Paper §9.2: "Shell flow refers to a flow which synthesizes, places and
routes both the application and the services.  App flow refers to a flow
which only synthesizes, places and routes the user application, which is
then linked against a previously routed and locked shell ... Overall, the
app flow can reduce the synthesis time by 15% to 20%."

The model decomposes a build into:

* per-module synthesis (+ place & route), linear in LUTs with a
  complexity multiplier and a utilisation-driven congestion term, and
* a *common* phase both flows pay: checkpoint I/O, full-device timing
  analysis, DRC and bitstream generation.

The coefficients are calibrated so the three evaluated configurations
land at the paper's scale (tens of minutes to ~4 h) with app-flow savings
inside the reported 15-20% band, and so partial-bitstream sizes imply
Table 3's reconfiguration latencies through the 800 MB/s ICAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.bitstream import Bitstream, BitstreamKind
from ..core.dynamic_layer import ServiceConfig
from ..core.floorplan import DEVICES, Device, Floorplan
from .netlist import Module, get_module, modules_for_services, total_resources
from .resources import ResourceVector

__all__ = ["BuildFlow", "BuildResult", "LockedShellCheckpoint"]

# ----------------------------------------------------- calibrated constants

#: Per-module synthesis: fixed launch cost + per-LUT effort (seconds).
SYNTH_FIXED_S = 9.0
SYNTH_PER_LUT_S = 0.007
#: Place & route per LUT, amplified by utilisation-squared congestion.
PNR_PER_LUT_S = 0.009
PNR_CONGESTION = 2.2
#: Locked-context factor: routing an app inside a locked shell is tighter.
PNR_LOCKED_FACTOR = 1.25
#: Common phase: checkpoint I/O + full-device timing/DRC/bitgen.
COMMON_FIXED_S = 520.0
COMMON_PER_LUT_S = 0.034
#: App-flow linking against the locked shell checkpoint.
LINK_PER_LUT_S = 0.008

#: Bitstream size model (bytes = 72 * equivalent LUTs, see floorplan):
#: a partial bitstream covers a fraction of its region's frames plus the
#: configuration of the logic actually used (compressed bitstreams).
SHELL_REGION_FILL = 0.287
APP_REGION_FILL = 0.75
USED_DENSITY = 2.24
FULL_DEVICE_FILL = 0.715
FULL_USED_DENSITY = 1.9
CONFIG_BYTES_PER_LUT = 72


@dataclass(frozen=True)
class LockedShellCheckpoint:
    """A routed, locked shell the app flow links against (paper §4)."""

    device: str
    services: ServiceConfig
    shell_id: str
    used_luts: int


@dataclass(frozen=True)
class BuildResult:
    """Outcome of one flow invocation."""

    flow: str  # "shell" | "app" | "full"
    seconds: float
    bitstream: Bitstream
    resources: ResourceVector
    checkpoint: Optional[LockedShellCheckpoint] = None

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


class BuildFlow:
    """The nested build flows for one device."""

    def __init__(self, device: str = "u55c", num_vfpgas: int = 1):
        if device not in DEVICES:
            raise ValueError(f"unknown device {device!r}")
        self.device_name = device
        self.device: Device = DEVICES[device]
        self.floorplan = Floorplan(self.device, app_regions=num_vfpgas)

    # ------------------------------------------------------------ components

    @staticmethod
    def _synth_seconds(modules: Sequence[Module]) -> float:
        return sum(
            SYNTH_FIXED_S + SYNTH_PER_LUT_S * m.luts * m.complexity for m in modules
        )

    def _pnr_seconds(self, modules: Sequence[Module], locked: bool = False) -> float:
        placed = sum(m.luts * m.complexity for m in modules)
        util = sum(m.luts for m in modules) / self.floorplan.shell_region.luts
        congestion = 1.0 + PNR_CONGESTION * util * util
        factor = PNR_LOCKED_FACTOR if locked else 1.0
        return PNR_PER_LUT_S * placed * congestion * factor

    @staticmethod
    def _common_seconds(total_used_luts: int) -> float:
        return COMMON_FIXED_S + COMMON_PER_LUT_S * total_used_luts

    # ------------------------------------------------------- bitstream sizes

    def shell_bitstream_bytes(self, used_luts: int) -> int:
        region = self.floorplan.shell_region.luts
        return int(
            CONFIG_BYTES_PER_LUT * (SHELL_REGION_FILL * region + USED_DENSITY * used_luts)
        )

    def app_bitstream_bytes(self, app_luts: int) -> int:
        region = self.floorplan.app_region(0).luts
        return int(
            CONFIG_BYTES_PER_LUT * (APP_REGION_FILL * region + USED_DENSITY * app_luts)
        )

    def full_bitstream_bytes(self, used_luts: int) -> int:
        return int(
            CONFIG_BYTES_PER_LUT
            * (FULL_DEVICE_FILL * self.device.luts + FULL_USED_DENSITY * used_luts)
        )

    # ------------------------------------------------------------------ flows

    def _resolve_apps(self, app_names: Sequence[str]) -> List[Module]:
        return [get_module(name) for name in app_names]

    def shell_flow(
        self, services: ServiceConfig, app_names: Sequence[str]
    ) -> BuildResult:
        """Synthesize + implement services AND applications together."""
        service_modules = modules_for_services(services)
        app_modules = self._resolve_apps(app_names)
        everything = service_modules + app_modules
        used = sum(m.luts for m in everything)
        seconds = (
            self._synth_seconds(everything)
            + self._pnr_seconds(everything)
            + self._common_seconds(used)
        )
        bitstream = Bitstream(
            kind=BitstreamKind.SHELL,
            target_region="shell",
            size_bytes=self.shell_bitstream_bytes(used),
            services=services.service_names,
            apps=tuple(app_names),
            device=self.device_name,
        )
        checkpoint = LockedShellCheckpoint(
            device=self.device_name,
            services=services,
            shell_id=bitstream.shell_id,
            used_luts=used,
        )
        return BuildResult(
            flow="shell",
            seconds=seconds,
            bitstream=bitstream,
            resources=total_resources(everything),
            checkpoint=checkpoint,
        )

    def app_flow(
        self, checkpoint: LockedShellCheckpoint, app_names: Sequence[str]
    ) -> BuildResult:
        """Build only the apps, linked against a locked shell checkpoint.

        The linker verifies the checkpoint targets this device — this is
        the flow that "reduces synthesis time by 15% to 20%".
        """
        if checkpoint.device != self.device_name:
            raise ValueError(
                f"checkpoint for {checkpoint.device}, flow targets {self.device_name}"
            )
        app_modules = self._resolve_apps(app_names)
        app_luts = sum(m.luts for m in app_modules)
        total_used = checkpoint.used_luts + app_luts
        seconds = (
            self._synth_seconds(app_modules)
            + self._pnr_seconds(app_modules, locked=True)
            + self._common_seconds(total_used)
            + LINK_PER_LUT_S * total_used
        )
        bitstream = Bitstream(
            kind=BitstreamKind.APP,
            target_region="vfpga0",
            size_bytes=self.app_bitstream_bytes(app_luts),
            services=checkpoint.services.service_names,
            apps=tuple(app_names),
            device=self.device_name,
            linked_shell=checkpoint.shell_id,
        )
        return BuildResult(
            flow="app",
            seconds=seconds,
            bitstream=bitstream,
            resources=total_resources(app_modules),
        )

    def full_flow(
        self, services: ServiceConfig, app_names: Sequence[str]
    ) -> BuildResult:
        """Monolithic full-device build (the Vivado hardware-manager path)."""
        static_modules = [get_module("static_xdma"), get_module("static_icap")]
        service_modules = modules_for_services(services)
        app_modules = self._resolve_apps(app_names)
        everything = static_modules + service_modules + app_modules
        shell_used = sum(m.luts for m in service_modules + app_modules)
        used = sum(m.luts for m in everything)
        seconds = (
            self._synth_seconds(everything)
            + self._pnr_seconds(everything)
            + self._common_seconds(used)
        )
        bitstream = Bitstream(
            kind=BitstreamKind.FULL,
            target_region="device",
            size_bytes=self.full_bitstream_bytes(shell_used),
            services=services.service_names,
            apps=tuple(app_names),
            device=self.device_name,
        )
        return BuildResult(
            flow="full",
            seconds=seconds,
            bitstream=bitstream,
            resources=total_resources(everything),
        )
