"""Synthesis model: netlists, resource accounting and build flows."""

from .flow import BuildFlow, BuildResult, LockedShellCheckpoint
from .netlist import (
    MODULE_LIBRARY,
    Module,
    NetlistError,
    get_module,
    module_for_app,
    modules_for_services,
    total_resources,
)
from .resources import ResourceVector, utilization_report

__all__ = [
    "BuildFlow",
    "BuildResult",
    "LockedShellCheckpoint",
    "Module",
    "MODULE_LIBRARY",
    "NetlistError",
    "get_module",
    "module_for_app",
    "modules_for_services",
    "total_resources",
    "ResourceVector",
    "utilization_report",
]
