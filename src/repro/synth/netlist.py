"""Module library: the netlists the build flows compose.

Resource footprints are representative of the real IPs (the BALBOA RDMA
stack, XDMA, HBM memory controllers, the HLS HLL kernel of [35], ...) at
the granularity the experiments need: LUT counts drive bitstream sizes
(Table 3), build times (Figure 7b) and utilisation bars (Figures 11/12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.dynamic_layer import ServiceConfig
from ..mem.tlb import PAGE_1G, PAGE_2M, PAGE_4K
from .resources import ResourceVector

__all__ = ["Module", "MODULE_LIBRARY", "modules_for_services", "module_for_app", "NetlistError"]


class NetlistError(KeyError):
    """Unknown module requested from the library."""


@dataclass(frozen=True)
class Module:
    """One synthesizable unit with its footprint and synthesis complexity.

    ``complexity`` scales place-and-route effort: congested, timing-
    critical blocks (memory controllers, 100G MACs) route slower per LUT.
    """

    name: str
    resources: ResourceVector
    complexity: float = 1.0

    @property
    def luts(self) -> int:
        return self.resources.luts


def _m(name, luts, brams=0, urams=0, dsps=0, complexity=1.0) -> Module:
    return Module(
        name=name,
        resources=ResourceVector(luts=luts, ffs=2 * luts, brams=brams, urams=urams, dsps=dsps),
        complexity=complexity,
    )


#: Everything the flows know how to build.
MODULE_LIBRARY: Dict[str, Module] = {
    module.name: module
    for module in [
        # -- static layer (pre-routed, locked checkpoint; never rebuilt)
        _m("static_xdma", 22_000, brams=48, complexity=1.3),
        _m("static_icap", 2_500),
        # -- dynamic layer
        _m("dyn_base", 95_000, brams=120, complexity=1.1),  # crossbars, credits, packetizer
        _m("mmu_4k", 12_000, brams=96),
        _m("mmu_2m", 8_000, brams=64),
        _m("mmu_1g", 6_000, brams=32),
        _m("hbm_ctrl", 85_000, brams=220, complexity=1.35),
        _m("rdma_stack", 75_000, brams=260, complexity=1.5),
        _m("tcp_stack", 58_000, brams=180, complexity=1.45),
        _m("cmac", 6_000, complexity=1.4),
        _m("sniffer", 9_000, brams=48),
        # -- user applications
        _m("passthrough", 2_000),
        _m("vadd", 5_000, dsps=64),
        _m("vmul", 6_000, dsps=128),
        _m("aes_ecb", 14_000, brams=40),
        _m("aes_cbc", 12_000, brams=40),
        _m("hll", 40_000, brams=80, dsps=20),
        # -- baseline (Coyote v1's monolithic static shell, Figure 11)
        _m("coyote_v1_base", 82_000, brams=110, complexity=1.1),
    ]
}


def get_module(name: str) -> Module:
    module = MODULE_LIBRARY.get(name)
    if module is None:
        raise NetlistError(f"no module {name!r} in the library")
    return module


_MMU_BY_PAGE = {PAGE_4K: "mmu_4k", PAGE_2M: "mmu_2m", PAGE_1G: "mmu_1g"}


def modules_for_services(services: ServiceConfig) -> List[Module]:
    """The dynamic-layer netlist of a shell configuration."""
    names = ["dyn_base", _MMU_BY_PAGE[services.mmu.tlb.page_size]]
    if services.en_memory:
        names.append("hbm_ctrl")
    if services.en_rdma:
        names.extend(["rdma_stack", "cmac"])
    if services.en_tcp:
        names.append("tcp_stack")
        if not services.en_rdma:
            names.append("cmac")
    if services.en_sniffer:
        names.append("sniffer")
    return [get_module(name) for name in names]


def module_for_app(app_name: str) -> Module:
    """Look up an application kernel's netlist by its ``UserApp.name``."""
    return get_module(app_name)


def total_resources(modules: Iterable[Module]) -> ResourceVector:
    total = ResourceVector()
    for module in modules:
        total = total + module.resources
    return total
