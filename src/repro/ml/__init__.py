"""hls4ml-style ML integration: compiler, quantization, Coyote overlay."""

from .compiler import (
    BACKENDS,
    DenseSpec,
    HlsConfig,
    HlsModel,
    ModelSpec,
    NnIpCore,
    config_from_model,
    convert_model,
    intrusion_detection_model,
)
from .overlay import CoyoteOverlay
from .quantize import DEFAULT_PRECISION, FixedPointType

__all__ = [
    "ModelSpec",
    "DenseSpec",
    "HlsConfig",
    "HlsModel",
    "NnIpCore",
    "config_from_model",
    "convert_model",
    "intrusion_detection_model",
    "BACKENDS",
    "CoyoteOverlay",
    "FixedPointType",
    "DEFAULT_PRECISION",
]
