"""CoyoteOverlay: deploy an hls4ml IP through the shell (paper Code 3).

.. code-block:: python

    overlay = CoyoteOverlay(driver, hls_model)
    yield from overlay.program_fpga()
    preds = yield from overlay.predict(X, batch_size=1024)

``program_fpga`` runs the app flow against the live shell's checkpoint and
partially reconfigures a vFPGA with the NN kernel; ``predict`` streams
batches straight from host memory through the IP and back, using the
high-performance C(++)Thread API underneath — the whole point of Figure 12.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

import numpy as np

from ..apps.nn import NnApp
from ..driver.driver import Driver
from ..api.cthread import CThread
from ..core.interfaces import LocalSg, Oper, SgEntry
from ..synth.flow import BuildFlow, LockedShellCheckpoint
from ..synth.netlist import modules_for_services
from ..synth.resources import ResourceVector
from .compiler import HlsModel

__all__ = ["CoyoteOverlay"]

#: Per-predict-call software overhead of the C++ API (descriptor setup,
#: syscall-free doorbell).  The PYNQ baseline's Python runtime charges
#: ~30x this (see repro.baselines.pynq).
COYOTE_CALL_OVERHEAD_NS = 60_000.0

_pids = itertools.count(77_000)


class CoyoteOverlay:
    """Runtime handle for one deployed NN accelerator."""

    def __init__(self, driver: Driver, hls_model: HlsModel, vfpga_id: int = 0):
        if hls_model.backend != "CoyoteAccelerator":
            raise ValueError(
                f"model was converted for backend {hls_model.backend!r}; "
                "rebuild with backend='CoyoteAccelerator'"
            )
        self.driver = driver
        self.env = driver.env
        self.hls_model = hls_model
        self.vfpga_id = vfpga_id
        self.ip = hls_model.build()
        self.app: Optional[NnApp] = None
        self._cthread: Optional[CThread] = None

    # ------------------------------------------------------------- deploy

    def program_fpga(self) -> Generator:
        """App-flow build + partial reconfiguration of the vFPGA."""
        shell = self.driver.shell
        flow = BuildFlow(shell.config.device, num_vfpgas=shell.config.num_vfpgas)
        services_used = sum(
            m.luts for m in modules_for_services(shell.config.services)
        )
        checkpoint = LockedShellCheckpoint(
            device=shell.config.device,
            services=shell.config.services,
            shell_id=shell.shell_id,
            used_luts=services_used,
        )
        bitstream = flow.app_flow(checkpoint, []).bitstream
        # Account the IP's own configuration data on top of the region fill.
        bitstream = type(bitstream)(
            kind=bitstream.kind,
            target_region=bitstream.target_region,
            size_bytes=bitstream.size_bytes + 72 * self.ip.resources.luts,
            services=bitstream.services,
            apps=(self.ip.name,),
            device=bitstream.device,
            linked_shell=bitstream.linked_shell,
        )
        self.app = NnApp(self.ip)
        yield self.env.process(
            self.driver.reconfigure_app(bitstream, self.vfpga_id, self.app)
        )
        self._cthread = CThread(self.driver, self.vfpga_id, pid=next(_pids))

    # ------------------------------------------------------------ predict

    def predict(
        self, x: np.ndarray, batch_size: int = 1024
    ) -> Generator:
        """Run inference on hardware; returns the dequantized outputs."""
        if self._cthread is None:
            raise RuntimeError("call program_fpga() before predict()")
        ip = self.ip
        ct = self._cthread
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != ip.input_width:
            raise ValueError(f"expected (*, {ip.input_width}) inputs, got {x.shape}")
        total = x.shape[0]
        out = np.zeros((total, ip.output_width))
        src = yield from ct.get_mem(max(4096, batch_size * ip.sample_in_bytes))
        dst = yield from ct.get_mem(max(4096, batch_size * ip.sample_out_bytes))
        for start in range(0, total, batch_size):
            batch = x[start : start + batch_size]
            codes = ip.precision.quantize(batch).astype("<i2")
            ct.write_buffer(src.vaddr, codes.tobytes())
            yield self.env.timeout(COYOTE_CALL_OVERHEAD_NS)
            sg = SgEntry(
                local=LocalSg(
                    src_addr=src.vaddr,
                    src_len=len(batch) * ip.sample_in_bytes,
                    dst_addr=dst.vaddr,
                    dst_len=len(batch) * ip.sample_out_bytes,
                )
            )
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
            raw = ct.read_buffer(dst.vaddr, len(batch) * ip.sample_out_bytes)
            y_codes = np.frombuffer(raw, dtype="<i2").reshape(
                len(batch), ip.output_width
            )
            out[start : start + len(batch)] = ip.precision.dequantize(
                y_codes.astype(np.int64)
            )
        return out

    # ----------------------------------------------------------- reporting

    def total_resources(self) -> ResourceVector:
        """Shell + IP utilisation (the Figure 12 resource bars)."""
        shell_modules = modules_for_services(self.driver.shell.config.services)
        total = ResourceVector()
        for module in shell_modules:
            total = total + module.resources
        return total + self.ip.resources
