"""The hls4ml-style compiler front-end (paper §9.7, Code 3).

Mirrors the hls4ml API surface the paper shows: build a model, derive a
config, ``convert`` it for a backend, ``compile()`` for bit-exact software
emulation, ``build()`` to "synthesize" an IP core with resource and timing
estimates, then hand the result to an overlay for deployment.

Backends:

* ``CoyoteAccelerator`` — the paper's contribution: the IP becomes a vFPGA
  behind the shell, input streamed straight from host memory.
* ``VitisPynq`` — the baseline: the IP is wrapped in a Vitis kernel and
  driven through the PYNQ Python runtime, which first copies inputs from
  host memory to FPGA HBM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.clock import FABRIC_CLOCK
from ..synth.resources import ResourceVector
from .quantize import DEFAULT_PRECISION, FixedPointType

__all__ = [
    "DenseSpec",
    "ModelSpec",
    "HlsConfig",
    "HlsModel",
    "NnIpCore",
    "config_from_model",
    "convert_model",
    "intrusion_detection_model",
    "BACKENDS",
]

BACKENDS = ("CoyoteAccelerator", "VitisPynq")


@dataclass
class DenseSpec:
    """A dense layer: weights (in, out), bias (out,), activation.

    Convolutions are *lowered* to this form at conversion time (the
    block-Toeplitz matrix of the kernel — what hls4ml's im2col does), so
    the IP and the streaming kernel only ever see matmuls.
    ``effective_multiplies`` keeps the pre-lowering MAC count for the
    resource estimate (weight sharing means a conv costs far fewer DSPs
    than its lowered matrix suggests).
    """

    weights: np.ndarray
    bias: np.ndarray
    activation: str = "relu"  # "relu" | "linear"
    effective_multiplies: Optional[int] = None

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weights.ndim != 2:
            raise ValueError("weights must be 2-D (in, out)")
        if self.bias.shape != (self.weights.shape[1],):
            raise ValueError("bias shape must match output width")
        if self.activation not in ("relu", "linear"):
            raise ValueError(f"unsupported activation {self.activation!r}")

    @property
    def n_in(self) -> int:
        return self.weights.shape[0]

    @property
    def n_out(self) -> int:
        return self.weights.shape[1]

    @property
    def multiplies(self) -> int:
        if self.effective_multiplies is not None:
            return self.effective_multiplies
        return self.n_in * self.n_out


@dataclass
class ModelSpec:
    """A Keras-Sequential-like model: dense and conv1d layers.

    Inputs are flat vectors of ``input_width`` values; for convolutional
    models set ``input_shape=(length, channels)`` (row-major flattening,
    ``input_width == length * channels``).
    """

    input_width: int
    layers: List[DenseSpec] = field(default_factory=list)
    name: str = "model"
    input_shape: Optional[Tuple[int, int]] = None  # (length, channels)

    def __post_init__(self) -> None:
        if self.input_shape is not None:
            length, channels = self.input_shape
            if length * channels != self.input_width:
                raise ValueError("input_shape must flatten to input_width")
        # Current spatial shape, tracked while conv layers are appended.
        self._shape = self.input_shape

    def add_dense(
        self,
        units: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> "ModelSpec":
        n_in = self.layers[-1].n_out if self.layers else self.input_width
        if weights is None:
            rng = rng or np.random.default_rng(0)
            weights = rng.normal(0.0, 1.0 / np.sqrt(n_in), size=(n_in, units))
        if bias is None:
            bias = np.zeros(units)
        self.layers.append(DenseSpec(weights=weights, bias=bias, activation=activation))
        self._shape = None  # dense layers flatten the spatial structure
        return self

    def add_conv1d(
        self,
        filters: int,
        kernel_size: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
        kernel: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> "ModelSpec":
        """Append a valid-padding, stride-1 Conv1D.

        Lowered immediately to the equivalent block-Toeplitz dense layer;
        the kernel has shape ``(kernel_size, in_channels, filters)``.
        """
        if self._shape is None:
            raise ValueError(
                "conv1d needs spatial structure: set input_shape, and do "
                "not put a dense layer before a conv layer"
            )
        length, channels = self._shape
        if kernel_size > length:
            raise ValueError("kernel longer than the remaining sequence")
        if kernel is None:
            rng = rng or np.random.default_rng(0)
            kernel = rng.normal(
                0.0, 1.0 / np.sqrt(kernel_size * channels),
                size=(kernel_size, channels, filters),
            )
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.shape != (kernel_size, channels, filters):
            raise ValueError(
                f"kernel shape {kernel.shape} != {(kernel_size, channels, filters)}"
            )
        if bias is None:
            bias = np.zeros(filters)
        out_length = length - kernel_size + 1
        # Block-Toeplitz lowering: (length*channels) x (out_length*filters).
        lowered = np.zeros((length * channels, out_length * filters))
        for position in range(out_length):
            for tap in range(kernel_size):
                row = (position + tap) * channels
                col = position * filters
                lowered[row : row + channels, col : col + filters] = kernel[tap]
        tiled_bias = np.tile(np.asarray(bias, dtype=np.float64), out_length)
        self.layers.append(
            DenseSpec(
                weights=lowered,
                bias=tiled_bias,
                activation=activation,
                effective_multiplies=out_length * kernel_size * channels * filters,
            )
        )
        self._shape = (out_length, filters)
        return self

    @property
    def output_width(self) -> int:
        return self.layers[-1].n_out if self.layers else self.input_width

    def predict_float(self, x: np.ndarray) -> np.ndarray:
        """Reference float32 forward pass (the 'Keras' answer)."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = out @ layer.weights + layer.bias
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        return out


@dataclass(frozen=True)
class HlsConfig:
    """Compiler knobs (the subset the experiments exercise)."""

    precision: FixedPointType = DEFAULT_PRECISION
    reuse_factor: int = 16
    clock_period_ns: float = 4.0  # 250 MHz

    def __post_init__(self) -> None:
        if self.reuse_factor < 1:
            raise ValueError("reuse_factor must be >= 1")


def config_from_model(model: ModelSpec, **overrides) -> HlsConfig:
    """hls4ml's ``config_from_keras_model`` equivalent."""
    return HlsConfig(**overrides)


@dataclass(frozen=True)
class NnIpCore:
    """The synthesized IP: functional weights + timing/resource estimates."""

    name: str
    input_width: int
    output_width: int
    quant_weights: Tuple[np.ndarray, ...]
    quant_bias: Tuple[np.ndarray, ...]
    activations: Tuple[str, ...]
    precision: FixedPointType
    initiation_interval_cycles: int
    latency_cycles: int
    resources: ResourceVector

    @property
    def sample_in_bytes(self) -> int:
        return self.input_width * 2  # 16-bit fixed-point features

    @property
    def sample_out_bytes(self) -> int:
        return self.output_width * 2

    def forward_quantized(self, x: np.ndarray) -> np.ndarray:
        """Bit-exact fixed-point inference (shared by emu and 'hardware')."""
        q = self.precision
        # Inputs quantized to the working precision.
        acts = q.quantize(np.asarray(x, dtype=np.float64))
        for weights, bias, activation in zip(
            self.quant_weights, self.quant_bias, self.activations
        ):
            # Integer MAC: (x * 2^f) @ (w * 2^f) = y * 2^(2f); rescale once.
            acc = acts @ weights + (bias << q.frac_bits)
            acts = np.clip(acc >> q.frac_bits, q.min_int, q.max_int)
            if activation == "relu":
                acts = np.maximum(acts, 0)
        return q.dequantize(acts)


def _estimate_resources(model: ModelSpec, config: HlsConfig) -> ResourceVector:
    """hls4ml-style estimates: DSPs from multiplies/reuse, BRAM for weights."""
    mults = sum(layer.multiplies for layer in model.layers)
    dsps = -(-mults // config.reuse_factor)
    weight_bits = mults * config.precision.total_bits
    brams = -(-weight_bits // (36 * 1024))
    luts = 3_000 + 35 * dsps + sum(60 * l.n_out for l in model.layers)
    return ResourceVector(luts=luts, ffs=int(1.6 * luts), brams=brams, dsps=dsps)


class HlsModel:
    """The converted model: emulate, build, deploy."""

    def __init__(self, model: ModelSpec, config: HlsConfig, backend: str):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.model = model
        self.config = config
        self.backend = backend
        self._compiled = False
        self.ip: Optional[NnIpCore] = None

    # -- software emulation --------------------------------------------------

    def compile(self) -> None:
        """Prepare bit-exact software emulation (hls4ml's csim)."""
        self.ip = self._make_ip()
        self._compiled = True

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._compiled:
            raise RuntimeError("call compile() before predict()")
        return self.ip.forward_quantized(x)

    # -- hardware build --------------------------------------------------------

    def _make_ip(self) -> NnIpCore:
        q = self.config.precision
        quant_w = tuple(q.quantize(l.weights) for l in self.model.layers)
        quant_b = tuple(q.quantize(l.bias) for l in self.model.layers)
        # Fully unrolled up to the reuse factor: II == reuse_factor cycles.
        latency = sum(
            2 + int(np.ceil(np.log2(max(2, l.n_in)))) for l in self.model.layers
        )
        return NnIpCore(
            name=self.model.name,
            input_width=self.model.input_width,
            output_width=self.model.output_width,
            quant_weights=quant_w,
            quant_bias=quant_b,
            activations=tuple(l.activation for l in self.model.layers),
            precision=q,
            initiation_interval_cycles=self.config.reuse_factor,
            latency_cycles=latency,
            resources=_estimate_resources(self.model, self.config),
        )

    def build(self) -> NnIpCore:
        """'Synthesize' the IP core (returns immediately in simulation)."""
        if self.ip is None:
            self.ip = self._make_ip()
        return self.ip

    @property
    def samples_per_second_peak(self) -> float:
        """Pipeline-limited inference rate of the bare IP."""
        ip = self.build()
        period = self.config.clock_period_ns
        return 1e9 / (ip.initiation_interval_cycles * period)


def convert_model(
    model: ModelSpec,
    hls_config: Optional[HlsConfig] = None,
    backend: str = "CoyoteAccelerator",
) -> HlsModel:
    """hls4ml's ``convert_from_keras_model`` equivalent."""
    return HlsModel(model, hls_config or HlsConfig(), backend)


def intrusion_detection_model(seed: int = 7) -> ModelSpec:
    """The network-intrusion-detection MLP of the paper's §9.7 ([44, 55]):
    a compact UNSW-NB15 classifier, 49 features -> 64 -> 32 -> 2."""
    rng = np.random.default_rng(seed)
    model = ModelSpec(input_width=49, name="intrusion_detection")
    model.add_dense(64, "relu", rng=rng)
    model.add_dense(32, "relu", rng=rng)
    model.add_dense(2, "linear", rng=rng)
    return model
