"""Fixed-point quantization, hls4ml-style.

hls4ml compiles networks to ``ap_fixed<W, I>`` arithmetic.  We implement
the same scheme: signed fixed point with ``total_bits`` bits, ``int_bits``
of them (including sign) left of the binary point, round-to-nearest and
saturation.  The hardware kernel and the software emulation share this
code, so ``predict()`` on the FPGA matches ``compile()`` emulation
bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointType", "DEFAULT_PRECISION"]


@dataclass(frozen=True)
class FixedPointType:
    """``ap_fixed<total_bits, int_bits>``: signed, rounded, saturating."""

    total_bits: int = 16
    int_bits: int = 6

    def __post_init__(self) -> None:
        if not 2 <= self.total_bits <= 32:
            raise ValueError("total_bits must be in [2, 32]")
        if not 1 <= self.int_bits <= self.total_bits:
            raise ValueError("int_bits must be in [1, total_bits]")

    @property
    def frac_bits(self) -> int:
        return self.total_bits - self.int_bits

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    @property
    def max_int(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        return -(1 << (self.total_bits - 1))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real -> integer codes (round to nearest, saturate)."""
        scaled = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(scaled, self.min_int, self.max_int).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """The representable value nearest to each input."""
        return self.dequantize(self.quantize(values))

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def __str__(self) -> str:
        return f"ap_fixed<{self.total_bits},{self.int_bits}>"


DEFAULT_PRECISION = FixedPointType(16, 6)
