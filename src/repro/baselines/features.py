"""Table 1: the feature matrix of prior FPGA shells.

Encodes the paper's comparison table as structured data so the Table 1
benchmark can regenerate it, and so tests can assert the claims the paper
makes about Coyote v2 (full support in every column, the only shell with
multi-threading, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["Support", "ShellFeatures", "FEATURE_MATRIX", "FEATURE_COLUMNS", "render_table"]


class Support(Enum):
    YES = "yes"
    PARTIAL = "partial"
    NO = "no"
    NA = "n/a"

    @property
    def symbol(self) -> str:
        return {"yes": "Y", "partial": "~", "no": "-", "n/a": "n/a"}[self.value]


FEATURE_COLUMNS: Tuple[str, ...] = (
    "services",
    "service_reconfig",
    "shared_virtual_memory",
    "multiple_reconfigurable_apps",
    "multi_threading",
    "interrupts",
    "open_source",
)


@dataclass(frozen=True)
class ShellFeatures:
    """One row of Table 1."""

    name: str
    year: int
    commercial: bool
    services: Support
    service_reconfig: Support
    shared_virtual_memory: Support
    multiple_reconfigurable_apps: Support
    multi_threading: Support
    app_interface: str
    interrupts: Support
    open_source: Support

    def supports(self, column: str) -> Support:
        return getattr(self, column)


Y, P, N, NA = Support.YES, Support.PARTIAL, Support.NO, Support.NA

#: The paper's Table 1, row by row (first commercial, then research,
#: chronological within each group).
FEATURE_MATRIX: List[ShellFeatures] = [
    ShellFeatures("Microsoft Catapult", 2014, True, P, N, N, N, P, "Card (single)", N, N),
    ShellFeatures("Xilinx SDAccel", 2014, True, N, NA, N, N, N, "Card (single)", P, N),
    ShellFeatures("Intel OneAPI", 2020, True, N, NA, P, N, N, "Host, card (single)", N, N),
    ShellFeatures("Vitis XRT Shell", 2017, True, N, NA, N, N, N, "Host, card (single)", P, N),
    ShellFeatures("Open FPGA Stack", 2023, True, N, NA, N, N, N, "Host, card (single)", N, Y),
    ShellFeatures("Amazon AWS F2", 2024, True, N, NA, N, N, N, "Host, card (single)", N, N),
    ShellFeatures("Feniks", 2017, False, P, N, N, N, N, "Host, card, net (single)", N, N),
    ShellFeatures("AmorphOS", 2018, False, N, NA, N, Y, N, "Card (single)", N, Y),
    ShellFeatures("OPTIMUS", 2008, False, N, NA, P, N, P, "Host (single)", N, N),
    ShellFeatures("FOS", 2020, False, P, N, N, Y, N, "Card (multiple)", N, Y),
    ShellFeatures("Coyote", 2020, False, P, N, Y, Y, N, "Host, card, net (single)", N, Y),
    ShellFeatures("TaPaSCo", 2021, False, N, NA, N, N, N, "Host, card (single)", Y, Y),
    ShellFeatures("Miliadis et al.", 2024, False, P, N, N, Y, N, "Card (multiple)", N, N),
    ShellFeatures("Harmonia", 2025, False, P, N, N, Y, N, "Host, card, net (single)", N, N),
    ShellFeatures("Coyote v2", 2025, False, Y, Y, Y, Y, Y, "Host, card, net (multiple)", Y, Y),
]


def coyote_v2_row() -> ShellFeatures:
    return FEATURE_MATRIX[-1]


def render_table() -> str:
    """Regenerate Table 1 as aligned text."""
    headers = ["Shell"] + [c.replace("_", " ") for c in FEATURE_COLUMNS[:5]] + [
        "app interface", "interrupts", "open source"
    ]
    rows = []
    for shell in FEATURE_MATRIX:
        rows.append(
            [shell.name]
            + [shell.supports(c).symbol for c in FEATURE_COLUMNS[:5]]
            + [shell.app_interface, shell.interrupts.symbol, shell.open_source.symbol]
        )
    widths = [max(len(str(r[i])) for r in [headers] + rows) for i in range(len(headers))]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        for row in [headers] + rows
    ]
    return "\n".join(lines)
