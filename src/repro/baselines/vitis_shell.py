"""Resource footprint of the Vitis/XRT shell the PYNQ baseline sits on.

Comparable in LUTs to the Coyote v2 shell (paper: "keeping the overall
resource utilization approximately equal"), but monolithic: static DMA
infrastructure, no service reconfiguration.
"""

from ..synth.resources import ResourceVector

__all__ = ["VITIS_SHELL_RESOURCES"]

VITIS_SHELL_RESOURCES = ResourceVector(
    luts=108_000, ffs=216_000, brams=190, urams=0, dsps=4
)
