"""Coyote v1 baseline (paper §9.6, Figure 11; Korolija et al., OSDI '20).

Coyote v1 is the starting point of Coyote v2: it already has shared
virtual memory, networking and app reconfiguration, but

* services live in the *static* layer — changing the MMU page size or the
  networking stack requires re-flashing the whole device;
* each vFPGA has a **single** data stream per peripheral — no hardware
  multi-threading, operands must be packed/unpacked in software;
* no user interrupts.

For Figure 11 we need v1 as a performance/utilisation baseline running
the same HLL kernel.  We model it as a Coyote v2 shell constrained to one
host stream (which is accurate: the v2 datapath with one stream is the v1
datapath) plus v1's own resource footprint and its full-reflash
reconfiguration behaviour.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..core.bitstream import Bitstream, BitstreamKind
from ..core.dynamic_layer import ServiceConfig
from ..core.reconfig import VivadoHwManager
from ..core.shell import Shell, ShellConfig
from ..core.vfpga import UserApp, VFpgaConfig
from ..sim.engine import Environment
from ..synth.flow import BuildFlow
from ..synth.netlist import get_module
from ..synth.resources import ResourceVector

__all__ = ["CoyoteV1Shell"]


class CoyoteV1Shell(Shell):
    """Coyote v1: single-stream interface, static services."""

    def __init__(
        self,
        env: Environment,
        num_vfpgas: int = 1,
        services: Optional[ServiceConfig] = None,
        device: str = "u55c",
    ):
        services = services if services is not None else ServiceConfig(en_memory=False)
        config = ShellConfig(
            device=device,
            num_vfpgas=num_vfpgas,
            vfpga=VFpgaConfig(num_host_streams=1, num_card_streams=1, num_net_streams=1),
            services=services,
        )
        super().__init__(env, config)
        self._vivado = VivadoHwManager(env)

    def reconfigure_shell(self, bitstream, services, apps=None) -> Generator:
        """v1 cannot swap services at run time: full device re-flash
        through Vivado Hardware Manager (device offline throughout)."""
        flow = BuildFlow(self.config.device, num_vfpgas=self.config.num_vfpgas)
        full = Bitstream(
            kind=BitstreamKind.FULL,
            target_region="device",
            size_bytes=flow.full_bitstream_bytes(get_module("coyote_v1_base").luts),
            services=services.service_names,
            device=self.config.device,
        )
        yield self.env.process(self._vivado.program(full))
        self._apply_shell_swap(services, apps)

    def shell_resources(self, app_names: List[str] = ()) -> ResourceVector:
        """v1 base shell + apps (for the Figure 11 utilisation bars)."""
        total = get_module("coyote_v1_base").resources
        if self.config.services.en_memory:
            total = total + get_module("hbm_ctrl").resources
        if self.config.services.en_rdma:
            total = total + get_module("rdma_stack").resources
        for name in app_names:
            total = total + get_module(name).resources
        return total
