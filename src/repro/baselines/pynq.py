"""The PYNQ + Vitis baseline for Figure 12.

Paper §9.7: "the baseline is not fully optimized, since it requires the
data to be copied from host memory to FPGA HBM, before being consumed by
the neural network, rather than being streamed directly into the model
from the host.  Part of the slow-down comes from the fact that the
CoyoteBackend integrates directly with Coyote v2's high-performance C++
library, whereas PYNQ provides a number of additional features and
control steps for FPGAs, implemented in Python."

This model charges exactly those two costs: a staging copy through FPGA
HBM in each direction, and the PYNQ Python runtime overhead per call
(buffer management, driver round-trips, ``allocate``/``sync`` semantics).
The IP itself is identical — same fixed-point arithmetic, same
initiation interval — so the gap isolates the deployment path.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..mem.hbm import HbmConfig, HbmController
from ..pcie.link import PcieLink, PcieLinkConfig
from ..sim.clock import FABRIC_CLOCK
from ..sim.engine import Environment
from ..synth.resources import ResourceVector
from .vitis_shell import VITIS_SHELL_RESOURCES

__all__ = ["PynqVitisOverlay", "PYNQ_CALL_OVERHEAD_NS"]

#: Python-side runtime cost per predict call: pynq.Buffer bookkeeping,
#: register pokes over /dev/mem, completion polling from Python.
PYNQ_CALL_OVERHEAD_NS = 950_000.0
#: Per-buffer sync (cache flush/invalidate + descriptor programming).
PYNQ_SYNC_OVERHEAD_NS = 160_000.0


class PynqVitisOverlay:
    """The baseline deployment path: host -> HBM -> kernel -> HBM -> host."""

    def __init__(self, env: Environment, ip, hbm: HbmController = None):
        self.env = env
        self.ip = ip
        self.link = PcieLink(env, PcieLinkConfig())
        self.hbm = hbm if hbm is not None else HbmController(
            env, HbmConfig(num_channels=4, channel_bytes=1 << 28)
        )
        self.calls = 0

    def predict(self, x: np.ndarray, batch_size: int = 1024) -> Generator:
        """Timed inference through the copy-staged PYNQ path."""
        ip = self.ip
        x = np.asarray(x, dtype=np.float64)
        total = x.shape[0]
        out = np.zeros((total, ip.output_width))
        ii_ns = FABRIC_CLOCK.cycles_to_ns(ip.initiation_interval_cycles)
        for start in range(0, total, batch_size):
            batch = x[start : start + batch_size]
            n = len(batch)
            in_bytes = n * ip.sample_in_bytes
            out_bytes = n * ip.sample_out_bytes
            self.calls += 1
            # Python runtime: allocate/deref pynq buffers, poke registers.
            yield self.env.timeout(PYNQ_CALL_OVERHEAD_NS)
            # Stage input: host -> HBM over PCIe, then sync.
            yield self.env.process(self._copy_to_hbm(0, in_bytes))
            yield self.env.timeout(PYNQ_SYNC_OVERHEAD_NS)
            # Kernel: reads HBM, computes, writes HBM.
            yield self.env.process(self.hbm.read(0, in_bytes))
            yield self.env.timeout(n * ii_ns + FABRIC_CLOCK.cycles_to_ns(ip.latency_cycles))
            yield self.env.process(self.hbm.write(1 << 20, bytes(out_bytes)))
            # Unstage output: HBM -> host, then sync.
            yield self.env.process(self._copy_from_hbm(1 << 20, out_bytes))
            yield self.env.timeout(PYNQ_SYNC_OVERHEAD_NS)
            out[start : start + n] = ip.forward_quantized(batch)
        return out

    def _copy_to_hbm(self, addr: int, nbytes: int) -> Generator:
        yield from self.link.h2c(nbytes)
        yield self.env.process(self.hbm.write(addr, bytes(min(nbytes, 4096))))

    def _copy_from_hbm(self, addr: int, nbytes: int) -> Generator:
        yield self.env.process(self.hbm.read(addr, nbytes))
        yield from self.link.c2h(nbytes)

    def total_resources(self) -> ResourceVector:
        """Vitis shell + DMA infrastructure + the IP (Figure 12 bars)."""
        return VITIS_SHELL_RESOURCES + self.ip.resources
