"""AmorphOS-style interface baseline (paper §2.2, Figure 2).

AmorphOS "requires the input data to be first copied from host memory to
FPGA HBM, before it can be processed by the application", incurring "a
non-negligible latency penalty" against Coyote's direct host streaming.
This model quantifies that penalty for the motivation experiments: the
same request serviced through (a) a staging copy into card memory and a
card-side read, vs (b) Coyote v2's direct host stream.
"""

from __future__ import annotations

from typing import Generator

from ..mem.hbm import HbmController
from ..pcie.xdma import Xdma
from ..sim.engine import Environment

__all__ = ["CopyThroughCardPath", "DirectHostStreamPath"]


class CopyThroughCardPath:
    """host -> HBM staging copy, then the kernel reads from HBM."""

    def __init__(self, env: Environment, xdma: Xdma, hbm: HbmController):
        self.env = env
        self.xdma = xdma
        self.hbm = hbm

    def deliver(self, nbytes: int) -> Generator:
        """Time for the kernel to see ``nbytes`` of host data."""
        start = self.env.now
        yield from self.xdma.link.h2c(nbytes)  # PCIe into the card
        yield self.env.process(self.hbm.write(0, bytes(min(nbytes, 1))))
        # The staging write occupies HBM for the full payload.
        yield self.env.timeout(nbytes / (self.hbm.config.channel_bandwidth * 4))
        yield self.env.process(self.hbm.read(0, nbytes))  # kernel fetch
        return self.env.now - start


class DirectHostStreamPath:
    """Coyote v2's path: the kernel consumes the PCIe stream directly."""

    def __init__(self, env: Environment, xdma: Xdma):
        self.env = env
        self.xdma = xdma

    def deliver(self, nbytes: int) -> Generator:
        start = self.env.now
        yield from self.xdma.link.h2c(nbytes)
        return self.env.now - start
