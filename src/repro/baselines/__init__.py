"""Baselines the paper compares against: Coyote v1, PYNQ/Vitis, AmorphOS."""

from .amorphos import CopyThroughCardPath, DirectHostStreamPath
from .coyote_v1 import CoyoteV1Shell
from .features import (
    FEATURE_COLUMNS,
    FEATURE_MATRIX,
    ShellFeatures,
    Support,
    coyote_v2_row,
    render_table,
)
from .pynq import PYNQ_CALL_OVERHEAD_NS, PynqVitisOverlay
from .vitis_shell import VITIS_SHELL_RESOURCES

__all__ = [
    "CoyoteV1Shell",
    "PynqVitisOverlay",
    "PYNQ_CALL_OVERHEAD_NS",
    "VITIS_SHELL_RESOURCES",
    "CopyThroughCardPath",
    "DirectHostStreamPath",
    "FEATURE_MATRIX",
    "FEATURE_COLUMNS",
    "ShellFeatures",
    "Support",
    "coyote_v2_row",
    "render_table",
]
