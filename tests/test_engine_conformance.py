"""Engine conformance & property suite: the contract for DES-core rewrites.

The event engine is the hottest loop in the repository, and every speedup
to it (slots-based heap entries, relay free-lists, inlined fast paths) is
only safe if the *exact* semantics are pinned down first.  This suite is
that pin:

* A deterministic scenario generator builds random process trees —
  timeouts, interrupts, AllOf/AnyOf compositions, succeed/fail races on
  shared events — from a single seeded ``random.Random``.  Because the
  RNG is drawn *inside* the processes as they resume, the full dispatch
  interleaving (not just final results) feeds back into the scenario:
  any reordering of simultaneous events produces a visibly different
  trace.
* Every engine step is recorded as a ``(time, priority, seq, kind)``
  tuple straight off the heap.  The recorder understands both heap-entry
  shapes — pre-refactor ``(time, prio, seq, event)`` tuples and
  slots-based events carrying their own key — so the same recorder
  produced the golden fixtures *before* the rewrite and verifies them
  after.
* ``tests/fixtures/engine_golden_traces.json`` stores, per seed, the
  sha256 digest of ``repr((trace, log))`` plus summary fields.  The
  fixtures were recorded against the pre-refactor engine; a digest
  mismatch means the rewrite changed observable semantics, not just
  speed.  Regenerate (only when a semantic change is *intended* and
  reviewed) with::

      PYTHONPATH=src python tests/test_engine_conformance.py --regenerate

* Hypothesis property tests check double-run determinism, time
  monotonicity and seq uniqueness over fresh random seeds, and one test
  repeats the double-run digest check with the SimSanitizer active.
"""

import hashlib
import json
import os
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

#: Example budgets scale with the profile: the CI ``engine-conformance``
#: job runs ``HYPOTHESIS_PROFILE=long`` for a much deeper derandomized
#: sweep of the property tests (explicit ``@settings`` would otherwise
#: override the profile's ``max_examples``).
_LONG = os.environ.get("HYPOTHESIS_PROFILE") == "long"
MAX_EXAMPLES = 500 if _LONG else 60
MAX_EXAMPLES_SANITIZED = 150 if _LONG else 25

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis import sanitizer as sanitizer_mod
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt

FIXTURE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "engine_golden_traces.json"
)

#: Seeds recorded in the golden fixture file.  Chosen arbitrarily; the
#: spread matters more than the values (each seed exercises a different
#: mix of interrupts, races and condition shapes).
GOLDEN_SEEDS = [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 1009, 4242, 90210]


# ------------------------------------------------------------- scenario


def _build_scenario(env, rng, log):
    """Spawn a random process tree over pure engine primitives.

    Guaranteed to terminate: every wait is on a timeout, a process, or a
    shared gate event that exactly two racers are certain to trigger.
    """

    gates = [Event(env) for _ in range(3)]

    def racer(idx, delay, fail_roll):
        yield env.timeout(delay)
        gate = gates[idx]
        if not gate.triggered:
            if fail_roll < 0.3:
                gate.fail(RuntimeError(f"race-{idx}"))
            else:
                gate.succeed(("win", idx))

    def gate_waiter(idx):
        try:
            value = yield gates[idx]
            log.append(("gate", env.now, idx, list(value)))
        except RuntimeError as exc:
            log.append(("gate_fail", env.now, idx, str(exc)))

    def sleeper(wid):
        try:
            yield env.timeout(rng.randint(5, 40))
            return ("slept", wid)
        except Interrupt as intr:
            log.append(("intr", env.now, wid, str(intr.cause)))
            yield env.timeout(rng.randint(0, 5))
            return ("resumed", wid)

    def attacker(target, delay, cause):
        yield env.timeout(delay)
        target.interrupt(cause)

    def worker(depth, wid):
        for step_no in range(rng.randint(1, 3)):
            choice = rng.randint(0, 4)
            if choice == 0:
                value = yield env.timeout(rng.randint(0, 30), value=(wid, step_no))
                log.append(("t", env.now, list(value)))
            elif choice == 1 and depth < 2:
                child = env.process(
                    worker(depth + 1, wid * 7 + step_no + 1), name=f"w{depth + 1}"
                )
                result = yield child
                log.append(("join", env.now, list(result)))
            elif choice == 2:
                waits = [
                    env.timeout(rng.randint(0, 20), value=k)
                    for k in range(rng.randint(1, 3))
                ]
                cond = (
                    AllOf(env, waits) if rng.random() < 0.5 else AnyOf(env, waits)
                )
                results = yield cond
                log.append(("cond", env.now, sorted(results.items())))
            elif choice == 3:
                victim = env.process(sleeper(wid), name="victim")
                if rng.random() < 0.7:
                    env.process(
                        attacker(victim, rng.randint(0, 25), f"a{wid}"),
                        name="attacker",
                    )
                result = yield victim
                log.append(("victim", env.now, list(result)))
            else:
                yield env.timeout(rng.randint(0, 10))
        return ("done", wid, env.now)

    for idx in range(len(gates)):
        env.process(gate_waiter(idx), name=f"gw{idx}")
        for _ in range(2):
            env.process(
                racer(idx, rng.randint(0, 40), rng.random()), name=f"racer{idx}"
            )
    for root in range(rng.randint(2, 4)):
        env.process(worker(0, root), name=f"root{root}")


# ------------------------------------------------------------- recorder


def _heap_key(entry):
    """(time, prio, seq, kind) for either heap-entry shape.

    Pre-refactor the heap held ``(time, prio, seq, event)`` tuples;
    post-refactor it holds slots-based events carrying their own key.
    """
    if isinstance(entry, tuple):
        when, prio, seq, event = entry
    else:
        event = entry
        when, prio, seq = entry._time, entry._prio, entry._seq
    return float(when), int(prio), int(seq), type(event).__name__


def record_trace(seed):
    """Run the seeded scenario to exhaustion, recording every dispatch."""
    env = Environment()
    rng = random.Random(seed)
    log = []
    _build_scenario(env, rng, log)
    trace = []
    while env._queue:
        trace.append(_heap_key(env._queue[0]))
        env.step()
    return trace, log, env


def trace_digest(trace, log):
    return hashlib.sha256(repr((trace, log)).encode()).hexdigest()


def _load_fixtures():
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


# ------------------------------------------------------- golden fixtures


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_golden_trace_matches_pre_refactor_recording(seed):
    fixtures = _load_fixtures()
    golden = fixtures["seeds"][str(seed)]
    trace, log, env = record_trace(seed)
    assert len(trace) == golden["events"], (
        f"seed {seed}: engine dispatched {len(trace)} events, golden recorded "
        f"{golden['events']}"
    )
    assert env.now == golden["final_time"]
    head = [list(row) for row in trace[: len(golden["head"])]]
    assert head == golden["head"], f"seed {seed}: first dispatches diverged"
    assert trace_digest(trace, log) == golden["digest"], (
        f"seed {seed}: (time, seq, kind) trace or process-visible results "
        "diverged from the pre-refactor engine"
    )


def test_fixture_file_covers_all_golden_seeds():
    fixtures = _load_fixtures()
    assert sorted(fixtures["seeds"]) == sorted(str(s) for s in GOLDEN_SEEDS)
    for record in fixtures["seeds"].values():
        assert record["events"] > 0
        assert len(record["digest"]) == 64


# ------------------------------------------------------ property checks


@settings(max_examples=MAX_EXAMPLES)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_double_run_is_trace_identical(seed):
    trace_a, log_a, _ = record_trace(seed)
    trace_b, log_b, _ = record_trace(seed)
    assert trace_a == trace_b
    assert log_a == log_b
    assert trace_digest(trace_a, log_a) == trace_digest(trace_b, log_b)


@settings(max_examples=MAX_EXAMPLES)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_dispatch_times_monotone_and_seqs_unique(seed):
    trace, _log, env = record_trace(seed)
    times = [row[0] for row in trace]
    assert times == sorted(times), "dispatch times must be non-decreasing"
    seqs = [row[2] for row in trace]
    assert len(seqs) == len(set(seqs)), "every heap entry owns a unique seq"
    # Note: among *simultaneous* events there is no global (priority,
    # seq) dispatch order — a callback at time T may schedule fresh
    # URGENT work at T that rightly overtakes older NORMAL entries.
    # The golden traces pin the exact interleaving instead.
    assert env.events_processed == len(trace)


@settings(max_examples=MAX_EXAMPLES_SANITIZED)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_double_run_digest_equal_under_sanitizer(seed):
    """The rewritten fast paths must stay observable-identical *and*
    violation-free with the SimSanitizer attached (REPRO_SANITIZE=1
    equivalent: ``activate()`` installs the process-wide instance every
    new Environment picks up)."""
    previous = sanitizer_mod._active
    previous_var = os.environ.get("REPRO_SANITIZE")
    sanitizer = sanitizer_mod.activate()
    try:
        os.environ["REPRO_SANITIZE"] = previous_var or "1"
        trace_a, log_a, _ = record_trace(seed)
        trace_b, log_b, _ = record_trace(seed)
        assert trace_digest(trace_a, log_a) == trace_digest(trace_b, log_b)
        assert not sanitizer.violations, sanitizer.report()
    finally:
        # Restore the env var too: leaking it silently turned the rest
        # of a plain suite run into a sanitized one.
        if previous_var is None:
            os.environ.pop("REPRO_SANITIZE", None)
        sanitizer_mod.activate(previous) if previous is not None else (
            sanitizer_mod.deactivate()
        )


def test_sanitized_run_observes_every_step():
    """The sanitizer hooks must sit on the fast path too (a rewrite that
    skips them under ``run()`` would silently disable REPRO_SANITIZE)."""
    previous = sanitizer_mod._active
    previous_var = os.environ.get("REPRO_SANITIZE")
    sanitizer = sanitizer_mod.activate()
    try:
        # The env-var is the switch Environment construction reads; the
        # activate() above pins which instance it picks up.
        os.environ["REPRO_SANITIZE"] = previous_var or "1"
        env = Environment()
        assert env.sanitizer is sanitizer

        def proc():
            yield env.timeout(5)
            yield env.timeout(7)

        env.process(proc())
        env.run()
        assert not sanitizer.violations
    finally:
        if previous_var is None:
            os.environ.pop("REPRO_SANITIZE", None)
        sanitizer_mod.activate(previous) if previous is not None else (
            sanitizer_mod.deactivate()
        )


# ------------------------------------------------------- regeneration


def regenerate(path=FIXTURE_PATH):  # pragma: no cover - maintenance entry
    records = {}
    for seed in GOLDEN_SEEDS:
        trace, log, env = record_trace(seed)
        records[str(seed)] = {
            "digest": trace_digest(trace, log),
            "events": len(trace),
            "final_time": env.now,
            "head": [list(row) for row in trace[:4]],
        }
    payload = {
        "comment": (
            "Golden (time, priority, seq, kind) dispatch traces recorded "
            "against the pre-refactor engine; see tests/test_engine_conformance.py"
        ),
        "seeds": records,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(records)} golden traces to {path}")


if __name__ == "__main__":  # pragma: no cover - maintenance entry
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
