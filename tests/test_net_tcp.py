"""Tests for the TCP/IP offload stack."""

import pytest

from repro.faults import NET_DROP, FaultInjector, FaultPlan, FaultRule
from repro.net import (
    Cmac,
    MacAddress,
    Switch,
    TcpError,
    TcpHeader,
    TcpPacket,
    TcpStack,
    TcpState,
)
from repro.net.tcp import MSS, TcpFlags
from repro.sim import Environment

MAC_A = MacAddress(0x020000000A01)
MAC_B = MacAddress(0x020000000A02)
IP_A = 0x0A000001
IP_B = 0x0A000002


def two_stacks(**kw):
    env = Environment()
    switch = Switch(env)
    cmac_a = Cmac(env, "a")
    cmac_b = Cmac(env, "b")
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    a = TcpStack(env, cmac_a, MAC_A, IP_A, name="a", **kw)
    b = TcpStack(env, cmac_b, MAC_B, IP_B, name="b", **kw)
    return env, a, b, switch


# ---------------------------------------------------------------- headers

def test_header_roundtrip():
    hdr = TcpHeader(src_port=5000, dst_port=80, seq=12345, ack=999,
                    flags=TcpFlags.SYN | TcpFlags.ACK, window=4096)
    back = TcpHeader.unpack(hdr.pack())
    assert (back.src_port, back.dst_port, back.seq, back.ack) == (5000, 80, 12345, 999)
    assert back.has(TcpFlags.SYN)
    assert back.has(TcpFlags.ACK)
    assert not back.has(TcpFlags.FIN)
    assert back.window == 4096


def test_packet_wire_roundtrip():
    env, a, b, _sw = two_stacks()
    conn_stub = type("C", (), {
        "local_port": 1, "remote_port": 2, "remote_ip": IP_B,
        "remote_mac": MAC_B, "rcv_nxt": 0, "rcv_window": 100,
    })()
    header = a._segment_header(conn_stub, TcpFlags.PSH | TcpFlags.ACK, seq=7)
    packet = a._build(conn_stub, header, b"payload!")
    back = TcpPacket.from_bytes(packet.to_bytes())
    assert back.payload == b"payload!"
    assert back.tcp.seq == 7
    assert "PSH" in back.describe()


# ------------------------------------------------------------- handshakes

def test_three_way_handshake():
    env, a, b, _sw = two_stacks()
    b.listen(80)
    results = {}

    def client():
        conn = yield from a.connect(MAC_B, IP_B, 80, local_port=5000)
        results["client"] = conn

    def server():
        conn = yield from b.accept(80)
        results["server"] = conn

    env.process(client())
    server_proc = env.process(server())
    env.run(server_proc)
    env.run(env.peek + 10_000 if env.peek != float("inf") else env.now)
    assert results["client"].state is TcpState.ESTABLISHED
    assert results["server"].state in (TcpState.ESTABLISHED, TcpState.SYN_RECEIVED)


def test_connect_to_closed_port_counts_reset():
    env, a, b, _sw = two_stacks()

    def client():
        yield from a.connect(MAC_B, IP_B, 81, local_port=5000)

    env.process(client())
    env.run(until=1_000_000)
    assert b.stats["resets"] >= 1


def test_duplicate_listen_rejected():
    env, a, _b, _sw = two_stacks()
    a.listen(80)
    with pytest.raises(TcpError):
        a.listen(80)


def test_accept_without_listen_rejected():
    env, a, _b, _sw = two_stacks()
    with pytest.raises(TcpError):
        a.accept(99)


# ------------------------------------------------------------ data stream

def exchange(env, a, b, payload, port=80):
    """Connect, send payload a->b, return what b received."""
    b.listen(port)
    received = {}

    def client():
        conn = yield from a.connect(MAC_B, IP_B, port, local_port=5000)
        yield from conn.send(payload)

    def server():
        conn = yield from b.accept(port)
        data = yield from conn.recv(len(payload))
        received["data"] = data

    env.process(client())
    server_proc = env.process(server())
    env.run(server_proc)
    return received["data"]


def test_small_message_roundtrip():
    env, a, b, _sw = two_stacks()
    assert exchange(env, a, b, b"hello tcp over the fabric") == b"hello tcp over the fabric"


def test_multi_segment_stream():
    env, a, b, _sw = two_stacks()
    payload = bytes(i % 251 for i in range(10 * MSS + 123))
    assert exchange(env, a, b, payload) == payload


def test_send_on_unestablished_connection_rejected():
    env, a, b, _sw = two_stacks()
    from repro.net.tcp import TcpConnection

    conn = TcpConnection(stack=a, local_port=1)

    def proc():
        yield from conn.send(b"x")

    env.process(proc())
    with pytest.raises(TcpError):
        env.run()


def test_retransmission_on_loss():
    env, a, b, switch = two_stacks(retransmit_timeout_ns=100_000)
    # Drop exactly one data segment (never a handshake frame).
    plan = FaultPlan(rules=[FaultRule(
        site=NET_DROP,
        at_events=(0,),
        match=lambda pkt: isinstance(pkt, TcpPacket) and bool(pkt.payload),
    )])
    FaultInjector(plan).arm(switch=switch)
    payload = bytes(range(256)) * 20  # multiple segments
    assert exchange(env, a, b, payload) == payload
    assert a.stats["retransmissions"] >= 1


def test_bidirectional_transfer():
    env, a, b, _sw = two_stacks()
    b.listen(80)
    results = {}

    def client():
        conn = yield from a.connect(MAC_B, IP_B, 80, local_port=5000)
        yield from conn.send(b"ping" * 500)
        reply = yield from conn.recv(4)
        results["reply"] = reply

    def server():
        conn = yield from b.accept(80)
        data = yield from conn.recv(2000)
        results["request"] = data
        yield from conn.send(b"pong")

    client_proc = env.process(client())
    env.process(server())
    env.run(client_proc)
    assert results["request"] == b"ping" * 500
    assert results["reply"] == b"pong"


def test_flow_control_respects_peer_window():
    """A slow receiver's shrinking window throttles the sender."""
    env, a, b, _sw = two_stacks()
    b.listen(80)
    done = {}

    def client():
        conn = yield from a.connect(MAC_B, IP_B, 80, local_port=5000)
        yield from conn.send(bytes(256 * 1024))  # 4x the receive window
        done["sent"] = env.now

    def server():
        conn = yield from b.accept(80)
        # Drain slowly: 32 KB chunks with gaps.
        total = 0
        while total < 256 * 1024:
            chunk = yield from conn.recv(32 * 1024)
            total += len(chunk)
            yield env.timeout(50_000)
        done["received"] = env.now

    env.process(client())
    server_proc = env.process(server())
    env.run(server_proc)
    assert done["received"] >= done["sent"]
    assert a.stats["resets"] == 0


def test_fin_teardown():
    env, a, b, _sw = two_stacks()
    b.listen(80)
    states = {}

    def client():
        conn = yield from a.connect(MAC_B, IP_B, 80, local_port=5000)
        yield from conn.send(b"bye")
        yield from conn.close()
        states["client"] = conn.state

    def server():
        conn = yield from b.accept(80)
        yield from conn.recv(3)
        yield from conn.close()
        states["server_state_after"] = conn.state

    client_proc = env.process(client())
    env.process(server())
    env.run(client_proc)
    assert states["client"] is TcpState.CLOSED
