"""Integration tests for the RoCE v2 RDMA stack over the switch fabric."""

import pytest

from repro.faults import NET_DROP, FaultInjector, FaultPlan, FaultRule
from repro.mem import SparseMemory
from repro.net import (
    Cmac,
    MacAddress,
    QpEndpoint,
    RdmaConfig,
    RdmaError,
    RdmaStack,
    RoceOpcode,
    Switch,
)
from repro.sim import Environment


def make_node(env, switch, mac_value, ip, name):
    """A simulated node: CMAC + RDMA stack + flat local memory."""
    mac = MacAddress(mac_value)
    cmac = Cmac(env, name=f"{name}-cmac")
    switch.attach(mac, cmac)
    stack = RdmaStack(env, cmac, mac, ip, name=name)
    memory = SparseMemory(1 << 24, name=f"{name}-mem")

    def read_local(vaddr, length):
        yield env.timeout(length / 12.0)  # ~PCIe-ish local fetch
        return memory.read(vaddr, length)

    def write_local(vaddr, data, length):
        yield env.timeout(length / 12.0)
        if data is not None:
            memory.write(vaddr, data)

    stack.bind_memory(read_local, write_local)
    return stack, memory


def connect(stack_a, stack_b, qpn_a=1, qpn_b=2):
    qa = stack_a.create_qp(qpn_a, psn=10)
    qb = stack_b.create_qp(qpn_b, psn=20)
    qa.connect(qb.local)
    qb.connect(qa.local)
    return qa, qb


def two_nodes(config=None):
    env = Environment()
    switch = Switch(env)
    a, mem_a = make_node(env, switch, 0x02_0000_0001, 0x0A000001, "a")
    b, mem_b = make_node(env, switch, 0x02_0000_0002, 0x0A000002, "b")
    if config is not None:
        a.config = config
        b.config = config
    connect(a, b)
    return env, (a, mem_a), (b, mem_b), switch


def test_write_single_packet():
    env, (a, mem_a), (b, mem_b), _sw = two_nodes()
    mem_a.write(0x100, b"rdma write payload")

    def proc():
        completion = yield from a.rdma_write(1, 0x100, 0x5000, 18)
        return completion

    completion = env.run(env.process(proc()))
    assert completion.status == "success"
    assert mem_b.read(0x5000, 18) == b"rdma write payload"


def test_write_multi_packet_segmentation():
    env, (a, mem_a), (b, mem_b), _sw = two_nodes()
    payload = bytes(i % 251 for i in range(20_000))  # 5 MTU-sized packets
    mem_a.write(0, payload)

    def proc():
        yield from a.rdma_write(1, 0, 0x8000, len(payload))

    env.run(env.process(proc()))
    assert mem_b.read(0x8000, len(payload)) == payload
    # FIRST + 3 MIDDLE + LAST
    assert a.stats["tx_packets"] >= 5


def test_read_roundtrip():
    env, (a, mem_a), (b, mem_b), _sw = two_nodes()
    payload = b"remote data " * 700  # multi-packet read
    mem_b.write(0x2000, payload)

    def proc():
        yield from a.rdma_read(1, 0x300, 0x2000, len(payload))

    env.run(env.process(proc()))
    assert mem_a.read(0x300, len(payload)) == payload


def test_send_recv():
    env, (a, _mem_a), (b, _mem_b), _sw = two_nodes()
    got = []

    def sender():
        yield from a.send(1, b"two-sided hello")

    def receiver():
        message = yield from b.recv(2)
        got.append(message)

    env.process(sender())
    receiver_proc = env.process(receiver())
    env.run(receiver_proc)
    assert got == [b"two-sided hello"]


def test_write_completion_lands_in_cq():
    env, (a, mem_a), (_b, _mem_b), _sw = two_nodes()
    mem_a.write(0, b"y" * 100)

    def proc():
        yield from a.rdma_write(1, 0, 0x100, 100, wr_id=77)
        completion = yield a.cq.get()
        return completion

    completion = env.run(env.process(proc()))
    assert completion.wr_id == 77
    assert completion.opcode == "WRITE"


def test_retransmission_after_packet_loss():
    config = RdmaConfig(retransmit_timeout_ns=30_000)
    env, (a, mem_a), (b, mem_b), switch = two_nodes(config)
    payload = bytes(i % 256 for i in range(12_288))  # 3 packets
    mem_a.write(0, payload)
    # Drop the first MIDDLE data packet (and only it) seen on the wire.
    plan = FaultPlan(rules=[FaultRule(
        site=NET_DROP,
        at_events=(0,),
        match=lambda pkt: pkt.bth.opcode == RoceOpcode.RDMA_WRITE_MIDDLE,
    )])
    injector = FaultInjector(plan).arm(switch=switch)

    def proc():
        yield from a.rdma_write(1, 0, 0x4000, len(payload))

    env.run(env.process(proc()))
    assert injector.fire_counts[NET_DROP] == 1, "fault injection never triggered"
    assert a.stats["retransmissions"] >= 1
    assert mem_b.read(0x4000, len(payload)) == payload


def test_nak_triggers_go_back_n():
    config = RdmaConfig(retransmit_timeout_ns=1_000_000)  # rely on NAK, not timer
    env, (a, mem_a), (b, mem_b), switch = two_nodes(config)
    payload = bytes(i % 256 for i in range(12_288))
    mem_a.write(0, payload)
    # Drop the FIRST data packet once so the receiver NAKs the PSN gap.
    plan = FaultPlan(rules=[FaultRule(
        site=NET_DROP,
        at_events=(0,),
        match=lambda pkt: pkt.bth.opcode == RoceOpcode.RDMA_WRITE_FIRST,
    )])
    FaultInjector(plan).arm(switch=switch)

    def proc():
        yield from a.rdma_write(1, 0, 0, len(payload))

    env.run(env.process(proc()))
    assert b.stats["naks_sent"] >= 1
    assert a.stats["naks_received"] >= 1
    assert mem_b.read(0, len(payload)) == payload


def test_duplicate_packets_ignored():
    """After go-back-N the receiver sees duplicates and must not re-apply them."""
    config = RdmaConfig(retransmit_timeout_ns=20_000)
    env, (a, mem_a), (b, mem_b), switch = two_nodes(config)
    payload = bytes(range(256)) * 16
    mem_a.write(0, payload)
    # Drop the first ACK so the sender retransmits an already-applied write.
    plan = FaultPlan(rules=[FaultRule(
        site=NET_DROP,
        at_events=(0,),
        match=lambda pkt: pkt.bth.opcode == RoceOpcode.ACKNOWLEDGE,
    )])
    FaultInjector(plan).arm(switch=switch)

    def proc():
        yield from a.rdma_write(1, 0, 0x1000, len(payload))

    env.run(env.process(proc()))
    assert mem_b.read(0x1000, len(payload)) == payload


def test_verbs_on_unconnected_qp_rejected():
    env = Environment()
    switch = Switch(env)
    a, _mem = make_node(env, switch, 0x02_0000_0003, 0x0A000003, "solo")
    a.create_qp(5)

    def proc():
        yield from a.rdma_write(5, 0, 0, 10)

    env.process(proc())
    with pytest.raises(RdmaError, match="not connected"):
        env.run()


def test_rx_offload_transforms_payload():
    """On-datapath vFPGA processing (SmartNIC-style offload)."""
    env, (a, mem_a), (b, mem_b), _sw = two_nodes()
    mem_a.write(0, b"abc")
    b.rx_offloads[2] = lambda data: data.upper()

    def proc():
        yield from a.rdma_write(1, 0, 0x10, 3)

    env.run(env.process(proc()))
    assert mem_b.read(0x10, 3) == b"ABC"


def test_throughput_approaches_line_rate():
    """Large transfers should achieve a solid fraction of 100G."""
    env, (a, mem_a), (_b, _mem_b), _sw = two_nodes()
    total = 4 * 1024 * 1024  # 4 MB

    def proc():
        start = env.now
        yield from a.rdma_write(1, 0, 0, total)
        return total / (env.now - start)  # bytes/ns == GB/s

    gbps = env.run(env.process(proc()))
    # 100G = 12.5 GB/s; expect > 60% of line rate after headers/acks.
    assert gbps > 7.5, f"only {gbps:.2f} GB/s"
