"""Tests for RDMA collectives (broadcast, ring allreduce) and their
fault-tolerance contract: leg deadlines, symmetric abort, rebuild."""

import numpy as np
import pytest

from repro.mem import SparseMemory
from repro.net import (
    Cmac,
    CollectiveAbortError,
    CollectiveError,
    CollectiveGroup,
    CollectiveTimeoutError,
    MacAddress,
    RdmaStack,
    Switch,
    sum_i32,
)
from repro.sim import AllOf, Environment


def make_cluster(n):
    env = Environment()
    switch = Switch(env)
    stacks = []
    for i in range(n):
        mac = MacAddress(0x02_0000_2000 + i)
        cmac = Cmac(env, name=f"node{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, 0x0A000100 + i, name=f"node{i}")
        memory = SparseMemory(1 << 22, name=f"mem{i}")

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
    return env, stacks


def test_group_needs_two_members():
    env, stacks = make_cluster(1)
    with pytest.raises(CollectiveError):
        CollectiveGroup(env, stacks)


def test_sum_i32_wraps():
    a = np.array([1, 0xFFFFFFFF], dtype="<u4").tobytes()
    b = np.array([2, 1], dtype="<u4").tobytes()
    out = np.frombuffer(sum_i32(a, b), dtype="<u4")
    assert out.tolist() == [3, 0]


def test_sum_i32_length_mismatch():
    with pytest.raises(CollectiveError):
        sum_i32(b"\x00" * 4, b"\x00" * 8)


@pytest.mark.parametrize("n", [2, 3, 4, 7])
def test_broadcast_reaches_every_rank(n):
    env, stacks = make_cluster(n)
    group = CollectiveGroup(env, stacks)
    payload = bytes(range(256)) * 8
    results = {}

    def member(rank):
        data = yield from group.broadcast(
            root=0, payload=payload if rank == 0 else None, rank=rank
        )
        results[rank] = data

    procs = [env.process(member(r)) for r in range(n)]
    env.run(AllOf(env, procs))
    assert all(results[r] == payload for r in range(n))


def test_broadcast_nonzero_root():
    env, stacks = make_cluster(4)
    group = CollectiveGroup(env, stacks)
    payload = b"root-two!" * 100
    results = {}

    def member(rank):
        data = yield from group.broadcast(
            root=2, payload=payload if rank == 2 else None, rank=rank
        )
        results[rank] = data

    procs = [env.process(member(r)) for r in range(4)]
    env.run(AllOf(env, procs))
    assert all(results[r] == payload for r in range(4))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_allreduce_sums_contributions(n):
    env, stacks = make_cluster(n)
    group = CollectiveGroup(env, stacks)
    elements = 64 * n  # divisible into n int32 chunks
    contributions = [
        np.arange(elements, dtype="<u4") * (rank + 1) for rank in range(n)
    ]
    expected = sum(contributions).astype("<u4")
    results = {}

    def member(rank):
        data = yield from group.allreduce(contributions[rank].tobytes(), rank)
        results[rank] = np.frombuffer(data, dtype="<u4")

    procs = [env.process(member(r)) for r in range(n)]
    env.run(AllOf(env, procs))
    for rank in range(n):
        assert (results[rank] == expected).all(), rank


def test_allreduce_rejects_unaligned_payload():
    env, stacks = make_cluster(3)
    group = CollectiveGroup(env, stacks)

    def member():
        yield from group.allreduce(b"\x00" * 10, 0)  # not divisible by 12

    env.process(member())
    with pytest.raises(CollectiveError):
        env.run()


def test_allreduce_bandwidth_optimality():
    """Ring allreduce moves ~2(n-1)/n of the buffer per node, far less
    than the naive all-to-all (n-1 copies)."""
    n = 4
    env, stacks = make_cluster(n)
    group = CollectiveGroup(env, stacks)
    elements = 256 * n
    payload = np.ones(elements, dtype="<u4").tobytes()
    procs = [
        env.process(group.allreduce(payload, r)) for r in range(n)
    ]
    env.run(AllOf(env, procs))
    sent = stacks[0].stats["tx_packets"]
    # 2(n-1) steps of one chunk (1/n of 4 KB) plus acks: bounded well
    # below what n-1 full-buffer sends would need.
    naive_packets = (n - 1) * (len(payload) // 4096 + 1) * 2
    assert sent < naive_packets * 2


# ------------------------------------------------- deadlines / abort / rebuild


def test_allreduce_leg_timeout_names_the_offending_rank():
    """A rank that never shows up must not park the others forever: the
    leg deadline fires and the error says *who* was waited on."""
    env, stacks = make_cluster(2)
    group = CollectiveGroup(env, stacks)
    payload = np.ones(8, dtype="<u4").tobytes()
    outcome = {}

    def member():
        try:
            yield from group.allreduce(payload, rank=0, timeout_ns=200_000.0)
        except CollectiveTimeoutError as exc:
            outcome["exc"] = exc

    proc = env.process(member())  # rank 1 never joins
    env.run(proc)
    env.run()  # the abort left nothing parked
    exc = outcome["exc"]
    assert exc.rank == 0 and exc.peer == 1
    assert "timed out at rank 0 waiting on rank 1" in str(exc)
    assert isinstance(exc, CollectiveAbortError)  # timeouts abort the group
    assert group.stats["timeouts"] == 1
    assert group.aborted


def test_broadcast_leg_timeout_on_missing_root():
    env, stacks = make_cluster(2)
    group = CollectiveGroup(env, stacks)
    outcome = {}

    def member():
        try:
            yield from group.broadcast(
                root=0, payload=None, rank=1, timeout_ns=150_000.0
            )
        except CollectiveTimeoutError as exc:
            outcome["exc"] = exc

    proc = env.process(member())  # the root never broadcasts
    env.run(proc)
    env.run()
    assert outcome["exc"].op == "broadcast"
    assert outcome["exc"].peer == 0
    assert group.stats["timeouts"] == 1


def test_aborted_group_is_sticky_until_rebuilt():
    env, stacks = make_cluster(2)
    group = CollectiveGroup(env, stacks)
    payload = np.ones(8, dtype="<u4").tobytes()

    def member():
        try:
            yield from group.allreduce(payload, rank=0, timeout_ns=100_000.0)
        except CollectiveTimeoutError:
            pass

    env.run(env.process(member()))
    assert group.aborted
    with pytest.raises(CollectiveAbortError) as exc_info:
        group.allreduce(payload, rank=0).send(None)  # rejected at the door
    assert isinstance(exc_info.value.cause, CollectiveTimeoutError)
    with pytest.raises(CollectiveAbortError):
        group.broadcast(root=0, payload=payload, rank=0).send(None)
    env.run()


@pytest.mark.parametrize("survivors,message", [
    ([0], "at least 2 survivors"),
    ([0, 0, 1], "must be unique"),
])
def test_rebuild_validates_the_survivor_list(survivors, message):
    env, stacks = make_cluster(3)
    group = CollectiveGroup(env, stacks)
    with pytest.raises(CollectiveError, match=message):
        group.rebuild(survivors)


def test_rebuild_rejects_halted_survivors():
    env, stacks = make_cluster(3)
    group = CollectiveGroup(env, stacks)
    stacks[2].halt(reason="crash")
    with pytest.raises(CollectiveError, match="halted; not a survivor"):
        group.rebuild([0, 1, 2])
    env.run()


def test_rebuild_shares_lifetime_stats_and_retires_the_old_group():
    env, stacks = make_cluster(4)
    group = CollectiveGroup(env, stacks)
    rebuilt = group.rebuild([0, 1, 2])  # voluntary shrink
    assert rebuilt is not group
    assert rebuilt.stats is group.stats  # one communicator lineage
    assert rebuilt.stats["rebuilds"] == 1
    assert group.aborted and not rebuilt.aborted
    payload = np.ones(12, dtype="<u4").tobytes()
    results = {}

    def member(rank):
        results[rank] = yield from rebuilt.allreduce(payload, rank=rank)

    procs = [env.process(member(r)) for r in range(3)]
    env.run(AllOf(env, procs))
    env.run()
    expected = np.full(12, 3, dtype="<u4").tobytes()
    assert all(results[r] == expected for r in range(3))
    assert rebuilt.stats["completed"] == 3
