"""Unit tests for the HBM controller model."""

import pytest

from repro.mem import HbmConfig, HbmController
from repro.sim import Environment


def small_config(**kw):
    defaults = dict(num_channels=4, channel_bytes=1 << 20, stripe_bytes=4096)
    defaults.update(kw)
    return HbmConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        HbmConfig(num_channels=0)
    with pytest.raises(ValueError):
        HbmConfig(stripe_bytes=3000)


def test_channel_bandwidth_is_nominal_hbm():
    cfg = HbmConfig()
    # 32 bytes/cycle at 450 MHz = 14.4 GB/s
    assert cfg.channel_bandwidth == pytest.approx(14.4)


def test_striping_maps_consecutive_stripes_to_consecutive_channels():
    env = Environment()
    hbm = HbmController(env, small_config())
    assert hbm.channel_of(0) == 0
    assert hbm.channel_of(4096) == 1
    assert hbm.channel_of(4 * 4096) == 0  # wraps


def test_functional_write_read_roundtrip():
    env = Environment()
    hbm = HbmController(env, small_config())
    payload = bytes(range(256)) * 64  # 16 KB across all 4 channels

    def proc():
        yield from hbm.write(100, payload)
        data = yield from hbm.read(100, len(payload))
        return data

    assert env.run(env.process(proc())) == payload


def test_striped_access_faster_than_single_channel():
    """Reading N bytes striped over 4 channels beats one channel."""
    cfg_striped = small_config()
    cfg_single = small_config(num_channels=1)
    times = {}
    for tag, cfg in [("striped", cfg_striped), ("single", cfg_single)]:
        env = Environment()
        hbm = HbmController(env, cfg)

        def proc(h=hbm, e=env):
            yield from h.read(0, 64 * 1024)
            return e.now

        times[tag] = env.run(env.process(proc()))
    assert times["striped"] < times["single"] / 2


def test_counters():
    env = Environment()
    hbm = HbmController(env, small_config())

    def proc():
        yield from hbm.write(0, b"a" * 1000)
        yield from hbm.read(0, 500)

    env.run(env.process(proc()))
    assert hbm.bytes_written == 1000
    assert hbm.bytes_read == 500


def test_untimed_access():
    env = Environment()
    hbm = HbmController(env, small_config())
    hbm.write_now(42, b"hello")
    assert hbm.read_now(42, 5) == b"hello"


def test_unaligned_request_splits_at_stripe_boundary():
    env = Environment()
    hbm = HbmController(env, small_config())
    stripes = list(hbm._stripes(4000, 200))
    # Crosses the 4096 boundary: 96 bytes on channel 0, 104 on channel 1.
    assert stripes == [(0, 4000, 96), (1, 4096, 104)]
