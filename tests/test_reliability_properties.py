"""Property-based reliability tests: random loss, intact delivery.

The invariant both reliable transports must uphold: under arbitrary
packet-loss patterns (below livelock rates), the receiver ends up with
exactly the bytes the sender submitted — no loss, no duplication, no
reordering visible to the application.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import NET_DROP, FaultInjector, FaultPlan, FaultRule
from repro.mem import SparseMemory
from repro.net import Cmac, MacAddress, RdmaConfig, RdmaStack, Switch
from repro.net.tcp import TcpPacket, TcpStack
from repro.sim import Environment


def rdma_pair(env, switch, config=None):
    stacks = []
    memories = []
    for i, (mac_val, ip) in enumerate([(0x02_00_0D01, 0xA000001), (0x02_00_0D02, 0xA000002)]):
        mac = MacAddress(mac_val)
        cmac = Cmac(env, name=f"n{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, ip, config or RdmaConfig(), name=f"n{i}")
        memory = SparseMemory(1 << 22)

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
        memories.append(memory)
    qa = stacks[0].create_qp(1, psn=3)
    qb = stacks[1].create_qp(2, psn=8)
    qa.connect(qb.local)
    qb.connect(qa.local)
    return stacks, memories


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_pct=st.integers(min_value=0, max_value=20),
    nbytes=st.integers(min_value=1, max_value=40_000),
)
def test_rdma_write_survives_random_loss(seed, drop_pct, nbytes):
    env = Environment()
    switch = Switch(env)
    stacks, memories = rdma_pair(env, switch, RdmaConfig(retransmit_timeout_ns=50_000))
    rng = random.Random(seed)
    FaultInjector(FaultPlan.build(seed=seed, net_drop=drop_pct / 100.0)).arm(switch=switch)
    payload = bytes(rng.randrange(256) for _ in range(min(nbytes, 4096))) * (
        max(1, nbytes // 4096)
    )
    payload = payload[:nbytes]
    memories[0].write(0, payload)

    def proc():
        yield from stacks[0].rdma_write(1, 0, 0x1000, len(payload))

    env.run(env.process(proc()))
    assert memories[1].read(0x1000, len(payload)) == payload


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop_pct=st.integers(min_value=0, max_value=15),
    nbytes=st.integers(min_value=1, max_value=30_000),
)
def test_tcp_stream_survives_random_loss(seed, drop_pct, nbytes):
    env = Environment()
    switch = Switch(env)
    mac_a, mac_b = MacAddress(0x02_00_0E01), MacAddress(0x02_00_0E02)
    cmac_a, cmac_b = Cmac(env, "a"), Cmac(env, "b")
    switch.attach(mac_a, cmac_a)
    switch.attach(mac_b, cmac_b)
    a = TcpStack(env, cmac_a, mac_a, 0xA000001, retransmit_timeout_ns=80_000)
    b = TcpStack(env, cmac_b, mac_b, 0xA000002, retransmit_timeout_ns=80_000)
    rng = random.Random(seed)
    # Never drop handshake segments (a lost SYN just retries forever in
    # this offload stack; the property under test is the data path).
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(
                site=NET_DROP,
                probability=drop_pct / 100.0,
                match=lambda pkt: isinstance(pkt, TcpPacket) and bool(pkt.payload),
            )
        ],
    )
    FaultInjector(plan).arm(switch=switch)
    payload = bytes(rng.randrange(256) for _ in range(nbytes))
    b.listen(80)
    received = {}

    def client():
        conn = yield from a.connect(mac_b, 0xA000002, 80, 5000)
        yield from conn.send(payload)

    def server():
        conn = yield from b.accept(80)
        received["data"] = yield from conn.recv(len(payload))

    env.process(client())
    server_proc = env.process(server())
    env.run(server_proc)
    assert received["data"] == payload
