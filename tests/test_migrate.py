"""Checkpoint/restore, live migration and rolling-upgrade tests.

Covers the full `repro.migrate` stack: checkpoint encode/decode
integrity (checksum + version gates), state fidelity across a restore
(memory bytes, MR keys, TLB pins, ring CSRs, CSR replay), the
transfer-drop fault site (retry, then fallback-to-source on
exhaustion), scheduler queue transplantation, node drains and the
rolling-upgrade orchestrator under live traffic, plus the
close-with-work-in-flight driver regression.
"""

import hashlib

import pytest

from repro import CThread, Environment, ServiceConfig
from repro.api import AppScheduler
from repro.apps import AesEcbApp, PassThroughApp
from repro.cluster import FpgaCluster
from repro.driver.errors import ProcessClosedError
from repro.driver.report import card_report
from repro.driver.ringbuf import RingOp, RingOpcode
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults.plan import MIGRATE_TRANSFER_DROP
from repro.health import (
    AdmissionError,
    ClusterHealthConfig,
    ClusterMonitor,
    NodeDownError,
    QuarantinedError,
    RecoveredError,
)
from repro.mem import PAGE_4K, AllocType, MmuConfig, TlbConfig
from repro.migrate import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointVersionError,
    LiveMigrator,
    MigratedError,
    TransferAbortedError,
    VfpgaCheckpoint,
    snapshot_tenant,
)
from repro.net import RdmaConfig
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def make_cluster(env, nodes=2):
    """A cluster with 4K pages (compact checkpoints) and fast RC retry."""
    return FpgaCluster(
        env, nodes,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_4K)),
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )


def seed_tenant(env, cluster, pid=7, node=0):
    """A cThread with memory, an MR, undrained ring slots and CSR state."""

    def setup():
        thread = CThread(cluster[node].driver, 0, pid=pid)
        buf = yield from thread.get_mem(2 * PAGE_4K, alloc_type=AllocType.REG)
        thread.write_buffer(buf.vaddr, bytes((pid + i) % 256 for i in range(2 * PAGE_4K)))
        thread.setup_rings(8)
        mr = yield from thread.register_mr(buf.vaddr, 2 * PAGE_4K)
        cluster[node].driver.ring_post(
            pid, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=PAGE_4K)
        )
        yield from thread.set_csr(0xDEAD, 40)
        yield from thread.set_csr(0xBEEF, 41)
        return thread, buf, mr

    proc = env.process(setup())
    env.run(proc)
    return proc.value


# ----------------------------------------------------------- encoding


def test_checkpoint_roundtrip_preserves_payload():
    env = Environment()
    cluster = make_cluster(env)
    seed_tenant(env, cluster)
    ckpt = snapshot_tenant(cluster[0].driver, 7, src_node=0)
    clone = VfpgaCheckpoint.from_bytes(ckpt.to_bytes())
    assert clone.payload() == ckpt.payload()
    assert clone.sha256() == ckpt.sha256()
    assert clone.ring_slots == 8 and clone.ring_tail - clone.ring_head == 1
    assert clone.csrs[40] == 0xDEAD and clone.csrs[41] == 0xBEEF
    assert len(clone.mrs) == 1 and clone.mrs[0]["num_pages"] == 2
    assert len(clone.memory) == 2  # two 4K pages imaged


def test_checkpoint_rejects_corrupt_checksum_and_magic():
    env = Environment()
    cluster = make_cluster(env)
    seed_tenant(env, cluster)
    blob = bytearray(snapshot_tenant(cluster[0].driver, 7).to_bytes())
    blob[-1] ^= 0xFF  # flip one body byte: checksum must catch it
    with pytest.raises(CheckpointCorruptError):
        VfpgaCheckpoint.from_bytes(bytes(blob))
    with pytest.raises(CheckpointCorruptError):
        VfpgaCheckpoint.from_bytes(b"JUNK" + bytes(blob[4:]))


def test_checkpoint_rejects_version_mismatch():
    env = Environment()
    cluster = make_cluster(env)
    seed_tenant(env, cluster)
    ckpt = snapshot_tenant(cluster[0].driver, 7)
    blob = bytearray(ckpt.to_bytes())
    blob[4:6] = (CHECKPOINT_VERSION + 1).to_bytes(2, "big")
    with pytest.raises(CheckpointVersionError) as err:
        VfpgaCheckpoint.from_bytes(bytes(blob))
    assert err.value.found == CHECKPOINT_VERSION + 1
    payload = ckpt.payload()
    payload["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(CheckpointVersionError):
        VfpgaCheckpoint.from_payload(payload)


def test_migrated_error_is_a_recovered_error():
    # The scheduler parks interrupted requests only for RecoveredError
    # causes; migration relies on that contract.
    assert issubclass(MigratedError, RecoveredError)


# ------------------------------------------------------------ fidelity


def test_migration_restores_memory_ring_mrs_and_csrs():
    env = Environment()
    cluster = make_cluster(env)
    migrator = LiveMigrator(cluster)
    thread, buf, mr = seed_tenant(env, cluster)
    src_ring = cluster[0].driver.processes[7].rings.cmd
    head, tail = src_ring.head, src_ring.tail
    payload = thread.read_buffer(buf.vaddr, 2 * PAGE_4K)

    def migrate():
        return (yield from migrator.migrate(7, 0, 1))

    proc = env.process(migrate())
    env.run(proc)
    record = proc.value
    assert record.result == "completed"
    assert record.pause_ns > 0
    assert cluster.placements[7] == 1
    assert 7 not in cluster[0].driver.processes

    dst = cluster[1].driver
    attached = CThread.attach(dst, 7)
    assert attached.read_buffer(buf.vaddr, 2 * PAGE_4K) == payload
    ctx = dst.processes[7]
    # Ring CSRs reproduce the source exactly; the undrained op is back.
    assert ctx.rings.cmd.head == head and ctx.rings.cmd.tail == tail
    assert ctx.rings.cmd.occupancy == 1
    # MR key survives and its pages are pinned in the destination TLB.
    restored = ctx.mrs.lookup(mr.key)
    assert (restored.vaddr, restored.length) == (mr.vaddr, mr.length)
    mmu = dst.shell.dynamic.mmus[0]
    entry = mmu.tlb.lookup(buf.vaddr)
    assert entry is not None and entry.pinned
    # CSRs replayed through write hooks.
    vfpga = dst.shell.vfpgas[0]
    assert vfpga.csr_read(40) == 0xDEAD and vfpga.csr_read(41) == 0xBEEF
    # A restored tenant is live: the ring drains on the destination.
    dst.shell.load_app(0, PassThroughApp())

    def drain():
        event = dst.ring_doorbell(7)
        entries = yield event
        return entries

    drained = env.process(drain())
    env.run(drained)
    assert len(drained.value) == 1


def test_fresh_registration_after_restore_avoids_restored_keys():
    env = Environment()
    cluster = make_cluster(env)
    migrator = LiveMigrator(cluster)
    thread, buf, mr = seed_tenant(env, cluster)

    def scenario():
        yield from migrator.migrate(7, 0, 1)
        attached = CThread.attach(cluster[1].driver, 7)
        extra = yield from attached.get_mem(PAGE_4K, alloc_type=AllocType.REG)
        fresh = yield from attached.register_mr(extra.vaddr, PAGE_4K)
        return fresh

    proc = env.process(scenario())
    env.run(proc)
    assert proc.value.key > mr.key  # cursor jumped past restored keys


# -------------------------------------------------------- close regression


def test_close_fails_inflight_ring_batch_with_typed_error():
    """Satellite regression: close() mid-batch must flush, not strand."""
    env = Environment()
    cluster = make_cluster(env)
    driver = cluster[0].driver
    driver.shell.load_app(0, PassThroughApp())
    outcome = {}

    def scenario():
        thread = CThread(driver, 0, pid=3)
        buf = yield from thread.get_mem(PAGE_4K, alloc_type=AllocType.REG)
        thread.setup_rings(4)
        mr = yield from thread.register_mr(buf.vaddr, PAGE_4K)
        driver.ring_post(3, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=PAGE_4K))
        event = driver.ring_doorbell(3)
        driver.close(3, reason="test teardown")
        try:
            yield event
        except ProcessClosedError as exc:
            outcome["error"] = exc

    env.run(env.process(scenario()))
    assert isinstance(outcome.get("error"), ProcessClosedError)
    assert outcome["error"].pid == 3
    assert "test teardown" in str(outcome["error"])
    assert 3 not in driver.processes


def test_close_fails_pending_waiters_and_unpins_mr_pages():
    env = Environment()
    cluster = make_cluster(env)
    driver = cluster[0].driver
    failures = []

    def scenario():
        thread = CThread(driver, 0, pid=4)
        buf = yield from thread.get_mem(PAGE_4K, alloc_type=AllocType.REG)
        yield from thread.register_mr(buf.vaddr, PAGE_4K)
        ctx = driver.processes[4]
        event = ctx.expect(env, False, 99)
        driver.close(4)
        try:
            yield event
        except ProcessClosedError as exc:
            failures.append(exc)

    env.run(env.process(scenario()))
    assert len(failures) == 1
    assert driver.mrs_deregistered == 1  # close retired the MTT entry


# ----------------------------------------------------------- transfer faults


def test_transfer_drop_is_retried_until_success():
    env = Environment()
    cluster = make_cluster(env)
    FaultInjector(
        FaultPlan(seed=5, rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP, probability=0.25),
        ])
    ).arm_cluster(cluster)
    migrator = LiveMigrator(cluster)
    seed_tenant(env, cluster)

    proc = env.process(migrator.migrate(7, 0, 1))
    env.run(proc)
    assert proc.value.result == "completed"
    assert migrator.stats["transfer_drops"] >= 1
    assert migrator.stats["chunk_retries"] >= migrator.stats["transfer_drops"]
    assert cluster.placements[7] == 1


def test_transfer_exhaustion_falls_back_to_source():
    """migrate.transfer_drop at p=1.0: retries exhaust, the tenant must
    come back to life on the source — never wedged, never half-moved."""
    env = Environment()
    cluster = make_cluster(env)
    FaultInjector(
        FaultPlan(seed=1, rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP, probability=1.0),
        ])
    ).arm_cluster(cluster)
    migrator = LiveMigrator(cluster)
    thread, buf, _ = seed_tenant(env, cluster)
    payload = thread.read_buffer(buf.vaddr, PAGE_4K)
    outcome = {}

    def scenario():
        try:
            yield from migrator.migrate(7, 0, 1)
        except TransferAbortedError as exc:
            outcome["abort"] = exc

    env.run(env.process(scenario()))
    assert "abort" in outcome
    assert 7 in cluster[0].driver.processes  # still home
    assert 7 not in cluster[1].driver.processes  # no ghost on the target
    assert thread.read_buffer(buf.vaddr, PAGE_4K) == payload
    assert migrator.aborted == 1 and migrator.completed == 0
    record = migrator.records[-1]
    assert record.result == "aborted" and record.state == "FAILED"


def test_midstream_abort_resumes_quiesced_source():
    """Force the drop onto the *delta* phase (post-quiesce) via a tag
    match: the source region must restart and serve again."""
    env = Environment()
    cluster = make_cluster(env)
    # Precopy sails through; every stop-and-copy chunk is eaten, so the
    # delta transfer hits retry exhaustion while the source is quiesced.
    FaultInjector(
        FaultPlan(seed=2, rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP, probability=1.0,
                      match=lambda c: str(c.get("tag", "")).startswith("delta")),
        ])
    ).arm_cluster(cluster)
    migrator = LiveMigrator(cluster)
    thread, buf, _ = seed_tenant(env, cluster)
    outcome = {}

    def scenario():
        try:
            yield from migrator.migrate(7, 0, 1)
        except TransferAbortedError:
            outcome["aborted_after"] = migrator.records[-1].state
        # Fallback-to-source must leave the region serviceable: the
        # tenant's host-visible memory is intact and the driver accepts
        # new work for the pid.
        data = thread.read_buffer(buf.vaddr, PAGE_4K)
        outcome["intact"] = data == bytes((7 + i) % 256 for i in range(PAGE_4K))
        extra = yield from thread.get_mem(PAGE_4K, alloc_type=AllocType.REG)
        outcome["alloc"] = extra.vaddr

    env.run(env.process(scenario()))
    assert outcome["aborted_after"] == "FAILED"
    assert outcome["intact"] and "alloc" in outcome
    record = migrator.records[-1]
    assert record.pause_ns > 0  # the abort happened inside the pause window
    assert migrator.stats["transfer_drops"] > 0


# -------------------------------------------------------------- drains


def make_sched_cluster(env, nodes=4):
    cluster = make_cluster(env, nodes)
    flow = BuildFlow("u55c")
    schedulers = []
    for node in cluster.nodes:
        checkpoint = LockedShellCheckpoint(
            "u55c", node.shell.config.services, node.shell.shell_id,
            sum(m.luts for m in modules_for_services(node.shell.config.services)),
        )
        scheduler = AppScheduler(node.driver)
        scheduler.register(
            "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream,
            AesEcbApp, idempotent=True,
        )
        schedulers.append(scheduler)
    return cluster, schedulers


def test_drain_node_moves_every_tenant():
    env = Environment()
    cluster = make_cluster(env, 3)
    LiveMigrator(cluster)
    seed_tenant(env, cluster, pid=11, node=0)
    seed_tenant(env, cluster, pid=12, node=0)

    proc = env.process(cluster.drain_node(0, reason="planned maintenance"))
    env.run(proc)
    records = proc.value
    assert len(records) == 2
    assert not cluster[0].driver.processes
    # Least-loaded placement spreads the two tenants over the two peers.
    assert {cluster.placements[11], cluster.placements[12]} == {1, 2}
    kinds = [(kind, node, reason) for _, kind, node, reason in cluster.admin_log]
    assert ("node_drain", 0, "planned maintenance") in kinds
    assert cluster.drains == 1 and cluster.migrations == 2


def test_drain_retries_toward_another_destination():
    env = Environment()
    cluster = make_cluster(env, 3)
    migrator = LiveMigrator(cluster)
    seed_tenant(env, cluster, pid=11, node=0)
    # Drop every chunk 0 -> 1 only: the drain must re-route to node 2.
    FaultInjector(
        FaultPlan(seed=0, rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP, probability=1.0,
                      match=lambda c: c.get("dst") == 1),
        ])
    ).arm_cluster(cluster)

    proc = env.process(cluster.drain_node(0))
    env.run(proc)
    assert cluster.placements[11] == 2
    assert migrator.aborted >= 1 and migrator.completed == 1


def test_queue_transplant_replays_on_destination():
    env = Environment()
    cluster, schedulers = make_sched_cluster(env, 2)
    migrator = LiveMigrator(cluster)
    results = []

    def body(tag):
        def run(app):
            yield env.timeout(1_000.0)
            return tag
        return run

    def client(tag):
        results.append((yield from schedulers[0].submit("aes", body(tag))))

    def admin():
        # Wait out the initial PR so the source is mid-service, then
        # drain the queue (in-flight request included) to node 1.
        yield env.timeout(40_000_000.0)
        for tag in ("q1", "q2", "q3"):
            env.process(client(tag))
        yield env.timeout(500.0)  # requests enqueued, head in flight
        yield from migrator.migrate_queue(0, 1, 0)

    env.run(env.process(admin()))
    env.run()
    assert sorted(results) == ["q1", "q2", "q3"]
    assert schedulers[1].transplanted_in >= 1
    assert schedulers[0].transplanted_out == schedulers[1].transplanted_in
    assert migrator.queue_transplants >= 1


# ------------------------------------------------------ rolling upgrade


def test_rolling_upgrade_under_live_traffic_loses_nothing():
    env = Environment()
    cluster, schedulers = make_sched_cluster(env, 4)
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    completed = []

    def body(tag):
        def run(app):
            yield env.timeout(2_000.0)
            return tag
        return run

    def client(cid, count):
        for i in range(count):
            tag = f"c{cid}-r{i}"
            while True:
                live = [s for s in schedulers if not s.driver.node_down]
                target = min(
                    live, key=lambda s: (len(s._queue), s.driver.node_index)
                )
                try:
                    assert (yield from target.submit("aes", body(tag))) == tag
                    completed.append(tag)
                    break
                except (NodeDownError, AdmissionError, QuarantinedError):
                    yield env.timeout(10_000.0)
            yield env.timeout(5_000.0)

    summary = {}

    def admin():
        # Let the first PRs land so every region is warm, then upgrade.
        yield env.timeout(40_000_000.0)
        summary["nodes"] = yield from cluster.rolling_upgrade(reason="fw-2.1")

    for cid in range(6):
        env.process(client(cid, 15))
    env.process(admin())
    env.run(until=300_000_000.0)
    monitor.stop()
    env.run()

    # Exactly-once: nothing lost, nothing duplicated.
    assert len(completed) == 90
    assert len(set(completed)) == 90
    assert [row["node"] for row in summary["nodes"]] == [0, 1, 2, 3]
    assert all(node.shell_version == 1 for node in cluster.nodes)
    assert cluster.upgrades == 4 and cluster.drains == 4

    # Reason-tagged admin events surface in the cluster health section.
    section = card_report(cluster[0].driver)["health"]["cluster"]
    upgraded = [
        event for event in section["events"] if event["kind"] == "node_upgraded"
    ]
    assert len(upgraded) == 4
    assert all(event["reason"].startswith("fw-2.1") for event in upgraded)
    assert all(event["time_ns"] > 0 for event in upgraded)


def test_rolling_upgrade_needs_two_nodes():
    env = Environment()
    cluster = make_cluster(env, 1)
    with pytest.raises(ValueError):
        next(iter(cluster.rolling_upgrade()))


# --------------------------------------------------------- determinism


def _chaos_migration_run(seed=9):
    """One migrate-under-chaos run; returns digestable observables."""
    env = Environment()
    cluster = make_cluster(env)
    FaultInjector(
        FaultPlan(seed=seed, rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP, probability=0.2),
        ])
    ).arm_cluster(cluster)
    migrator = LiveMigrator(cluster)
    seed_tenant(env, cluster)
    shas = []

    def scenario():
        record = yield from migrator.migrate(7, 0, 1)
        shas.append(record.checkpoint_sha256)
        record = yield from migrator.migrate(7, 1, 0)
        shas.append(record.checkpoint_sha256)

    env.run(env.process(scenario()))
    env.run()
    report = card_report(cluster[0].driver)
    digest = hashlib.sha256(repr((
        shas,
        env.now,
        migrator.stats,
        sorted(report["counters"].items()) if "counters" in report else (),
    )).encode()).hexdigest()
    return shas, digest


def test_chaos_migration_is_deterministic_under_sanitizer(monkeypatch):
    """Same seed, two runs, REPRO_SANITIZE=1: checkpoint hashes and the
    end-state digest must be byte-identical."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    shas_a, digest_a = _chaos_migration_run()
    shas_b, digest_b = _chaos_migration_run()
    assert shas_a == shas_b
    assert digest_a == digest_b
    assert len(shas_a) == 2 and shas_a[0] != shas_a[1]  # round-trip re-keyed


def test_telemetry_exports_migration_metrics():
    env = Environment()
    cluster = make_cluster(env)
    migrator = LiveMigrator(cluster)
    seed_tenant(env, cluster)
    proc = env.process(migrator.migrate(7, 0, 1))
    env.run(proc)

    from repro.telemetry import collect_cluster_metrics

    registry = collect_cluster_metrics(cluster)
    assert registry.counter("migrate.started").value == 1
    assert registry.counter("migrate.completed").value == 1
    assert registry.counter("cluster.tenant_migrations").value == 1
    assert registry.counter("migrate.bytes_sent").value > 0
    hist = registry.histogram("migrate.pause_ns")
    assert hist.count == 1
