"""Tests for crediting and round-robin arbitration."""

import pytest

from repro.core import Crediter, RoundRobinArbiter
from repro.sim import Environment


# ------------------------------------------------------------------ credits

def test_crediter_blocks_at_zero():
    env = Environment()
    crediter = Crediter(env, credits=2)
    log = []

    def consumer():
        for i in range(3):
            # repro: allow[RES001] test drives the pool dry on purpose; releaser() below is the pair
            yield from crediter.acquire()
            log.append((i, env.now))

    def releaser():
        yield env.timeout(50)
        crediter.release()

    env.process(consumer())
    env.process(releaser())
    env.run()
    assert log[0][1] == 0
    assert log[1][1] == 0
    assert log[2][1] == 50  # third acquire waited for the release
    assert crediter.stalls == 1


def test_crediter_accounting():
    env = Environment()
    crediter = Crediter(env, credits=4)

    def proc():
        yield from crediter.acquire()  # repro: allow[RES001] test asserts the in-flight count, so the credits stay held
        yield from crediter.acquire()  # repro: allow[RES001] test asserts the in-flight count, so the credits stay held

    env.process(proc())
    env.run()
    assert crediter.available == 2
    assert crediter.in_flight == 2
    assert crediter.acquired_total == 2


def test_crediter_invalid_count():
    with pytest.raises(ValueError):
        Crediter(Environment(), credits=0)


# ------------------------------------------------------------------ arbiter

def test_round_robin_fair_interleaving():
    env = Environment()
    arb = RoundRobinArbiter(env, port_depth=8)
    ports = [arb.add_port() for _ in range(3)]
    order = []

    def producer(port, tag):
        for i in range(3):
            yield from port.put((tag, i))

    def consumer():
        for _ in range(9):
            item = yield from arb.get()
            order.append(item[0])

    for tag, port in enumerate(ports):
        env.process(producer(port, tag))
    done = env.process(consumer())
    env.run(done)
    # Strict round-robin across the three busy ports.
    assert order == [0, 1, 2, 0, 1, 2, 0, 1, 2]


def test_arbiter_skips_idle_ports():
    env = Environment()
    arb = RoundRobinArbiter(env)
    busy = arb.add_port()
    _idle = arb.add_port()
    got = []

    def producer():
        yield from busy.put("x")
        yield from busy.put("y")

    def consumer():
        for _ in range(2):
            item = yield from arb.get()
            got.append(item)

    env.process(producer())
    done = env.process(consumer())
    env.run(done)
    assert got == ["x", "y"]


def test_arbiter_port_depth_backpressure():
    env = Environment()
    arb = RoundRobinArbiter(env, port_depth=1)
    port = arb.add_port()
    times = []

    def producer():
        yield from port.put(1)
        times.append(env.now)
        yield from port.put(2)  # blocks until consumer drains
        times.append(env.now)

    def consumer():
        yield env.timeout(100)
        yield from arb.get()
        yield from arb.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times[0] == 0
    assert times[1] == 100


def test_arbiter_get_blocks_until_work():
    env = Environment()
    arb = RoundRobinArbiter(env)
    port = arb.add_port()
    got = []

    def consumer():
        item = yield from arb.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(42)
        yield from port.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 42)]


def test_arbiter_try_get():
    env = Environment()
    arb = RoundRobinArbiter(env)
    port = arb.add_port()
    assert arb.try_get() is None
    env.process(port.put("a"))
    env.run()
    assert arb.try_get() == "a"
    assert arb.backlog == 0
