"""Tests for the CRcnfg reconfiguration handle (paper Code 2)."""

import pytest

from repro import CRcnfg, Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.apps import HllApp, PassThroughApp
from repro.mem import MmuConfig, TlbConfig
from repro.mem.tlb import PAGE_1G
from repro.synth import BuildFlow


def make_system():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    return env, shell, driver, CRcnfg(driver)


def test_reconfigure_shell_through_handle():
    env, shell, driver, rcnfg = make_system()
    flow = BuildFlow("u55c")
    new_services = ServiceConfig(
        en_memory=False, mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G))
    )
    result = flow.shell_flow(new_services, ["passthrough"])

    def main():
        yield from rcnfg.reconfigure_shell(
            result.bitstream, new_services, [PassThroughApp(), None]
        )

    env.run(env.process(main()))
    assert shell.config.service_names == new_services.service_names
    assert isinstance(shell.vfpgas[0].app, PassThroughApp)


def test_reconfigure_app_through_handle():
    env, shell, driver, rcnfg = make_system()
    flow = BuildFlow("u55c")
    checkpoint = flow.shell_flow(shell.config.services, []).checkpoint

    # The checkpoint's identity matches the live shell (same services).
    app_bitstream = flow.app_flow(checkpoint, ["hll"]).bitstream

    def main():
        yield from rcnfg.reconfigure_app(app_bitstream, 1, HllApp())

    env.run(env.process(main()))
    assert isinstance(shell.vfpgas[1].app, HllApp)
    assert shell.vfpgas[0].app is None  # only vFPGA 1 touched


def test_reconfigure_charges_realistic_latency():
    env, shell, driver, rcnfg = make_system()
    flow = BuildFlow("u55c")
    result = flow.shell_flow(ServiceConfig(), [])

    def main():
        start = env.now
        yield from rcnfg.reconfigure_shell(result.bitstream, ServiceConfig())
        return env.now - start

    elapsed_ns = env.run(env.process(main()))
    # Table 3 territory: hundreds of ms, not seconds, not microseconds.
    assert 100e6 < elapsed_ns < 2e9
