"""Tests for the tracing and statistics utilities."""

import pytest

from repro.sim import LatencyStats, ThroughputMeter, Tracer, mean_std


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.emit(1.0, "mmu", "hit")
    tracer.emit(2.0, "mmu", "miss", payload={"vaddr": 0x1000})
    tracer.emit(3.0, "xdma", "dma")
    assert len(tracer.records) == 3
    assert len(tracer.filter(source="mmu")) == 2
    assert len(tracer.filter(kind="miss")) == 1
    assert tracer.filter(source="mmu", kind="miss")[0].payload == {"vaddr": 0x1000}
    tracer.clear()
    assert tracer.records == []


def test_tracer_disabled_drops_records():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "a", "b")
    assert tracer.records == []


def test_tracer_ring_buffer_bounds_memory():
    tracer = Tracer(max_records=3)
    for i in range(10):
        tracer.emit(float(i), "daemon", "tick", i)
    # Only the newest max_records survive; the rest are counted, not kept.
    assert len(tracer.records) == 3
    assert [r.payload for r in tracer.records] == [7, 8, 9]
    assert tracer.dropped == 7
    assert len(tracer.filter(source="daemon")) == 3
    tracer.clear()
    assert len(tracer.records) == 0
    assert tracer.dropped == 7  # the drop ledger survives a clear


def test_tracer_ring_buffer_validates_capacity():
    with pytest.raises(ValueError):
        Tracer(max_records=0)


def test_throughput_meter():
    meter = ThroughputMeter("host")
    meter.record(1000, start=0.0, end=100.0)
    meter.record(1000, start=100.0, end=200.0)
    assert meter.total_bytes == 2000
    assert meter.elapsed_ns == 200.0
    assert meter.gbps == pytest.approx(10.0)
    assert meter.mbps == pytest.approx(10_000.0)


def test_throughput_meter_empty():
    meter = ThroughputMeter()
    assert meter.gbps == 0.0
    assert meter.elapsed_ns == 0.0


def test_latency_stats():
    stats = LatencyStats("walk")
    for v in (10.0, 20.0, 30.0, 40.0):
        stats.record(v)
    assert stats.count == 4
    assert stats.mean == pytest.approx(25.0)
    assert stats.std == pytest.approx(12.909, rel=1e-3)
    assert stats.percentile(0) == 10.0
    assert stats.percentile(100) == 40.0
    # Linear interpolation between closest ranks: p50 of an even-length
    # sample is the midpoint, never a banker's-rounding coin flip.
    assert stats.percentile(50) == pytest.approx(25.0)
    assert stats.percentile(25) == pytest.approx(17.5)
    assert stats.percentile(75) == pytest.approx(32.5)
    assert stats.percentile(90) == pytest.approx(37.0)


def test_latency_stats_percentile_consistent_ranks():
    """p50 of [1..n] must track the true median for every parity of n."""
    for n in (2, 3, 4, 5, 10, 11):
        stats = LatencyStats()
        for v in range(1, n + 1):
            stats.record(float(v))
        assert stats.percentile(50) == pytest.approx((1 + n) / 2.0), n


def test_latency_stats_percentile_single_sample_and_clamping():
    stats = LatencyStats()
    stats.record(42.0)
    assert stats.percentile(50) == 42.0
    assert stats.percentile(-5) == 42.0
    assert stats.percentile(250) == 42.0


def test_latency_stats_empty():
    stats = LatencyStats()
    assert stats.mean == 0.0
    assert stats.std == 0.0
    assert stats.percentile(99) == 0.0


def test_mean_std():
    mean, std = mean_std([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(1.0)
    assert mean_std([]) == (0.0, 0.0)
    assert mean_std([5.0]) == (5.0, 0.0)
