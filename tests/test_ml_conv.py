"""Tests for the Conv1D lowering in the hls4ml-style compiler."""

import numpy as np
import pytest

from repro.ml import ModelSpec, convert_model


def reference_conv1d(x, kernel, bias):
    """Direct (length, channels) valid conv, stride 1."""
    length, channels = x.shape
    k, _c, filters = kernel.shape
    out = np.zeros((length - k + 1, filters))
    for pos in range(length - k + 1):
        window = x[pos : pos + k]  # (k, channels)
        out[pos] = np.tensordot(window, kernel, axes=([0, 1], [0, 1])) + bias
    return out


def test_conv_requires_spatial_shape():
    model = ModelSpec(input_width=10)
    with pytest.raises(ValueError, match="spatial"):
        model.add_conv1d(4, 3)


def test_input_shape_validation():
    with pytest.raises(ValueError, match="flatten"):
        ModelSpec(input_width=10, input_shape=(3, 4))


def test_kernel_shape_validation():
    model = ModelSpec(input_width=12, input_shape=(6, 2))
    with pytest.raises(ValueError, match="kernel shape"):
        model.add_conv1d(4, 3, kernel=np.zeros((3, 3, 4)))
    with pytest.raises(ValueError, match="kernel longer"):
        model.add_conv1d(4, 7)


def test_lowered_conv_matches_direct_convolution():
    rng = np.random.default_rng(0)
    length, channels, k, filters = 12, 3, 4, 5
    kernel = rng.normal(size=(k, channels, filters))
    bias = rng.normal(size=filters)
    model = ModelSpec(input_width=length * channels, input_shape=(length, channels))
    model.add_conv1d(filters, k, activation="linear", kernel=kernel, bias=bias)
    x = rng.normal(size=(length, channels))
    lowered_out = model.predict_float(x.reshape(1, -1))[0]
    direct = reference_conv1d(x, kernel, bias).reshape(-1)
    assert np.allclose(lowered_out, direct)


def test_conv_then_dense_pipeline():
    rng = np.random.default_rng(1)
    model = ModelSpec(input_width=32, input_shape=(16, 2), name="cnn")
    model.add_conv1d(4, 3, rng=rng)
    model.add_conv1d(8, 3, rng=rng)
    model.add_dense(10, "relu", rng=rng)
    model.add_dense(2, "linear", rng=rng)
    assert model.output_width == 2
    # Shape tracking: 16 -> 14 -> 12 positions.
    assert model.layers[1].n_in == 14 * 4
    assert model.layers[1].n_out == 12 * 8


def test_dense_after_conv_blocks_further_convs():
    model = ModelSpec(input_width=16, input_shape=(8, 2))
    model.add_conv1d(4, 3)
    model.add_dense(5)
    with pytest.raises(ValueError, match="spatial"):
        model.add_conv1d(2, 2)


def test_effective_multiplies_reflect_weight_sharing():
    model = ModelSpec(input_width=64, input_shape=(32, 2))
    model.add_conv1d(8, 5)
    layer = model.layers[0]
    # Lowered matrix is much bigger than the true MAC count.
    assert layer.multiplies == 28 * 5 * 2 * 8
    assert layer.multiplies < layer.n_in * layer.n_out


def test_quantized_conv_model_end_to_end():
    rng = np.random.default_rng(2)
    model = ModelSpec(input_width=32, input_shape=(16, 2), name="cnn")
    model.add_conv1d(4, 3, rng=rng)
    model.add_dense(2, "linear", rng=rng)
    hls = convert_model(model)
    hls.compile()
    x = rng.normal(size=(64, 32))
    emu = hls.predict(x)
    ref = model.predict_float(x)
    corr = np.corrcoef(emu.ravel(), ref.ravel())[0, 1]
    assert corr > 0.999
    # Resource estimate uses the shared-weight MAC count.
    ip = hls.build()
    assert ip.resources.dsps < 2000
