"""Tests for the packetizer (paper §6.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Descriptor, Packetizer, StreamType


def desc(length, vaddr=0x1000):
    return Descriptor(vfpga_id=0, pid=1, vaddr=vaddr, length=length)


def test_default_packet_size_is_4k():
    assert Packetizer().packet_bytes == 4096


def test_single_packet_request():
    packets = Packetizer().split_all(desc(100))
    assert len(packets) == 1
    assert packets[0].length == 100
    assert packets[0].last


def test_exact_multiple_split():
    packets = Packetizer().split_all(desc(3 * 4096))
    assert [p.length for p in packets] == [4096, 4096, 4096]
    assert [p.last for p in packets] == [False, False, True]


def test_remainder_packet():
    packets = Packetizer().split_all(desc(4096 + 100))
    assert [p.length for p in packets] == [4096, 100]


def test_addresses_are_contiguous():
    packets = Packetizer().split_all(desc(10_000, vaddr=0x5000))
    assert packets[0].vaddr == 0x5000
    assert packets[1].vaddr == 0x5000 + 4096
    assert packets[2].vaddr == 0x5000 + 8192


def test_configurable_chunk():
    packets = Packetizer(packet_bytes=512).split_all(desc(2048))
    assert len(packets) == 4


def test_count():
    p = Packetizer()
    assert p.count(1) == 1
    assert p.count(4096) == 1
    assert p.count(4097) == 2


def test_invalid_packet_size():
    with pytest.raises(ValueError):
        Packetizer(packet_bytes=0)


def test_descriptor_validation():
    with pytest.raises(ValueError):
        Descriptor(vfpga_id=0, pid=0, vaddr=0, length=0)
    with pytest.raises(ValueError):
        Descriptor(vfpga_id=0, pid=0, vaddr=-1, length=10)


@settings(max_examples=100, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=1 << 22),
    chunk=st.sampled_from([512, 1024, 4096, 8192]),
)
def test_split_covers_exactly_once(length, chunk):
    """Packets tile the request exactly: no gaps, no overlap, one last."""
    packets = Packetizer(chunk).split_all(desc(length, vaddr=0))
    assert sum(p.length for p in packets) == length
    expected_vaddr = 0
    for p in packets:
        assert p.vaddr == expected_vaddr
        assert 0 < p.length <= chunk
        expected_vaddr += p.length
    assert sum(1 for p in packets if p.last) == 1
    assert packets[-1].last


def test_length_exactly_packet_bytes_is_single_last_packet():
    """Boundary: a request of exactly one packet takes the fast path and
    still carries last=True (the completion trigger)."""
    packets = Packetizer().split_all(desc(4096))
    assert len(packets) == 1
    assert packets[0].length == 4096
    assert packets[0].last


def test_zero_length_descriptor_yields_no_packets():
    """A zero-length descriptor emits *no* packets — so no last=True, so
    no completion.  Descriptor.__post_init__ rejects it at construction
    and the driver rejects it at submit (ZeroLengthDescriptorError);
    this pins the underlying hazard those guards exist for."""
    d = desc(1)
    d.length = 0  # bypass construction-time validation
    assert Packetizer().split_all(d) == []
    assert Packetizer().count(0) == 0


@settings(max_examples=200, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=1 << 22),
    chunk=st.sampled_from([1, 512, 1024, 4096, 8192]),
)
def test_count_matches_split(length, chunk):
    """count() is the closed form of len(split_all()) for every length,
    including exact multiples and the single-packet boundary."""
    p = Packetizer(chunk)
    assert p.count(length) == len(p.split_all(desc(length)))
